//! The per-shard event loop: one thread, all the sockets and timers of
//! its nodes, zero blocking calls.
//!
//! Each iteration of [`Reactor::run`] is one readiness sweep:
//!
//! 1. **crash sync** — enter/leave scheduled crash windows and run the
//!    restart edge (the DES engine's `Event::Restart` semantics);
//! 2. **timers** — pop every entry of the virtual-time queue whose
//!    deadline passed; crashed nodes get theirs deferred to the restart
//!    instant instead of fired;
//! 3. **accept** — drain every listener's accept queue;
//! 4. **inbound** — pump live connections; completed frames are
//!    delivered through the reliable channel into the role machine
//!    exactly as the worker threads did;
//! 5. **delayed sends** — release fault-injected extra latency whose
//!    due time arrived (this replaces the old detached sleeper threads);
//! 6. **outbound** — flush per-link write queues, one frame in flight
//!    per `(node, destination)` pair so the blocking backend's per-link
//!    FIFO order is preserved.
//!
//! An iteration that did any work counts one `wire.reactor_wakeups`;
//! an idle iteration sleeps ~1 ms (bounded by the next timer deadline),
//! which is far inside every protocol timeout — the retransmit backoff
//! floor is 250 ms even in test configurations.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use sheriff_core::byzantine;
use sheriff_core::protocol::{Address, Output, ProtoMsg, TimerKind};
use sheriff_netsim::CodecAttack;

use super::conn::{Inbound, InboundEvent, Outbound, OutboundEvent, RawOutbound, IDLE_CONN_MS};
use super::shard::{drain_peer, NodeSlot, Role, ShardCtx};
use crate::proto::Envelope;

/// Idle nap between readiness sweeps when nothing at all happened.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// How long a finished shard keeps flushing its outbound queues before
/// giving up on destinations that already exited.
const DRAIN_GRACE_MS: u64 = 250;

/// One node's socket-facing state inside the shard.
struct OwnedNode {
    slot: NodeSlot,
    /// `None` once the node received Shutdown (stop accepting, exactly
    /// like the blocking acceptor breaking out of its loop).
    listener: Option<TcpListener>,
}

/// A per-link outbound FIFO: only the head frame is in flight, so two
/// frames from one node to one destination can never overtake each
/// other — the property the blocking connect–write–close path provided
/// implicitly.
struct OutLink {
    local: usize,
    to: Address,
    inflight: Option<Outbound>,
    queue: VecDeque<Envelope>,
}

/// A send carrying fault-injected extra latency, parked until its due
/// time. The old backend parked these on detached sleeper threads; the
/// reactor parks them on plain data.
struct DelayedSend {
    due_ms: u64,
    seq: u64,
    local: usize,
    to: Address,
    env: Envelope,
    copies: usize,
}

/// The single-threaded event loop driving one shard's nodes.
pub(crate) struct Reactor {
    ctx: ShardCtx,
    nodes: Vec<OwnedNode>,
    /// Virtual-time timer queue: `(due_ms, seq, local_node, token)`.
    /// The monotone `seq` makes same-millisecond firing order exactly
    /// the insertion order — deterministic, like the DES event queue.
    timers: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    seq: u64,
    inbound: Vec<Inbound>,
    links: Vec<OutLink>,
    delayed: Vec<DelayedSend>,
    /// Byzantine codec-attack connections (garbage / oversize /
    /// slow-loris raw frames). Deliberately *outside* the per-link
    /// FIFOs: the DES twin drops the message entirely, so an attack
    /// frame must never delay the attacker's own later honest sends.
    raw: Vec<RawOutbound>,
    /// Local high-water of pending work, mirrored into the shared
    /// `wire.shard_queue_depth` gauge when it grows.
    depth_hiwater: usize,
    /// Reusable machine-output buffer threaded through the sweep
    /// stages: `dispatch` drains it, `std::mem::take` loans it out past
    /// the node borrow, so the steady-state event path reuses one
    /// allocation instead of building a fresh `Vec` per event.
    out_scratch: Vec<Output>,
}

impl Reactor {
    /// Builds a shard over `nodes` and seeds the phase-fixed initial
    /// timers (measurement liveness beacon, coordinator recovery sweep)
    /// exactly where the worker threads used to.
    pub(crate) fn new(ctx: ShardCtx, nodes: Vec<(NodeSlot, TcpListener)>) -> Reactor {
        let mut reactor = Reactor {
            ctx,
            nodes: Vec::new(),
            timers: BinaryHeap::new(),
            seq: 0,
            inbound: Vec::new(),
            links: Vec::new(),
            delayed: Vec::new(),
            raw: Vec::new(),
            depth_hiwater: 0,
            out_scratch: Vec::new(),
        };
        for (slot, listener) in nodes {
            let _ = listener.set_nonblocking(true);
            let local = reactor.nodes.len();
            match &slot.role {
                Role::Measurement {
                    beacon_every_ms, ..
                } => reactor.push_timer(*beacon_every_ms, local, TimerKind::Heartbeat.token()),
                Role::Coordinator { sweep_every_ms, .. } => {
                    reactor.push_timer(*sweep_every_ms, local, TimerKind::CoordSweep.token());
                }
                _ => {}
            }
            reactor.nodes.push(OwnedNode {
                slot,
                listener: Some(listener),
            });
        }
        reactor
    }

    fn push_timer(&mut self, due_ms: u64, local: usize, token: u64) {
        self.seq += 1;
        self.timers.push(Reverse((due_ms, self.seq, local, token)));
    }

    /// Runs until every node in the shard has been shut down and the
    /// outbound queues drained (or the drain grace expired).
    pub(crate) fn run(mut self) {
        let mut stop_deadline: Option<u64> = None;
        loop {
            let now_ms = self.ctx.now_ms();
            let mut work = 0usize;
            work += self.sync_crash_states(now_ms);
            work += self.fire_timers(now_ms);
            work += self.poll_accept(now_ms);
            work += self.pump_inbound(now_ms);
            work += self.release_delayed(now_ms);
            work += self.pump_outbound();
            work += self.pump_raw();
            self.note_depth();

            if self.nodes.iter().all(|n| n.slot.stopped) {
                let deadline = *stop_deadline.get_or_insert(now_ms + DRAIN_GRACE_MS);
                let drained = self.links.is_empty() && self.delayed.is_empty();
                if drained || now_ms >= deadline {
                    break;
                }
            }
            if work > 0 {
                self.ctx.wakeups.inc();
            } else {
                std::thread::sleep(self.idle_nap(now_ms));
            }
        }
    }

    /// Idle sleep bounded by the next timer deadline.
    fn idle_nap(&self, now_ms: u64) -> Duration {
        let until_timer = self
            .timers
            .peek()
            .map_or(u64::MAX, |Reverse((due, ..))| due.saturating_sub(now_ms));
        Duration::from_millis(until_timer.max(1)).min(IDLE_SLEEP)
    }

    /// Publishes the queue-depth high-water mark.
    fn note_depth(&mut self) {
        let depth = self.inbound.len()
            + self.delayed.len()
            + self
                .links
                .iter()
                .map(|l| l.queue.len() + usize::from(l.inflight.is_some()))
                .sum::<usize>();
        if depth > self.depth_hiwater {
            self.depth_hiwater = depth;
            let shared = self.ctx.queue_depth.get();
            if depth as i64 > shared {
                self.ctx.queue_depth.set(depth as i64);
            }
        }
    }

    /// Enters/leaves crash windows. Leaving one is the restart edge:
    /// state-intact restart for most roles, volatile-state loss for the
    /// Database — byte-for-byte the worker-thread semantics.
    fn sync_crash_states(&mut self, now_ms: u64) -> usize {
        let Some(shim) = self.ctx.shim.clone() else {
            return 0;
        };
        let mut work = 0;
        let mut out = std::mem::take(&mut self.out_scratch);
        // sheriff-lint: hot-loop
        for local in 0..self.nodes.len() {
            {
                let Some(node) = self.nodes.get_mut(local) else {
                    continue;
                };
                if node.slot.stopped {
                    continue;
                }
                if shim.crashed_until(node.slot.me, now_ms).is_some() {
                    if !node.slot.crashed {
                        node.slot.crashed = true;
                        work += 1;
                    }
                    continue;
                }
                if !node.slot.crashed {
                    continue;
                }
                // Back from the dead with state intact. A Measurement
                // server announces liveness immediately: the Coordinator
                // may have written it off and requeued its jobs, and the
                // fresh heartbeat reopens the assignment path.
                node.slot.crashed = false;
                shim.node_restarts.inc();
                match &mut node.slot.role {
                    Role::Measurement { proto, .. } => proto.on_restart(now_ms, &mut out),
                    Role::Database { proto } => {
                        // The Database models genuine volatile-state
                        // loss: the un-barriered WAL tail vanishes and
                        // the store is rebuilt from the durable snapshot
                        // + log prefix. The reliable channel forgets its
                        // windows too (they lived in memory); peers
                        // retransmit anything unacked. The event sink
                        // below is a crash-recovery edge, not steady
                        // state, and the TCP backend discards machine
                        // events — the Vec never grows past empty.
                        node.slot.chan.on_restart();
                        // sheriff-lint: allow(hot-loop-allocation) — recovery edge; events are discarded
                        let mut events = Vec::new();
                        proto.on_restart(&mut events);
                    }
                    _ => {}
                }
                node.slot.chan.harden(&mut out);
            }
            self.dispatch(local, &mut out, now_ms);
            work += 1;
        }
        self.out_scratch = out;
        work
    }

    /// Fires every due timer; a crashed node's due timers are deferred
    /// to its restart instant instead (counted, like the DES engine).
    fn fire_timers(&mut self, now_ms: u64) -> usize {
        let mut work = 0;
        let mut out = std::mem::take(&mut self.out_scratch);
        // sheriff-lint: hot-loop
        while self
            .timers
            .peek()
            .is_some_and(|Reverse((due, ..))| *due <= now_ms)
        {
            let Some(Reverse((_, _, local, token))) = self.timers.pop() else {
                break;
            };
            let mut defer_to = None;
            {
                let sink = Arc::clone(&self.ctx.sink);
                let Some(node) = self.nodes.get_mut(local) else {
                    continue;
                };
                if node.slot.stopped {
                    continue;
                }
                if node.slot.crashed {
                    if let Some(shim) = &self.ctx.shim {
                        defer_to = shim.crashed_until(node.slot.me, now_ms);
                    }
                }
                if defer_to.is_none() {
                    match TimerKind::from_token(token) {
                        None => {
                            self.ctx.unknown_timers.inc();
                            continue;
                        }
                        Some(TimerKind::Retransmit(seq)) => {
                            if let Some((_, abandoned)) =
                                node.slot.chan.on_retransmit(seq, &mut out)
                            {
                                if let Role::Peer { proto } = &mut node.slot.role {
                                    proto.on_send_abandoned(&abandoned);
                                    drain_peer(proto, &sink);
                                }
                            }
                        }
                        Some(kind) => match &mut node.slot.role {
                            Role::Coordinator { proto, rng, .. } => {
                                proto.on_timer(now_ms, kind, rng, &mut out);
                            }
                            Role::Measurement { proto, .. } => {
                                // sheriff-lint: allow(hot-loop-allocation) — event sink stays empty on the TCP backend
                                let mut events = Vec::new();
                                proto.on_timer(now_ms, kind, &mut out, &mut events);
                            }
                            Role::Database { proto } => {
                                // sheriff-lint: allow(hot-loop-allocation) — event sink stays empty on the TCP backend
                                let mut events = Vec::new();
                                proto.on_timer(kind, &mut out, &mut events);
                            }
                            _ => {}
                        },
                    }
                    node.slot.chan.harden(&mut out);
                }
            }
            if let Some(restart) = defer_to {
                // Defer to the restart instant — the DES engine's crash
                // semantics for a dead node's due timers.
                if let Some(shim) = &self.ctx.shim {
                    shim.timers_deferred.inc();
                }
                self.push_timer(restart, local, token);
                work += 1;
                continue;
            }
            self.dispatch(local, &mut out, now_ms);
            work += 1;
        }
        self.out_scratch = out;
        work
    }

    /// Drains every live listener's accept queue.
    fn poll_accept(&mut self, now_ms: u64) -> usize {
        let mut accepted: Vec<(TcpStream, usize)> = Vec::new();
        for (local, node) in self.nodes.iter().enumerate() {
            let Some(listener) = &node.listener else {
                continue;
            };
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_ok() {
                            accepted.push((stream, local));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        let n = accepted.len();
        for (stream, local) in accepted {
            self.inbound.push(Inbound::new(stream, local, now_ms));
        }
        n
    }

    /// Pumps every live inbound connection; completed frames are
    /// delivered in accept order.
    fn pump_inbound(&mut self, now_ms: u64) -> usize {
        let mut work = 0;
        let mut i = 0;
        // sheriff-lint: hot-loop
        while i < self.inbound.len() {
            let Some(conn) = self.inbound.get_mut(i) else {
                break;
            };
            match conn.pump(&self.ctx.wire) {
                InboundEvent::Pending => {
                    if now_ms.saturating_sub(conn.opened_ms) > IDLE_CONN_MS {
                        // A connected-but-silent client must not wedge
                        // the node (the old acceptor's read timeout).
                        self.inbound.remove(i);
                        work += 1;
                    } else {
                        i += 1;
                    }
                }
                InboundEvent::Closed => {
                    self.inbound.remove(i);
                    work += 1;
                }
                InboundEvent::Frame(env) => {
                    let local = conn.slot;
                    self.inbound.remove(i);
                    work += 1;
                    self.deliver(local, *env, now_ms);
                }
            }
        }
        work
    }

    /// Feeds one arrived envelope into its node, mirroring the worker
    /// loop's message path (including the live crash re-check: a window
    /// that opened since the iteration began must still eat the frame).
    fn deliver(&mut self, local: usize, env: Envelope, now_ms: u64) {
        let mut out = std::mem::take(&mut self.out_scratch);
        self.deliver_inner(local, env, now_ms, &mut out);
        self.dispatch(local, &mut out, now_ms);
        self.out_scratch = out;
    }

    /// The machine half of [`Reactor::deliver`]: everything that may
    /// early-return before any output exists. Split from the dispatch
    /// half so the scratch buffer is restored on every path.
    fn deliver_inner(&mut self, local: usize, env: Envelope, now_ms: u64, out: &mut Vec<Output>) {
        let ctx = self.ctx.clone();
        let Some(node) = self.nodes.get_mut(local) else {
            return;
        };
        if node.slot.stopped {
            return;
        }
        if env.msg == ProtoMsg::Shutdown {
            // Stop accepting and discard the node — but keep the
            // loop running until every sibling is down too.
            node.slot.stopped = true;
            node.listener = None;
            return;
        }
        let crashed_live = node.slot.crashed
            || ctx
                .shim
                .as_ref()
                .is_some_and(|s| s.crashed_until(node.slot.me, ctx.now_ms()).is_some());
        if crashed_live {
            if let Some(shim) = &ctx.shim {
                shim.crash_dropped.inc();
            }
            return;
        }
        // The reliable layer acks, dedups and unwraps first; only
        // genuinely new payloads reach the machine.
        if let Some(msg) = node.slot.chan.accept(env.from, env.msg, out) {
            match &mut node.slot.role {
                Role::Coordinator { proto, rng, .. } => {
                    proto.on_message(now_ms, env.from, msg, rng, out);
                }
                Role::Aggregator { proto } => proto.on_message(env.from, msg, out),
                Role::Measurement { proto, .. } => {
                    let mut events = Vec::new();
                    proto.on_message(now_ms, env.from, msg, out, &mut events);
                }
                Role::Database { proto } => {
                    let mut events = Vec::new();
                    proto.on_message(now_ms, env.from, msg, out, &mut events);
                }
                Role::Ipc { proto } => {
                    let mut world = ctx.world.lock();
                    // sheriff-lint: allow(callback-under-lock) — the IPC machine's signature takes `&mut World`; the guard spans exactly this call and the world mutex is a leaf (no lock is ever taken inside a machine)
                    proto.on_message(now_ms, env.from, msg, &mut world, out);
                }
                Role::Peer { proto } => {
                    {
                        let mut world = ctx.world.lock();
                        // sheriff-lint: allow(callback-under-lock) — same shape as the Ipc arm: `&mut World` in the signature, leaf mutex, guard dropped before `drain_peer` touches the sink
                        proto.on_message(now_ms, env.from, msg, &mut world, out);
                    }
                    drain_peer(proto, &ctx.sink);
                }
            }
        }
        node.slot.chan.harden(out);
    }

    /// Applies a machine's outputs: sends join the per-link write
    /// queues (or the delay park), timers join the virtual-time queue.
    /// Drains the buffer so callers can hand the same scratch `Vec`
    /// back in on the next event.
    fn dispatch(&mut self, local: usize, out: &mut Vec<Output>, now_ms: u64) {
        for o in out.drain(..) {
            match o {
                Output::Send { to, msg } | Output::SendFetched { to, msg } => {
                    self.send_from(local, to, msg, now_ms);
                }
                Output::Timer { delay_ms, kind } => {
                    self.push_timer(now_ms + delay_ms, local, kind.token());
                }
            }
        }
    }

    /// The reactor's write edge: the Byzantine shim rules first (the
    /// sender's own misbehavior — same consult point as the DES
    /// dispatch path), then the fault shim rules each emitted copy
    /// (drop / duplicate / delay), then the frame joins its link FIFO.
    fn send_from(&mut self, local: usize, to: Address, msg: ProtoMsg, now_ms: u64) {
        let Some(me) = self.nodes.get(local).map(|n| n.slot.me) else {
            return;
        };
        if !self.ctx.dir.contains_key(&to) {
            return;
        }
        let msgs: Vec<ProtoMsg> = match self.ctx.byz.clone() {
            Some(byz) => {
                let d = byz.decide(me, to, byzantine::price_bearing(&msg));
                if d.is_honest() {
                    vec![msg]
                } else if let Some(attack) = d.codec {
                    // Byte-level attack: the protocol message is
                    // consumed and a raw frame goes out instead,
                    // outside the fault schedule (which never saw this
                    // send on the DES side either).
                    self.launch_codec_attack(to, attack, d.occurrence);
                    return;
                } else {
                    let applied = byzantine::apply(&d, msg);
                    let mut v = Vec::new();
                    v.extend(applied.primary);
                    v.extend(applied.junk);
                    v
                }
            }
            None => vec![msg],
        };
        for msg in msgs {
            let (copies, delay_ms) = match &self.ctx.shim {
                Some(shim) => match shim.outbound(now_ms, me, to) {
                    Some(verdict) => verdict,
                    None => continue, // dropped by the schedule
                },
                None => (1, 0),
            };
            let env = Envelope { from: me, msg };
            if delay_ms == 0 {
                self.enqueue_out(local, to, env, copies);
            } else {
                self.seq += 1;
                self.delayed.push(DelayedSend {
                    due_ms: now_ms + delay_ms,
                    seq: self.seq,
                    local,
                    to,
                    env,
                    copies,
                });
            }
        }
    }

    /// Opens a raw adversarial connection toward `to`: a garbage
    /// payload, a lying oversized length prefix, or a slow-loris
    /// half-frame. The receiver's codec hardening (length cap, parse
    /// failure, idle reaping) is exactly what these exercise.
    fn launch_codec_attack(&mut self, to: Address, attack: CodecAttack, occurrence: u64) {
        let Some(&addr) = self.ctx.dir.get(&to) else {
            return;
        };
        if let Some(conn) = RawOutbound::open(addr, attack, occurrence) {
            self.raw.push(conn);
        }
    }

    /// Pumps the raw attack connections. Finished slow-loris streams
    /// stay parked (held open, never written again) until the victim
    /// reaps them; everything else retires once flushed.
    fn pump_raw(&mut self) -> usize {
        let mut work = 0;
        let mut i = 0;
        while i < self.raw.len() {
            let Some(conn) = self.raw.get_mut(i) else {
                break;
            };
            match conn.pump() {
                Some(true) => {
                    work += 1;
                    i += 1;
                }
                Some(false) => i += 1,
                None => {
                    self.raw.remove(i);
                    work += 1;
                }
            }
        }
        work
    }

    fn enqueue_out(&mut self, local: usize, to: Address, env: Envelope, copies: usize) {
        let idx = match self
            .links
            .iter()
            .position(|l| l.local == local && l.to == to)
        {
            Some(i) => i,
            None => {
                self.links.push(OutLink {
                    local,
                    to,
                    inflight: None,
                    queue: VecDeque::new(),
                });
                self.links.len() - 1
            }
        };
        if let Some(link) = self.links.get_mut(idx) {
            for _ in 0..copies {
                link.queue.push_back(env.clone());
            }
        }
    }

    /// Releases fault-delayed sends whose due time arrived, oldest
    /// first (ties broken by issue order).
    fn release_delayed(&mut self, now_ms: u64) -> usize {
        if self.delayed.is_empty() {
            return 0;
        }
        let (mut due, rest): (Vec<DelayedSend>, Vec<DelayedSend>) =
            std::mem::take(&mut self.delayed)
                .into_iter()
                .partition(|d| d.due_ms <= now_ms);
        self.delayed = rest;
        due.sort_by_key(|d| (d.due_ms, d.seq));
        let n = due.len();
        for d in due {
            self.enqueue_out(d.local, d.to, d.env, d.copies);
        }
        n
    }

    /// Flushes the per-link queues; when a frame finishes, the next one
    /// on that link opens immediately.
    fn pump_outbound(&mut self) -> usize {
        let mut work = 0;
        // sheriff-lint: hot-loop
        for link in &mut self.links {
            loop {
                if link.inflight.is_none() {
                    let Some(env) = link.queue.pop_front() else {
                        break;
                    };
                    let Some(&addr) = self.ctx.dir.get(&link.to) else {
                        work += 1;
                        continue;
                    };
                    // A `None` here is a destination gone post-shutdown:
                    // the frame is dropped, like the blocking path's
                    // failed connect.
                    if let Some(o) = Outbound::open(addr, &env) {
                        link.inflight = Some(o);
                    }
                    work += 1;
                }
                match link.inflight.as_mut().map(|o| o.pump(&self.ctx.wire)) {
                    Some(OutboundEvent::Done | OutboundEvent::Failed) => {
                        link.inflight = None;
                        work += 1;
                    }
                    Some(OutboundEvent::Pending) => break,
                    None => {}
                }
            }
        }
        self.links
            .retain(|l| l.inflight.is_some() || !l.queue.is_empty());
        work
    }
}
