//! Per-connection state machines for the reactor.
//!
//! The transport contract is unchanged from the blocking backend: one
//! [`Envelope`] per connection, connect–write–close. What changes is
//! *how* the bytes move — both directions are nonblocking and
//! incremental, so a shard's event loop is never parked on a socket:
//!
//! * [`Inbound`] assembles one length-prefixed frame a readiness burst
//!   at a time and surfaces it as an [`InboundEvent`];
//! * [`Outbound`] holds one already-encoded frame and flushes it as the
//!   socket accepts bytes, counting it in the wire telemetry only once
//!   the final byte is written (the same point the blocking
//!   `send_counted` path counted at).
//!
//! This file is inside the `sheriff-lint` panic-freedom scope: every
//! slice access goes through `get`, every fallible call is handled.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};

use sheriff_netsim::CodecAttack;

use crate::frame::MAX_FRAME_LEN;
use crate::proto::Envelope;
use crate::telemetry::WireTelemetry;

/// How long a silent inbound connection may sit before the reactor reaps
/// it — the same guard the blocking acceptor expressed as a read timeout.
pub(crate) const IDLE_CONN_MS: u64 = 5_000;

/// Read-buffer granularity. Frames are typically well under this; large
/// fetch replies just take a few extra passes.
const READ_CHUNK: usize = 16 * 1024;

/// What one pump pass over an [`Inbound`] connection produced.
pub(crate) enum InboundEvent {
    /// Nothing new yet; keep the connection registered.
    Pending,
    /// One full envelope arrived. The connection is finished with it
    /// (the transport is one frame per connection).
    Frame(Box<Envelope>),
    /// The connection is over: EOF, an oversized length prefix, a
    /// payload that failed to parse, or a transport error. The blocking
    /// acceptor treated all of these as "the transport's problem, not
    /// the protocol's" and so does the reactor.
    Closed,
}

/// Incremental reader for one length-prefixed frame on a nonblocking
/// stream.
pub(crate) struct Inbound {
    stream: TcpStream,
    /// Local slot of the node whose listener accepted the stream.
    pub(crate) slot: usize,
    /// Virtual-ms timestamp of the accept, for idle reaping.
    pub(crate) opened_ms: u64,
    buf: Vec<u8>,
}

impl Inbound {
    pub(crate) fn new(stream: TcpStream, slot: usize, opened_ms: u64) -> Inbound {
        Inbound {
            stream,
            slot,
            opened_ms,
            buf: Vec::new(),
        }
    }

    /// Announced payload length once the 4-byte prefix is buffered.
    fn announced_len(&self) -> Option<usize> {
        let prefix = self.buf.get(..4)?;
        Some(
            prefix
                .iter()
                .fold(0usize, |acc, &b| (acc << 8) | usize::from(b)),
        )
    }

    /// Drains whatever the socket has ready right now and returns the
    /// connection's new state.
    pub(crate) fn pump(&mut self, wire: &WireTelemetry) -> InboundEvent {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if let Some(len) = self.announced_len() {
                if len > MAX_FRAME_LEN {
                    return InboundEvent::Closed;
                }
                if self.buf.len() >= 4 + len {
                    // Count the frame exactly like `recv_counted`: the
                    // bytes arrived even if the payload fails to parse.
                    wire.received(len);
                    let payload = self.buf.get(4..4 + len).unwrap_or(&[]);
                    return match serde_json::from_slice::<Envelope>(payload) {
                        Ok(env) => InboundEvent::Frame(Box::new(env)),
                        Err(_) => InboundEvent::Closed,
                    };
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return InboundEvent::Closed,
                Ok(n) => self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return InboundEvent::Pending,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return InboundEvent::Closed,
            }
        }
    }
}

/// What one pump pass over an [`Outbound`] connection produced.
pub(crate) enum OutboundEvent {
    /// The socket is full; try again next iteration.
    Pending,
    /// The whole frame is on the wire (and counted); close the stream.
    Done,
    /// The destination vanished mid-write (a post-shutdown send). The
    /// frame is dropped silently and *uncounted*, matching the blocking
    /// path's `let _ = env.send_counted(..)` on a failed connect.
    Failed,
}

/// Incremental writer for one already-encoded frame on a nonblocking
/// stream.
pub(crate) struct Outbound {
    stream: TcpStream,
    frame: Vec<u8>,
    written: usize,
    payload_len: usize,
}

impl Outbound {
    /// Encodes `env` and opens a connection toward `addr`. The connect
    /// itself is the kernel's three-way handshake against a loopback
    /// listener's accept queue — it completes immediately whether or not
    /// the destination shard has accepted yet, so the event loop is not
    /// stalled. `None` means the destination is gone (or the envelope is
    /// oversized); the caller drops the frame, as the blocking path did.
    pub(crate) fn open(addr: SocketAddr, env: &Envelope) -> Option<Outbound> {
        let payload = serde_json::to_vec(env).ok()?;
        if payload.len() > MAX_FRAME_LEN {
            return None;
        }
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nonblocking(true).ok()?;
        let payload_len = payload.len();
        let mut frame = Vec::with_capacity(4 + payload_len);
        frame.extend_from_slice(&(payload_len as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        Some(Outbound {
            stream,
            frame,
            written: 0,
            payload_len,
        })
    }

    /// Pushes as many bytes as the socket will take.
    pub(crate) fn pump(&mut self, wire: &WireTelemetry) -> OutboundEvent {
        while self.written < self.frame.len() {
            let rest = self.frame.get(self.written..).unwrap_or(&[]);
            match self.stream.write(rest) {
                Ok(0) => return OutboundEvent::Failed,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return OutboundEvent::Pending,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return OutboundEvent::Failed,
            }
        }
        wire.sent(self.payload_len);
        OutboundEvent::Done
    }
}

/// A deliberately malformed outbound connection — the byte-level half of
/// a Byzantine codec attack. Never counted in the wire telemetry (the
/// bytes are not protocol frames) and never part of a link FIFO (the
/// DES twin drops the message outright, so attack traffic must not
/// delay the attacker's own honest sends).
pub(crate) struct RawOutbound {
    stream: TcpStream,
    frame: Vec<u8>,
    written: usize,
    /// Slow-loris: once flushed, the connection is parked open and
    /// silent so the victim's idle reaping is what ends it.
    hold_open: bool,
}

impl RawOutbound {
    /// Builds the attack bytes and opens the connection. `occurrence`
    /// (the link's message counter at decision time) varies the garbage
    /// so repeated attacks are not byte-identical.
    pub(crate) fn open(
        addr: SocketAddr,
        attack: CodecAttack,
        occurrence: u64,
    ) -> Option<RawOutbound> {
        let (frame, hold_open) = match attack {
            CodecAttack::Garbage => {
                // An honest length prefix over bytes that can never
                // parse as a JSON envelope (high bit set throughout).
                let mut f = Vec::with_capacity(4 + 64);
                f.extend_from_slice(&64u32.to_be_bytes());
                f.extend(
                    (0..64u8).map(|i| (occurrence as u8).wrapping_mul(31).wrapping_add(i) | 0x80),
                );
                (f, false)
            }
            CodecAttack::Oversize => {
                // A lying length field one past the cap; the receiver
                // must refuse before allocating anything of that size.
                (((MAX_FRAME_LEN as u32) + 1).to_be_bytes().to_vec(), false)
            }
            CodecAttack::SlowLoris => {
                // Announce a frame, deliver eight bytes of it, go quiet.
                let mut f = Vec::with_capacity(4 + 8);
                f.extend_from_slice(&256u32.to_be_bytes());
                f.extend_from_slice(&occurrence.to_be_bytes());
                (f, true)
            }
        };
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nonblocking(true).ok()?;
        Some(RawOutbound {
            stream,
            frame,
            written: 0,
            hold_open,
        })
    }

    /// Pushes attack bytes. `Some(true)` made progress, `Some(false)`
    /// is pending or parked, `None` retires the connection.
    pub(crate) fn pump(&mut self) -> Option<bool> {
        let mut progressed = false;
        while self.written < self.frame.len() {
            let rest = self.frame.get(self.written..).unwrap_or(&[]);
            match self.stream.write(rest) {
                Ok(0) => return None,
                Ok(n) => {
                    self.written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Some(progressed),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
        if self.hold_open {
            // Flushed and parked: the victim's idle reap closes it.
            Some(progressed)
        } else {
            None
        }
    }
}
