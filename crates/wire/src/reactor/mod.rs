//! The nonblocking, readiness-driven wire backend.
//!
//! The first TCP deployment spawned one acceptor + worker thread pair
//! per node — fine for a localhost roster, hopeless for the paper's
//! deployed population (1265 installed add-ons, §8) or the heavier
//! crowds the ROADMAP aims at. This module replaces that architecture
//! with **sharded reactors**:
//!
//! * the roster is partitioned over a small set of *shards* by a
//!   deterministic hash of each node's logical address
//!   ([`shard::shard_of`]);
//! * each shard is one thread running an event loop
//!   ([`reactor::Reactor`]) that owns its nodes' listeners, live
//!   connections ([`conn`]), and a virtual-time timer queue — no
//!   per-node threads, no blocking reads, no per-thread sleeps;
//! * the sans-IO protocol machines from `sheriff_core::protocol` are
//!   driven byte-for-byte as before: the reliable channel wraps
//!   inbound frames, outputs become per-link FIFO writes, timer
//!   requests land on the shard's queue, and the fault shim
//!   ([`shard::FaultShim`]) applies the *same* deterministic schedule
//!   the DES engine consumes at the read/write edges.
//!
//! The parity, chaos-parity and durability-soak suites run unchanged on
//! this backend — that invariance is the proof the refactor is a pure
//! driver swap. What changed is capacity: a deployment's thread count
//! is now `O(shards)`, not `O(nodes)`, so thousand-peer rosters run on
//! eight threads.

pub(crate) mod conn;
#[allow(clippy::module_inception)]
pub(crate) mod reactor;
pub(crate) mod shard;

/// Tuning knobs for [`MiniDeployment::start_with_options`].
///
/// [`MiniDeployment::start_with_options`]: crate::deploy::MiniDeployment::start_with_options
#[derive(Clone, Debug, Default)]
pub struct DeployOptions {
    /// Reactor shard count. `0` (the default) picks one shard per
    /// eight nodes, capped at eight — small test rosters stay compact,
    /// thousand-peer soaks spread across eight threads.
    pub shards: usize,
    /// Byzantine misbehavior schedule, phrased against the same node
    /// numbering the fault plan uses. An inactive (all-honest) plan is
    /// bypassed entirely: a strict no-op.
    pub byzantine: Option<sheriff_netsim::ByzantinePlan>,
}
