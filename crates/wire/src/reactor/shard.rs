//! Shard-level state: which node lives where, the per-node protocol
//! slot the reactor drives, and the fault shim applied at the reactor's
//! read/write edges.
//!
//! A *shard* is a single-threaded event loop (see
//! [`Reactor`](super::reactor::Reactor)) owning the listeners, live
//! connections and timer queue of a subset of the deployment's nodes.
//! Placement is [`shard_of`]: a seed-free FNV-1a hash over a stable
//! encoding of the logical [`Address`], so the same roster always
//! shards the same way — the soak tests recompute the layout to kill a
//! whole shard deliberately.
//!
//! Everything protocol-visible stays byte-for-byte what the
//! thread-per-node backend did: the [`Role`] enum and the fault-shim
//! verdicts moved here unchanged; only the thread that runs them is new.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rand::rngs::StdRng;

use sheriff_core::protocol::{
    Address, AggregatorProto, Channel, CoordinatorProto, DbProto, IpcProto, MeasurementProto,
    PeerProto,
};
use sheriff_market::World;
use sheriff_netsim::{ByzDecision, ByzStats, ByzantinePlan, FaultPlan, FaultStats};
use sheriff_telemetry::{Counter, Gauge, Registry};

use crate::deploy::Sink;
use crate::telemetry::WireTelemetry;

/// One role machine plus whatever driver-side state it needs — the same
/// enum the worker threads used to own, now driven by a shard reactor.
pub(crate) enum Role {
    Coordinator {
        proto: Box<CoordinatorProto>,
        rng: StdRng,
        /// Period (and first-fire phase) of the §10.3 recovery sweep.
        sweep_every_ms: u64,
    },
    Aggregator {
        proto: AggregatorProto,
    },
    Measurement {
        proto: Box<MeasurementProto>,
        /// Liveness beacon period; also when the first beacon fires (a
        /// fixed phase keeps deployment frame counts deterministic).
        beacon_every_ms: u64,
    },
    Database {
        proto: Box<DbProto>,
    },
    Ipc {
        proto: Box<IpcProto>,
    },
    Peer {
        proto: Box<PeerProto>,
    },
}

/// Per-node protocol state inside a shard: the machine, its reliable
/// channel, and the crash/stop flags the reactor's edges consult.
pub(crate) struct NodeSlot {
    /// Logical address (also the key into the directory).
    pub(crate) me: Address,
    pub(crate) role: Role,
    pub(crate) chan: Channel,
    /// Inside a scheduled crash window right now; flipping back to
    /// `false` is the restart edge.
    pub(crate) crashed: bool,
    /// Received its Shutdown frame; listener closed, timers discarded.
    pub(crate) stopped: bool,
}

impl NodeSlot {
    pub(crate) fn new(me: Address, role: Role, chan: Channel) -> NodeSlot {
        NodeSlot {
            me,
            role,
            chan,
            crashed: false,
            stopped: false,
        }
    }
}

/// Context shared by every shard of one deployment. Cheap to clone —
/// all heavy state is behind `Arc`s.
#[derive(Clone)]
pub(crate) struct ShardCtx {
    /// Logical address → listener socket address.
    pub(crate) dir: Arc<HashMap<Address, SocketAddr>>,
    pub(crate) wire: Arc<WireTelemetry>,
    pub(crate) world: Arc<Mutex<World>>,
    /// Deployment start; virtual milliseconds are real elapsed time
    /// since this instant (the one place wall time enters the system).
    pub(crate) epoch: Instant,
    pub(crate) sink: Arc<Sink>,
    /// Installed only when the deployment was started with an *active*
    /// fault plan, so the fault-free path is byte-identical to before.
    pub(crate) shim: Option<Arc<FaultShim>>,
    /// Installed only for an *active* Byzantine plan — consulted at the
    /// reactor's write edge exactly where the DES engine consults its
    /// twin, so both backends corrupt the same traffic.
    pub(crate) byz: Option<Arc<ByzShim>>,
    pub(crate) unknown_timers: Arc<Counter>,
    /// `wire.reactor_wakeups`: iterations that found work to do.
    pub(crate) wakeups: Arc<Counter>,
    /// `wire.shard_queue_depth`: high-water mark of pending work
    /// (inbound connections + queued frames + delayed sends) across all
    /// shards.
    pub(crate) queue_depth: Arc<Gauge>,
}

impl ShardCtx {
    pub(crate) fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Applies a [`FaultPlan`] — the very schedule the DES engine consumes —
/// at the reactor's socket edges. Nodes are numbered exactly like the
/// DES deployment (`coordinator, aggregator, db?, servers…, ipcs…,
/// ppcs…`), and the plan keys its decisions on per-link occurrence
/// counters rather than wall-clock, so one schedule means the same
/// drops, duplicates and crash windows on either backend. The *write*
/// edge asks [`FaultShim::outbound`] before a frame is queued; the
/// *read* edge drops completed frames for crashed nodes and defers
/// their timers.
pub(crate) struct FaultShim {
    plan: Mutex<FaultPlan>,
    index: HashMap<Address, usize>,
    dropped: Arc<Counter>,
    duplicated: Arc<Counter>,
    delayed: Arc<Counter>,
    partition_drops: Arc<Counter>,
    pub(crate) crash_dropped: Arc<Counter>,
    pub(crate) node_restarts: Arc<Counter>,
    pub(crate) timers_deferred: Arc<Counter>,
}

impl FaultShim {
    pub(crate) fn new(
        plan: FaultPlan,
        index: HashMap<Address, usize>,
        registry: &Arc<Registry>,
    ) -> FaultShim {
        FaultShim {
            plan: Mutex::new(plan),
            index,
            dropped: registry.counter("faults.dropped"),
            duplicated: registry.counter("faults.duplicated"),
            delayed: registry.counter("faults.delayed"),
            partition_drops: registry.counter("faults.partition_drops"),
            crash_dropped: registry.counter("faults.crash_dropped"),
            node_restarts: registry.counter("faults.node_restarts"),
            timers_deferred: registry.counter("faults.timers_deferred"),
        }
    }

    /// Running totals of the schedule's decisions.
    pub(crate) fn stats(&self) -> FaultStats {
        self.plan.lock().stats
    }

    /// Send-time verdict for one envelope, mirroring the DES engine
    /// (which consults the plan when the send output is dispatched):
    /// `None` eats it, otherwise `(copies, extra_delay_ms)`.
    pub(crate) fn outbound(&self, now_ms: u64, from: Address, to: Address) -> Option<(usize, u64)> {
        let (Some(&f), Some(&t)) = (self.index.get(&from), self.index.get(&to)) else {
            return Some((1, 0));
        };
        let mut plan = self.plan.lock();
        let before = plan.stats;
        let d = plan.decide(now_ms, f, t);
        let after = plan.stats;
        self.dropped.add(after.dropped - before.dropped);
        self.duplicated.add(after.duplicated - before.duplicated);
        self.delayed.add(after.delayed - before.delayed);
        self.partition_drops
            .add(after.partition_drops - before.partition_drops);
        if d.drop {
            None
        } else {
            Some((1 + d.duplicate as usize, d.extra_delay_ms))
        }
    }

    /// The restart millisecond when `node` sits inside a crash window.
    pub(crate) fn crashed_until(&self, node: Address, now_ms: u64) -> Option<u64> {
        let &idx = self.index.get(&node)?;
        self.plan.lock().restart_at(idx, now_ms)
    }
}

/// Applies a [`ByzantinePlan`] — the very schedule the DES engine
/// consumes — at the reactor's write edge. Nodes are numbered exactly
/// like the DES deployment, and the plan keys its decisions on
/// per-directed-link occurrence counters rather than wall-clock, so one
/// schedule means the same equivocations, fabrications, replays and
/// floods on either backend. Unlike the fault shim this one sits
/// *before* the fault verdict: misbehavior is something the sender does,
/// not something the network does, and every emitted copy (primary and
/// junk alike) still faces the fault schedule individually — the same
/// order the DES dispatch path uses.
pub(crate) struct ByzShim {
    plan: Mutex<ByzantinePlan>,
    index: HashMap<Address, usize>,
}

impl ByzShim {
    pub(crate) fn new(plan: ByzantinePlan, index: HashMap<Address, usize>) -> ByzShim {
        ByzShim {
            plan: Mutex::new(plan),
            index,
        }
    }

    /// Running totals of the schedule's decisions.
    pub(crate) fn stats(&self) -> ByzStats {
        self.plan.lock().stats
    }

    /// Send-time decision for one envelope. Links whose endpoints are
    /// outside the roster (externally injected frames) are honest by
    /// definition — the DES engine never sees those sends either.
    pub(crate) fn decide(&self, from: Address, to: Address, price_bearing: bool) -> ByzDecision {
        let (Some(&f), Some(&t)) = (self.index.get(&from), self.index.get(&to)) else {
            return ByzDecision::HONEST;
        };
        self.plan.lock().decide(f, t, price_bearing)
    }
}

/// Moves a peer add-on's freshly observable outcomes into the shared
/// sink, waking any `await_check` caller.
pub(crate) fn drain_peer(proto: &mut PeerProto, sink: &Sink) {
    if proto.completed.is_empty() && proto.rejected.is_empty() && proto.server_removals.is_empty() {
        return;
    }
    let Ok(mut st) = sink.state.lock() else {
        return;
    };
    st.completed.append(&mut proto.completed);
    st.rejected.append(&mut proto.rejected);
    st.removals.append(&mut proto.server_removals);
    sink.cv.notify_all();
}

/// Deterministic node→shard placement: FNV-1a over a stable
/// `(discriminant, id)` encoding of the address, reduced by shard
/// count. Seed-free on purpose — the layout is a pure function of the
/// roster, so tests (and operators) can recompute which nodes share a
/// fate when one reactor thread is killed.
pub(crate) fn shard_of(addr: Address, n_shards: usize) -> usize {
    let (tag, id) = match addr {
        Address::Coordinator => (0u8, 0u64),
        Address::Aggregator => (1, 0),
        Address::Database => (2, 0),
        Address::Server { index } => (3, index as u64),
        Address::Ipc { index } => (4, index as u64),
        Address::Peer { id } => (5, id),
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in std::iter::once(tag).chain(id.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_shards.max(1) as u64) as usize
}

/// Default shard count for a roster: one shard per eight nodes, between
/// one and eight. Small test deployments stay on a couple of threads;
/// thousand-peer soaks spread across eight.
pub(crate) fn default_shard_count(n_nodes: usize) -> usize {
    n_nodes.div_ceil(8).clamp(1, 8)
}
