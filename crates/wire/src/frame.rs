//! Length-prefixed framing over byte streams.
//!
//! Each frame is `[len: u32 big-endian][payload: len bytes]`. The length is
//! bounded by [`MAX_FRAME_LEN`] so a corrupt or malicious peer cannot make
//! the reader allocate unbounded memory — the standard defensive rule for
//! length-prefixed protocols.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use bytes::{BufMut, BytesMut};

/// Upper bound on a frame payload (product pages are a few KiB; 8 MiB is
/// generous headroom).
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error.
    Io(io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// Stream ended mid-frame.
    UnexpectedEof,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::UnexpectedEof => write!(f, "stream ended mid-frame"),
        }
    }
}

impl Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::UnexpectedEof
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(payload.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Memory committed per read step: a lying length prefix costs at most
/// one chunk of allocation before the stream runs dry, not the full
/// announced length.
const READ_CHUNK: usize = 16 * 1024;

/// Reads one frame. `Ok(None)` on clean EOF at a frame boundary.
///
/// The payload buffer grows chunk-by-chunk as bytes actually arrive, so
/// a peer that announces `MAX_FRAME_LEN` and hangs up holds at most
/// [`READ_CHUNK`] of memory here — never the announced length.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes) from mid-frame EOF.
    if r.read(&mut len_buf[..1])? == 0 {
        return Ok(None);
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let step = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + step, 0);
        r.read_exact(&mut payload[start..])?;
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello world");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn roundtrip_many_frames() {
        let mut buf = Vec::new();
        for i in 0..100 {
            write_frame(&mut buf, format!("frame-{i}").as_bytes()).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for i in 0..100 {
            assert_eq!(
                read_frame(&mut cur).unwrap().unwrap(),
                format!("frame-{i}").as_bytes()
            );
        }
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn empty_payload_ok() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
    }

    #[test]
    fn oversized_frame_rejected_on_write() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &huge),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full frame").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(FrameError::UnexpectedEof)
        ));
    }

    #[test]
    fn payload_spanning_many_chunks_roundtrips() {
        // Crosses the incremental-read boundary twice plus a remainder.
        let payload: Vec<u8> = (0..READ_CHUNK * 2 + 7).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), payload);
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// A reader that hands out one byte at a time: the chunk loop must
    /// tolerate arbitrarily fragmented arrival.
    struct Trickle(Cursor<Vec<u8>>);

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn fragmented_arrival_reassembles() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"drip by drip").unwrap();
        let mut r = Trickle(Cursor::new(buf));
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"drip by drip");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn lying_length_prefix_is_eof_not_a_big_allocation() {
        // Announces the maximum legal frame but delivers ten bytes. The
        // incremental reader commits at most one chunk before the
        // stream runs dry — observable here as a prompt `UnexpectedEof`
        // rather than an 8 MiB zeroed buffer.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32).to_be_bytes());
        buf.extend_from_slice(&[0xAB; 10]);
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(FrameError::UnexpectedEof)
        ));
    }

    #[test]
    fn truncated_length_is_unexpected_eof() {
        let mut cur = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cur),
            Err(FrameError::UnexpectedEof)
        ));
    }
}
