//! Frame and byte accounting for the TCP deployment.
//!
//! Every framed send/receive in the mini-deployment (and its add-on
//! client) goes through [`Envelope::send_counted`] /
//! [`Envelope::recv_counted`](crate::proto::Envelope::recv_counted) with a
//! shared [`WireTelemetry`], so over loopback the invariant *frames out ==
//! frames in* (and likewise for bytes) holds once the deployment drains —
//! the concurrency tests assert no increments are lost under parallel
//! clients.
//!
//! [`Envelope::send_counted`]: crate::proto::Envelope::send_counted

use std::sync::Arc;

use sheriff_telemetry::{Counter, Registry};

/// Cached counter handles for the wire layer.
#[derive(Debug)]
pub struct WireTelemetry {
    /// Frames written (`wire.frames_out`).
    pub frames_out: Arc<Counter>,
    /// Bytes written including the 4-byte length prefix (`wire.bytes_out`).
    pub bytes_out: Arc<Counter>,
    /// Frames read (`wire.frames_in`).
    pub frames_in: Arc<Counter>,
    /// Bytes read including the length prefix (`wire.bytes_in`).
    pub bytes_in: Arc<Counter>,
}

impl WireTelemetry {
    /// Resolves the `wire.*` counters in `registry`.
    pub fn new(registry: &Arc<Registry>) -> Self {
        WireTelemetry {
            frames_out: registry.counter("wire.frames_out"),
            bytes_out: registry.counter("wire.bytes_out"),
            frames_in: registry.counter("wire.frames_in"),
            bytes_in: registry.counter("wire.bytes_in"),
        }
    }

    /// Records one outgoing frame with `payload_len` payload bytes.
    pub fn sent(&self, payload_len: usize) {
        self.frames_out.inc();
        self.bytes_out.add(payload_len as u64 + 4);
    }

    /// Records one incoming frame with `payload_len` payload bytes.
    pub fn received(&self, payload_len: usize) {
        self.frames_in.inc();
        self.bytes_in.add(payload_len as u64 + 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_include_the_length_prefix() {
        let registry = Arc::new(Registry::new());
        let t = WireTelemetry::new(&registry);
        t.sent(10);
        t.received(10);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["wire.frames_out"], 1);
        assert_eq!(snap.counters["wire.bytes_out"], 14);
        assert_eq!(snap.counters["wire.bytes_in"], 14);
    }
}
