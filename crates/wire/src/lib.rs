//! Real networking for the Price $heriff: a length-prefixed JSON frame
//! codec over TCP and a runnable localhost mini-deployment.
//!
//! The discrete-event simulation in `sheriff-core` answers the paper's
//! performance questions; this crate answers "does the protocol actually
//! run over sockets?". Since the protocol refactor both backends execute
//! the *same* sans-IO state machines from `sheriff_core::protocol` — this
//! crate only supplies the transport:
//!
//! * [`frame`] — a 4-byte big-endian length prefix followed by a JSON
//!   payload (the classic framing exercise; JSON because the deployed
//!   back-end spoke PHP/JS, §10.5);
//! * [`proto`] — the [`Envelope`] wrapper that carries
//!   `sheriff_core::protocol::ProtoMsg` (the one unified message enum)
//!   over frames, plus the Fig. 2 [`ResultRow`] view;
//! * [`deploy`] — the full node roster (Coordinator, Aggregator,
//!   Measurement/Database servers, IPCs, PPC add-ons) on ephemeral
//!   localhost ports, partitioned over a small set of reactor shards,
//!   with graceful shutdown that joins every shard thread;
//! * [`reactor`] — the nonblocking, readiness-driven event loop behind
//!   [`deploy`]: per-shard reactors own their nodes' listeners, live
//!   connections and a virtual-time timer queue, so thread count is
//!   `O(shards)` rather than `O(nodes)` and thousand-peer rosters fit;
//! * [`storage`] — a file-backed implementation of the core
//!   `durability::Storage` trait, so the Database worker's WAL and
//!   snapshots live on disk and a restart recovers by reading them back;
//! * [`telemetry`] — frame/byte counters shared by every framed send and
//!   receive in the deployment, so loopback traffic balances exactly.
//!
//! Everything is plain `std::net` driven nonblocking by the reactors: no
//! async runtime and no unsafe, and determinism of the *content* is
//! preserved because the synthetic web behind it is deterministic — the
//! `backend_parity` test pins DES and TCP runs to identical observations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod frame;
pub mod proto;
pub mod reactor;
pub mod storage;
pub mod telemetry;

pub use deploy::MiniDeployment;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use proto::{rows_from_check, Envelope, ResultRow};
pub use reactor::DeployOptions;
pub use storage::FileStorage;
pub use telemetry::WireTelemetry;
