//! Real networking for the Price $heriff: a length-prefixed JSON frame
//! codec over TCP and a runnable localhost mini-deployment.
//!
//! The discrete-event simulation in `sheriff-core` answers the paper's
//! performance questions; this crate answers "does the protocol actually
//! run over sockets?". It implements:
//!
//! * [`frame`] — a 4-byte big-endian length prefix followed by a JSON
//!   payload (the classic framing exercise; JSON because the deployed
//!   back-end spoke PHP/JS, §10.5);
//! * [`proto`] — the wire messages of the §3.2 protocol;
//! * [`deploy`] — a Coordinator + Measurement-server + peers deployment on
//!   ephemeral localhost ports, driven by real threads and real sockets;
//! * [`telemetry`] — frame/byte counters shared by every framed send and
//!   receive in the deployment, so loopback traffic balances exactly.
//!
//! Everything is blocking `std::net` with bounded reads: no async runtime
//! is needed for a handful of connections, and determinism of the *content*
//! is preserved because the synthetic web behind it is deterministic.

#![warn(missing_docs)]

pub mod deploy;
pub mod frame;
pub mod proto;
pub mod telemetry;

pub use deploy::MiniDeployment;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use proto::WireMsg;
pub use telemetry::WireTelemetry;
