//! A real localhost deployment of the Price $heriff over TCP.
//!
//! This is the "does it actually run on sockets" proof — and since the
//! protocol refactor it is a *thin transport adapter*: every role
//! (Coordinator, Aggregator, Measurement servers, Database server, IPCs,
//! PPC add-ons) is one of the sans-IO state machines from
//! [`sheriff_core::protocol`], exactly the ones the discrete-event
//! simulation drives. Each node owns a TCP listener on an ephemeral
//! localhost port plus two threads:
//!
//! * an **acceptor** that reads one [`Envelope`] per connection
//!   (connect–write–close transport) and queues it for the worker;
//! * a **worker** that feeds the machine (`on_message`, and `on_timer`
//!   from a local timer heap) and dispatches the emitted
//!   [`Output`](sheriff_core::protocol::Output) commands: sends become
//!   fresh connections to the destination's listener, timers land on the
//!   heap. Time is real elapsed milliseconds since deployment start.
//!
//! Because the state machines are shared with the simulator, the TCP path
//! gets the full §3.2 semantics — least-pending job assignment, IPC + PPC
//! fan-out, pollution budgets, doppelganger redemption — rather than a
//! hand-rolled approximation, and the `backend_parity` integration test
//! pins both backends to identical observation sets.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_core::coordinator::{Coordinator, PeerId};
use sheriff_core::pollution::PollutionLedger;
use sheriff_core::protocol::{
    Address, AggregatorProto, CompletedProtoCheck, CoordinatorProto, DbProto, IpcProto,
    MeasurementParams, MeasurementProto, Output, PeerProto, ProtoMsg, TimerKind,
};
use sheriff_core::proxy::{IpcEngine, PpcEngine};
use sheriff_core::records::PriceCheck;
use sheriff_core::system::{PpcSpec, SheriffConfig, SystemVersion};
use sheriff_core::{BrowserProfile, Whitelist};
use sheriff_geo::{Country, GeoLocator, Granularity, IpAllocator};
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_telemetry::Registry;

use crate::proto::{rows_from_check, Envelope, ResultRow};
use crate::telemetry::WireTelemetry;

/// How long [`MiniDeployment::run_check`] waits before declaring a check
/// lost.
const CHECK_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything the initiating add-ons surface to the outside world.
#[derive(Default)]
struct SinkState {
    completed: Vec<CompletedProtoCheck>,
    /// `(local_tag, reason)`.
    rejected: Vec<(u64, String)>,
    /// `(server_index, removed)` acks.
    removals: Vec<(usize, bool)>,
}

/// The sink uses `std::sync` primitives (the vendored `parking_lot` has
/// no condvar); the world stays behind `parking_lot::Mutex` to match the
/// core crate's types.
struct Sink {
    state: std::sync::Mutex<SinkState>,
    cv: std::sync::Condvar,
}

impl Sink {
    /// Blocks on the sink until `pick` yields, or `deadline` passes.
    fn wait_for<T>(
        &self,
        deadline: Instant,
        mut pick: impl FnMut(&mut SinkState) -> Option<T>,
    ) -> Option<T> {
        let mut st = self.state.lock().expect("sink poisoned");
        loop {
            if let Some(v) = pick(&mut st) {
                return Some(v);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(st, remaining).expect("sink poisoned");
            st = guard;
        }
    }
}

/// One role machine plus whatever driver-side state it needs.
enum Role {
    Coordinator {
        proto: Box<CoordinatorProto>,
        rng: StdRng,
    },
    Aggregator {
        proto: AggregatorProto,
    },
    Measurement {
        proto: Box<MeasurementProto>,
        /// Liveness beacon period; also when the first beacon fires (a
        /// fixed phase keeps deployment frame counts deterministic).
        beacon_every_ms: u64,
    },
    Database {
        proto: Box<DbProto>,
    },
    Ipc {
        proto: Box<IpcProto>,
    },
    Peer {
        proto: Box<PeerProto>,
    },
}

/// Shared per-node driver context.
struct NodeCtx {
    me: Address,
    dir: Arc<HashMap<Address, SocketAddr>>,
    wire: Arc<WireTelemetry>,
    world: Arc<Mutex<World>>,
    epoch: Instant,
    sink: Arc<Sink>,
}

impl NodeCtx {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn send(&self, to: Address, msg: ProtoMsg) {
        let Some(addr) = self.dir.get(&to) else {
            return;
        };
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = Envelope { from: self.me, msg }.send_counted(&mut s, &self.wire);
        }
    }

    /// Applies outputs: sends go out immediately (over loopback the real
    /// fetch already *happened* — there is no latency to model), timers
    /// land on the worker's heap as real deadlines.
    fn dispatch(&self, out: Vec<Output>, timers: &mut BinaryHeap<Reverse<(Instant, u64)>>) {
        for o in out {
            match o {
                Output::Send { to, msg } | Output::SendFetched { to, msg } => self.send(to, msg),
                Output::Timer { delay_ms, kind } => {
                    timers.push(Reverse((
                        Instant::now() + Duration::from_millis(delay_ms),
                        kind.token(),
                    )));
                }
            }
        }
    }
}

fn acceptor_loop(listener: TcpListener, tx: mpsc::Sender<Envelope>, wire: Arc<WireTelemetry>) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // A connected-but-silent client must not wedge the node.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        // Rude clients (instant hang-up) and garbage frames are the
        // transport's problem, not the protocol's: drop and continue.
        if let Ok(Some(env)) = Envelope::recv_counted(&mut stream, &wire) {
            let stop = env.msg == ProtoMsg::Shutdown;
            if tx.send(env).is_err() || stop {
                break;
            }
        }
    }
}

fn worker_loop(mut role: Role, rx: mpsc::Receiver<Envelope>, ctx: NodeCtx) {
    let mut timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    if let Role::Measurement {
        beacon_every_ms, ..
    } = &role
    {
        timers.push(Reverse((
            ctx.epoch + Duration::from_millis(*beacon_every_ms),
            TimerKind::Heartbeat.token(),
        )));
    }
    loop {
        // Fire every due timer.
        let now = Instant::now();
        while timers.peek().is_some_and(|Reverse((t, _))| *t <= now) {
            let Some(Reverse((_, token))) = timers.pop() else {
                break;
            };
            let Some(kind) = TimerKind::from_token(token) else {
                continue;
            };
            let mut out = Vec::new();
            match &mut role {
                Role::Measurement { proto, .. } => {
                    let mut events = Vec::new();
                    proto.on_timer(ctx.now_ms(), kind, &mut out, &mut events);
                }
                Role::Database { proto } => {
                    let mut events = Vec::new();
                    proto.on_timer(kind, &mut out, &mut events);
                }
                _ => {}
            }
            ctx.dispatch(out, &mut timers);
        }

        let wait = timers
            .peek()
            .map(|Reverse((t, _))| t.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(500))
            .min(Duration::from_millis(500));
        let env = match rx.recv_timeout(wait) {
            Ok(env) => env,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        if env.msg == ProtoMsg::Shutdown {
            break;
        }
        let now_ms = ctx.now_ms();
        let mut out = Vec::new();
        match &mut role {
            Role::Coordinator { proto, rng } => {
                proto.on_message(now_ms, env.from, env.msg, rng, &mut out);
            }
            Role::Aggregator { proto } => proto.on_message(env.from, env.msg, &mut out),
            Role::Measurement { proto, .. } => {
                let mut events = Vec::new();
                proto.on_message(now_ms, env.from, env.msg, &mut out, &mut events);
            }
            Role::Database { proto } => {
                let mut events = Vec::new();
                proto.on_message(env.from, env.msg, &mut out, &mut events);
            }
            Role::Ipc { proto } => {
                let mut world = ctx.world.lock();
                proto.on_message(now_ms, env.from, env.msg, &mut world, &mut out);
            }
            Role::Peer { proto } => {
                {
                    let mut world = ctx.world.lock();
                    proto.on_message(now_ms, env.from, env.msg, &mut world, &mut out);
                }
                drain_peer(proto, &ctx.sink);
            }
        }
        ctx.dispatch(out, &mut timers);
    }
}

/// Moves the add-on's freshly observable outcomes into the shared sink.
fn drain_peer(proto: &mut PeerProto, sink: &Sink) {
    if proto.completed.is_empty() && proto.rejected.is_empty() && proto.server_removals.is_empty() {
        return;
    }
    let mut st = sink.state.lock().expect("sink poisoned");
    st.completed.append(&mut proto.completed);
    st.rejected.append(&mut proto.rejected);
    st.removals.append(&mut proto.server_removals);
    sink.cv.notify_all();
}

/// The running deployment.
pub struct MiniDeployment {
    dir: Arc<HashMap<Address, SocketAddr>>,
    handles: Vec<JoinHandle<()>>,
    world: Arc<Mutex<World>>,
    telemetry: Arc<Registry>,
    wire: Arc<WireTelemetry>,
    sink: Arc<Sink>,
    next_tag: AtomicU64,
}

impl MiniDeployment {
    /// Starts a minimal deployment: v1 ($heriff) configuration, one
    /// Measurement server, no IPCs — peer fan-out only, with timings
    /// shrunk to wall-clock test scale. The full configuration surface is
    /// [`MiniDeployment::start_with`].
    pub fn start(world: World, peers: &[(u64, Country)]) -> io::Result<MiniDeployment> {
        let mut cfg = SheriffConfig::v1(7);
        cfg.ipc_locations.clear();
        cfg.proc_per_reply_ms = 2.0;
        cfg.context_switch_alpha = 0.0;
        cfg.job_deadline_ms = 8_000;
        cfg.heartbeat_every_ms = 3_600_000;
        let specs: Vec<PpcSpec> = peers
            .iter()
            .map(|&(peer_id, country)| PpcSpec {
                peer_id,
                country,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Linux,
                    browser: Browser::Firefox,
                },
                affluence: 0.3,
                logged_in_domains: vec![],
            })
            .collect();
        Self::start_with(world, cfg, &specs)
    }

    /// Starts the full system over TCP with the *same* configuration type
    /// the discrete-event backend takes. Fetch-latency knobs are ignored
    /// (loopback fetches are real); everything protocol-visible —
    /// version, server count, IPC roster, PPCs per request, currency,
    /// doppelganger switch, heartbeat policy — behaves identically.
    pub fn start_with(
        world: World,
        cfg: SheriffConfig,
        peers: &[PpcSpec],
    ) -> io::Result<MiniDeployment> {
        let whitelist = Whitelist::with_domains(world.domains().map(str::to_string));
        let world = Arc::new(Mutex::new(world));
        let rates = world.lock().rates.clone();
        let mut alloc = IpAllocator::new();
        let locator = GeoLocator::new(Granularity::City);
        let telemetry = Arc::new(Registry::new());
        let wire = Arc::new(WireTelemetry::new(&telemetry));
        let sink = Arc::new(Sink {
            state: std::sync::Mutex::new(SinkState::default()),
            cv: std::sync::Condvar::new(),
        });

        let n_servers = if cfg.version == SystemVersion::V1 {
            1
        } else {
            cfg.n_measurement_servers
        };
        let has_db = cfg.version == SystemVersion::V2;

        // Coordinator state. IP allocation order matches the DES backend
        // exactly (peers first, then IPCs) so both produce identical
        // observation sets under the same world seed.
        let mut coordinator = Coordinator::with_telemetry(whitelist, Arc::clone(&telemetry));
        coordinator.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
        for i in 0..n_servers {
            coordinator.register_server(&format!("ms-{i}"), 80, 0);
        }
        let mut peer_setups = Vec::new();
        for spec in peers {
            let ip = alloc.allocate(spec.country, spec.city_idx);
            let location = locator.locate(ip).expect("allocated IPs always geolocate");
            coordinator.peer_online(PeerId(spec.peer_id), ip, location.clone());
            peer_setups.push((spec.clone(), ip, location));
        }

        // Bind every listener up front so the address directory is
        // complete before any thread runs.
        let mut listeners: Vec<(Address, TcpListener)> = Vec::new();
        let mut dir = HashMap::new();
        let bind = |addr: Address,
                    listeners: &mut Vec<(Address, TcpListener)>,
                    dir: &mut HashMap<Address, SocketAddr>|
         -> io::Result<()> {
            let l = TcpListener::bind("127.0.0.1:0")?;
            dir.insert(addr, l.local_addr()?);
            listeners.push((addr, l));
            Ok(())
        };
        bind(Address::Coordinator, &mut listeners, &mut dir)?;
        bind(Address::Aggregator, &mut listeners, &mut dir)?;
        if has_db {
            bind(Address::Database, &mut listeners, &mut dir)?;
        }
        for index in 0..n_servers {
            bind(Address::Server { index }, &mut listeners, &mut dir)?;
        }
        for index in 0..cfg.ipc_locations.len() {
            bind(Address::Ipc { index }, &mut listeners, &mut dir)?;
        }
        for spec in peers {
            bind(Address::Peer { id: spec.peer_id }, &mut listeners, &mut dir)?;
        }
        let dir = Arc::new(dir);
        let epoch = Instant::now();

        let ipc_addrs: Vec<Address> = (0..cfg.ipc_locations.len())
            .map(|index| Address::Ipc { index })
            .collect();
        let mut handles = Vec::new();
        let mut ipc_engines: HashMap<usize, (IpcEngine, Option<String>)> = HashMap::new();
        for (i, &(country, city_idx)) in cfg.ipc_locations.iter().enumerate() {
            let ip = alloc.allocate(country, city_idx);
            let city = locator.locate(ip).and_then(|l| l.city);
            ipc_engines.insert(
                i,
                (
                    IpcEngine {
                        id: i as u64,
                        country,
                        city_idx,
                        ip,
                        user_agent: UserAgent {
                            os: Os::Linux,
                            browser: Browser::Firefox,
                        },
                    },
                    city,
                ),
            );
        }
        let mut peer_setups: HashMap<u64, _> = peer_setups
            .into_iter()
            .map(|(spec, ip, loc)| (spec.peer_id, (spec, ip, loc)))
            .collect();
        let mut coordinator = Some(coordinator);

        for (addr, listener) in listeners {
            let role = match addr {
                Address::Coordinator => Role::Coordinator {
                    proto: Box::new(CoordinatorProto::new(
                        coordinator.take().expect("one coordinator"),
                        cfg.ppc_per_request,
                    )),
                    rng: StdRng::seed_from_u64(cfg.seed),
                },
                Address::Aggregator => Role::Aggregator {
                    proto: AggregatorProto::new(),
                },
                Address::Database => Role::Database {
                    proto: Box::new(DbProto::new(cfg.db_cost)),
                },
                Address::Server { index } => Role::Measurement {
                    proto: Box::new(MeasurementProto::new(MeasurementParams {
                        index,
                        ipcs: ipc_addrs.clone(),
                        rates: rates.clone(),
                        target_currency: cfg.target_currency.clone(),
                        proc_per_reply_ms: cfg.proc_per_reply_ms,
                        context_switch_alpha: cfg.context_switch_alpha,
                        job_deadline_ms: cfg.job_deadline_ms,
                        db_cost: cfg.db_cost,
                        integrated_db: cfg.version == SystemVersion::V1,
                        heartbeat_every_ms: cfg.heartbeat_every_ms,
                    })),
                    beacon_every_ms: cfg.heartbeat_every_ms,
                },
                Address::Ipc { index } => {
                    let (engine, city) = ipc_engines.remove(&index).expect("ipc engine");
                    Role::Ipc {
                        proto: Box::new(IpcProto { engine, city }),
                    }
                }
                Address::Peer { id } => {
                    let (spec, ip, location) = peer_setups.remove(&id).expect("peer spec");
                    Role::Peer {
                        proto: Box::new(PeerProto::new(
                            PpcEngine {
                                peer_id: spec.peer_id,
                                browser: BrowserProfile::new(),
                                ledger: PollutionLedger::new(),
                                ip,
                                country: spec.country,
                                city_idx: spec.city_idx,
                                user_agent: spec.user_agent,
                                affluence: spec.affluence,
                                logged_in_domains: spec.logged_in_domains.clone(),
                            },
                            location.city,
                            cfg.target_currency.clone(),
                            cfg.enable_doppelgangers,
                        )),
                    }
                }
            };
            let (tx, rx) = mpsc::channel();
            let ctx = NodeCtx {
                me: addr,
                dir: Arc::clone(&dir),
                wire: Arc::clone(&wire),
                world: Arc::clone(&world),
                epoch,
                sink: Arc::clone(&sink),
            };
            let wire_for_acceptor = Arc::clone(&wire);
            handles.push(std::thread::spawn(move || {
                acceptor_loop(listener, tx, wire_for_acceptor);
            }));
            handles.push(std::thread::spawn(move || {
                worker_loop(role, rx, ctx);
            }));
        }

        Ok(MiniDeployment {
            dir,
            handles,
            world,
            telemetry,
            wire,
            sink,
            next_tag: AtomicU64::new(1),
        })
    }

    /// The deployment's telemetry registry (wire.* counters). Clone the
    /// `Arc` before [`MiniDeployment::shutdown`] to inspect final counts.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Coordinator address (exposed so tests can poke the socket
    /// directly, e.g. with rude or malformed clients).
    pub fn coordinator_addr(&self) -> SocketAddr {
        self.dir[&Address::Coordinator]
    }

    /// The shared world (tests inspect ground truth through it).
    pub fn world(&self) -> Arc<Mutex<World>> {
        Arc::clone(&self.world)
    }

    /// Runs one full §3.2 price check initiated by `peer`'s add-on and
    /// returns the completed check.
    pub fn run_check(
        &self,
        peer: u64,
        domain: &str,
        product: ProductId,
    ) -> Result<PriceCheck, String> {
        let me = Address::Peer { id: peer };
        if !self.dir.contains_key(&me) {
            return Err(format!("unknown peer {peer}"));
        }
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        self.inject(
            me,
            me,
            ProtoMsg::StartCheck {
                domain: domain.to_string(),
                product,
                local_tag: tag,
            },
        )?;

        let deadline = Instant::now() + CHECK_TIMEOUT;
        self.sink
            .wait_for(deadline, |st| {
                if let Some(pos) = st.completed.iter().position(|c| c.local_tag == tag) {
                    return Some(Ok(st.completed.swap_remove(pos).check));
                }
                if let Some(pos) = st.rejected.iter().position(|(t, _)| *t == tag) {
                    let (_, reason) = st.rejected.swap_remove(pos);
                    return Some(Err(format!("rejected: {reason}")));
                }
                None
            })
            .unwrap_or_else(|| Err("price check timed out".into()))
    }

    /// Like [`MiniDeployment::run_check`] but rendered as Fig. 2 result
    /// rows.
    pub fn run_price_check(
        &self,
        peer: u64,
        domain: &str,
        product: ProductId,
    ) -> Result<Vec<ResultRow>, String> {
        Ok(rows_from_check(&self.run_check(peer, domain, product)?))
    }

    /// Asks the Coordinator (as `via_peer`) to decommission Measurement
    /// server `index`; returns whether it was removed. The Coordinator
    /// refuses while the server still has pending jobs.
    pub fn remove_server(&self, via_peer: u64, index: usize) -> Result<bool, String> {
        let from = Address::Peer { id: via_peer };
        let before = self
            .sink
            .state
            .lock()
            .expect("sink poisoned")
            .removals
            .len();
        self.inject(from, Address::Coordinator, ProtoMsg::RemoveServer { index })?;
        let deadline = Instant::now() + CHECK_TIMEOUT;
        self.sink
            .wait_for(deadline, |st| {
                st.removals[before.min(st.removals.len())..]
                    .iter()
                    .find(|&&(i, _)| i == index)
                    .map(|&(_, removed)| removed)
            })
            .ok_or_else(|| "remove_server timed out".into())
    }

    /// Sends one envelope into the deployment from the outside.
    fn inject(&self, from: Address, to: Address, msg: ProtoMsg) -> Result<(), String> {
        let addr = self.dir.get(&to).ok_or_else(|| format!("unknown {to:?}"))?;
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        Envelope { from, msg }
            .send_counted(&mut s, &self.wire)
            .map_err(|e| e.to_string())
    }

    fn shutdown_impl(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        // One Shutdown frame per node: the acceptor forwards it to the
        // worker and stops accepting; the worker drains and exits.
        for to in self.dir.keys() {
            let _ = self.inject(Address::Coordinator, *to, ProtoMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Orderly shutdown: every node receives a Shutdown frame, every
    /// acceptor and worker thread is joined. Also runs on [`Drop`], so a
    /// deployment can never leak its threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }
}

impl Drop for MiniDeployment {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::world::WorldConfig;

    /// Four same-country peers (PPC fan-out is location-local, §6.1) and
    /// two far-away IPC vantages for cross-country rows.
    fn deployment() -> MiniDeployment {
        let world = World::build(&WorldConfig::small(), 77);
        let mut cfg = SheriffConfig::v1(7);
        cfg.ipc_locations = vec![(Country::US, 0), (Country::JP, 0)];
        cfg.proc_per_reply_ms = 2.0;
        cfg.context_switch_alpha = 0.0;
        cfg.job_deadline_ms = 8_000;
        cfg.heartbeat_every_ms = 3_600_000;
        let specs: Vec<PpcSpec> = [10u64, 11, 12, 13]
            .iter()
            .map(|&peer_id| PpcSpec {
                peer_id,
                country: Country::ES,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Linux,
                    browser: Browser::Firefox,
                },
                affluence: 0.3,
                logged_in_domains: vec![],
            })
            .collect();
        MiniDeployment::start_with(world, cfg, &specs).expect("deployment starts")
    }

    #[test]
    fn end_to_end_over_tcp() {
        let d = deployment();
        let rows = d
            .run_price_check(10, "steampowered.com", ProductId(0))
            .expect("check succeeds");
        // Initiator + 2 IPCs + 3 same-country PPCs.
        assert_eq!(rows.len(), 6, "{rows:?}");
        assert!(rows.iter().all(|r| r.converted > 0.0));
        assert!(rows.iter().any(|r| r.label == "You"));
        assert!(rows.iter().any(|r| r.label.starts_with("IPC ")));
        assert!(rows.iter().any(|r| r.label.starts_with("peer ")));
        // Steam discriminates by country: the IPC vantages differ from ES.
        let min = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::INFINITY, f64::min);
        let max = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.05, "spread {min}..{max}");
        d.shutdown();
    }

    #[test]
    fn unknown_domain_rejected_over_tcp() {
        let d = deployment();
        let err = d
            .run_price_check(10, "evil.example", ProductId(0))
            .unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        d.shutdown();
    }

    #[test]
    fn uniform_store_agrees_across_peers() {
        let d = deployment();
        let w = d.world();
        let domain = w
            .lock()
            .domains()
            .find(|x| x.starts_with("store-"))
            .unwrap()
            .to_string();
        let rows = d.run_price_check(11, &domain, ProductId(0)).expect("check");
        let confident: Vec<f64> = rows
            .iter()
            .filter(|r| !r.low_confidence)
            .map(|r| r.converted)
            .collect();
        if confident.len() >= 2 {
            let min = confident.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = confident.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert!(max / min < 1.01, "uniform store spread {min}..{max}");
        }
        d.shutdown();
    }

    #[test]
    fn sequential_checks_reuse_deployment() {
        let d = deployment();
        for p in 0..3 {
            let rows = d
                .run_price_check(12, "amazon.com", ProductId(p))
                .expect("check");
            assert!(rows.len() >= 4, "{rows:?}");
        }
        d.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_all_threads() {
        let d = deployment();
        let rows = d
            .run_price_check(10, "amazon.com", ProductId(0))
            .expect("check");
        assert!(!rows.is_empty());
        drop(d); // Drop must shut the node threads down, not leak them.
    }
}
