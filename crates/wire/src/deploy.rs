//! A real localhost deployment of the Price $heriff over TCP.
//!
//! This is the "does it actually run on sockets" proof — and since the
//! protocol refactor it is a *thin transport adapter*: every role
//! (Coordinator, Aggregator, Measurement servers, Database server, IPCs,
//! PPC add-ons) is one of the sans-IO state machines from
//! [`sheriff_core::protocol`], exactly the ones the discrete-event
//! simulation drives. Each node owns a TCP listener on an ephemeral
//! localhost port plus two threads:
//!
//! * an **acceptor** that reads one [`Envelope`] per connection
//!   (connect–write–close transport) and queues it for the worker;
//! * a **worker** that feeds the machine (`on_message`, and `on_timer`
//!   from a local timer heap) and dispatches the emitted
//!   [`Output`](sheriff_core::protocol::Output) commands: sends become
//!   fresh connections to the destination's listener, timers land on the
//!   heap. Time is real elapsed milliseconds since deployment start.
//!
//! Because the state machines are shared with the simulator, the TCP path
//! gets the full §3.2 semantics — least-pending job assignment, IPC + PPC
//! fan-out, pollution budgets, doppelganger redemption — rather than a
//! hand-rolled approximation, and the `backend_parity` integration test
//! pins both backends to identical observation sets.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_core::coordinator::{Coordinator, PeerId};
use sheriff_core::durability::recover;
use sheriff_core::pollution::PollutionLedger;
use sheriff_core::protocol::{
    Address, AggregatorProto, Channel, CompletedProtoCheck, CoordinatorProto, DbProto, IpcProto,
    MeasurementParams, MeasurementProto, Output, PeerProto, ProtoMsg, ReliableConfig, TimerKind,
};
use sheriff_core::proxy::{IpcEngine, PpcEngine};
use sheriff_core::records::PriceCheck;
use sheriff_core::system::{PpcSpec, SheriffConfig, SystemVersion};
use sheriff_core::{BrowserProfile, Whitelist};
use sheriff_geo::{Country, GeoLocator, Granularity, IpAllocator};
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::{FaultPlan, FaultStats};
use sheriff_telemetry::{Counter, Registry};

use crate::proto::{rows_from_check, Envelope, ResultRow};
use crate::storage::FileStorage;
use crate::telemetry::WireTelemetry;

/// How long [`MiniDeployment::run_check`] waits before declaring a check
/// lost.
const CHECK_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything the initiating add-ons surface to the outside world.
#[derive(Default)]
struct SinkState {
    completed: Vec<CompletedProtoCheck>,
    /// `(local_tag, reason)`.
    rejected: Vec<(u64, String)>,
    /// `(server_index, removed)` acks.
    removals: Vec<(usize, bool)>,
}

/// The sink uses `std::sync` primitives (the vendored `parking_lot` has
/// no condvar); the world stays behind `parking_lot::Mutex` to match the
/// core crate's types.
struct Sink {
    state: std::sync::Mutex<SinkState>,
    cv: std::sync::Condvar,
}

impl Sink {
    /// Blocks on the sink until `pick` yields, or `deadline` passes.
    fn wait_for<T>(
        &self,
        deadline: Instant,
        mut pick: impl FnMut(&mut SinkState) -> Option<T>,
    ) -> Option<T> {
        let mut st = self.state.lock().expect("sink poisoned");
        loop {
            if let Some(v) = pick(&mut st) {
                return Some(v);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(st, remaining).expect("sink poisoned");
            st = guard;
        }
    }
}

/// Applies a [`FaultPlan`] — the very schedule the DES engine consumes —
/// at the TCP socket boundary. Nodes are numbered exactly like the DES
/// deployment (`coordinator, aggregator, db?, servers…, ipcs…, ppcs…`),
/// and the plan keys its decisions on per-link occurrence counters rather
/// than wall-clock, so one schedule means the same drops, duplicates and
/// crash windows on either backend.
struct FaultShim {
    plan: Mutex<FaultPlan>,
    index: HashMap<Address, usize>,
    dropped: Arc<Counter>,
    duplicated: Arc<Counter>,
    delayed: Arc<Counter>,
    partition_drops: Arc<Counter>,
    crash_dropped: Arc<Counter>,
    node_restarts: Arc<Counter>,
    timers_deferred: Arc<Counter>,
}

impl FaultShim {
    fn new(plan: FaultPlan, index: HashMap<Address, usize>, registry: &Arc<Registry>) -> FaultShim {
        FaultShim {
            plan: Mutex::new(plan),
            index,
            dropped: registry.counter("faults.dropped"),
            duplicated: registry.counter("faults.duplicated"),
            delayed: registry.counter("faults.delayed"),
            partition_drops: registry.counter("faults.partition_drops"),
            crash_dropped: registry.counter("faults.crash_dropped"),
            node_restarts: registry.counter("faults.node_restarts"),
            timers_deferred: registry.counter("faults.timers_deferred"),
        }
    }

    /// Send-time verdict for one envelope, mirroring the DES engine
    /// (which consults the plan when the send output is dispatched):
    /// `None` eats it, otherwise `(copies, extra_delay_ms)`.
    fn outbound(&self, now_ms: u64, from: Address, to: Address) -> Option<(usize, u64)> {
        let (Some(&f), Some(&t)) = (self.index.get(&from), self.index.get(&to)) else {
            return Some((1, 0));
        };
        let mut plan = self.plan.lock();
        let before = plan.stats;
        let d = plan.decide(now_ms, f, t);
        let after = plan.stats;
        self.dropped.add(after.dropped - before.dropped);
        self.duplicated.add(after.duplicated - before.duplicated);
        self.delayed.add(after.delayed - before.delayed);
        self.partition_drops
            .add(after.partition_drops - before.partition_drops);
        if d.drop {
            None
        } else {
            Some((1 + d.duplicate as usize, d.extra_delay_ms))
        }
    }

    /// The restart millisecond when `node` sits inside a crash window.
    fn crashed_until(&self, node: Address, now_ms: u64) -> Option<u64> {
        let &idx = self.index.get(&node)?;
        self.plan.lock().restart_at(idx, now_ms)
    }
}

/// One role machine plus whatever driver-side state it needs.
enum Role {
    Coordinator {
        proto: Box<CoordinatorProto>,
        rng: StdRng,
        /// Period (and first-fire phase) of the §10.3 recovery sweep.
        sweep_every_ms: u64,
    },
    Aggregator {
        proto: AggregatorProto,
    },
    Measurement {
        proto: Box<MeasurementProto>,
        /// Liveness beacon period; also when the first beacon fires (a
        /// fixed phase keeps deployment frame counts deterministic).
        beacon_every_ms: u64,
    },
    Database {
        proto: Box<DbProto>,
    },
    Ipc {
        proto: Box<IpcProto>,
    },
    Peer {
        proto: Box<PeerProto>,
    },
}

/// Shared per-node driver context.
struct NodeCtx {
    me: Address,
    dir: Arc<HashMap<Address, SocketAddr>>,
    wire: Arc<WireTelemetry>,
    world: Arc<Mutex<World>>,
    epoch: Instant,
    sink: Arc<Sink>,
    /// Installed only when the deployment was started with an *active*
    /// fault plan, so the fault-free path is byte-identical to before.
    shim: Option<Arc<FaultShim>>,
    unknown_timers: Arc<Counter>,
}

impl NodeCtx {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The restart instant when the fault plan has this node crashed now.
    fn crash_restart_at(&self) -> Option<Instant> {
        let shim = self.shim.as_ref()?;
        let ms = shim.crashed_until(self.me, self.now_ms())?;
        Some(self.epoch + Duration::from_millis(ms))
    }

    fn send(&self, to: Address, msg: ProtoMsg) {
        let Some(&addr) = self.dir.get(&to) else {
            return;
        };
        let (copies, delay_ms) = match &self.shim {
            Some(shim) => match shim.outbound(self.now_ms(), self.me, to) {
                Some(verdict) => verdict,
                None => return, // dropped by the schedule
            },
            None => (1, 0),
        };
        if delay_ms == 0 {
            for _ in 0..copies {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let env = Envelope {
                        from: self.me,
                        msg: msg.clone(),
                    };
                    let _ = env.send_counted(&mut s, &self.wire);
                }
            }
        } else {
            // Extra latency rides on a detached sleeper so the worker
            // never blocks; a send that outlives the deployment just
            // fails to connect.
            let wire = Arc::clone(&self.wire);
            let me = self.me;
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                for _ in 0..copies {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        let env = Envelope {
                            from: me,
                            msg: msg.clone(),
                        };
                        let _ = env.send_counted(&mut s, &wire);
                    }
                }
            });
        }
    }

    /// Applies outputs: sends go out immediately (over loopback the real
    /// fetch already *happened* — there is no latency to model), timers
    /// land on the worker's heap as real deadlines.
    fn dispatch(&self, out: Vec<Output>, timers: &mut BinaryHeap<Reverse<(Instant, u64)>>) {
        for o in out {
            match o {
                Output::Send { to, msg } | Output::SendFetched { to, msg } => self.send(to, msg),
                Output::Timer { delay_ms, kind } => {
                    timers.push(Reverse((
                        Instant::now() + Duration::from_millis(delay_ms),
                        kind.token(),
                    )));
                }
            }
        }
    }
}

fn acceptor_loop(listener: TcpListener, tx: mpsc::Sender<Envelope>, wire: Arc<WireTelemetry>) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // A connected-but-silent client must not wedge the node.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        // Rude clients (instant hang-up) and garbage frames are the
        // transport's problem, not the protocol's: drop and continue.
        if let Ok(Some(env)) = Envelope::recv_counted(&mut stream, &wire) {
            let stop = env.msg == ProtoMsg::Shutdown;
            if tx.send(env).is_err() || stop {
                break;
            }
        }
    }
}

fn worker_loop(mut role: Role, mut chan: Channel, rx: mpsc::Receiver<Envelope>, ctx: NodeCtx) {
    let mut timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    match &role {
        Role::Measurement {
            beacon_every_ms, ..
        } => timers.push(Reverse((
            ctx.epoch + Duration::from_millis(*beacon_every_ms),
            TimerKind::Heartbeat.token(),
        ))),
        Role::Coordinator { sweep_every_ms, .. } => timers.push(Reverse((
            ctx.epoch + Duration::from_millis(*sweep_every_ms),
            TimerKind::CoordSweep.token(),
        ))),
        _ => {}
    }
    let mut was_crashed = false;
    loop {
        // A scheduled crash window: the node is dead. Inbound frames are
        // eaten (Shutdown is still honoured so the deployment can always
        // join its threads) and due timers are deferred to the restart
        // instant — exactly the DES engine's crash semantics.
        if let Some(restart) = ctx.crash_restart_at() {
            was_crashed = true;
            let now = Instant::now();
            let mut deferred = 0u64;
            while timers.peek().is_some_and(|Reverse((t, _))| *t <= now) {
                let Some(Reverse((_, token))) = timers.pop() else {
                    break;
                };
                timers.push(Reverse((restart, token)));
                deferred += 1;
            }
            if deferred > 0 {
                if let Some(shim) = &ctx.shim {
                    shim.timers_deferred.add(deferred);
                }
            }
            let wait = restart
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(100));
            match rx.recv_timeout(wait) {
                Ok(env) if env.msg == ProtoMsg::Shutdown => break,
                Ok(_) => {
                    if let Some(shim) = &ctx.shim {
                        shim.crash_dropped.inc();
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            continue;
        }
        if was_crashed {
            // Back from the dead with state intact. A Measurement server
            // announces liveness immediately: the Coordinator may have
            // written it off and requeued its jobs, and the fresh
            // heartbeat reopens the assignment path.
            was_crashed = false;
            if let Some(shim) = &ctx.shim {
                shim.node_restarts.inc();
            }
            let mut out = Vec::new();
            match &mut role {
                Role::Measurement { proto, .. } => proto.on_restart(ctx.now_ms(), &mut out),
                Role::Database { proto } => {
                    // The Database models genuine volatile-state loss: the
                    // un-barriered WAL tail vanishes and the store is
                    // rebuilt from the durable snapshot + log prefix. The
                    // reliable channel forgets its windows too (they lived
                    // in memory); peers retransmit anything unacked.
                    chan.on_restart();
                    let mut events = Vec::new();
                    proto.on_restart(&mut events);
                }
                _ => {}
            }
            chan.harden(&mut out);
            ctx.dispatch(out, &mut timers);
        }

        // Fire every due timer.
        let now = Instant::now();
        while timers.peek().is_some_and(|Reverse((t, _))| *t <= now) {
            let Some(Reverse((_, token))) = timers.pop() else {
                break;
            };
            let mut out = Vec::new();
            match TimerKind::from_token(token) {
                None => {
                    ctx.unknown_timers.inc();
                    continue;
                }
                Some(TimerKind::Retransmit(seq)) => {
                    if let Some((_, abandoned)) = chan.on_retransmit(seq, &mut out) {
                        if let Role::Peer { proto } = &mut role {
                            proto.on_send_abandoned(&abandoned);
                        }
                    }
                }
                Some(kind) => match &mut role {
                    Role::Coordinator { proto, rng, .. } => {
                        proto.on_timer(ctx.now_ms(), kind, rng, &mut out);
                    }
                    Role::Measurement { proto, .. } => {
                        let mut events = Vec::new();
                        proto.on_timer(ctx.now_ms(), kind, &mut out, &mut events);
                    }
                    Role::Database { proto } => {
                        let mut events = Vec::new();
                        proto.on_timer(kind, &mut out, &mut events);
                    }
                    _ => {}
                },
            }
            chan.harden(&mut out);
            ctx.dispatch(out, &mut timers);
        }

        let wait = timers
            .peek()
            .map_or(Duration::from_millis(500), |Reverse((t, _))| {
                t.saturating_duration_since(Instant::now())
            })
            .min(Duration::from_millis(500));
        let env = match rx.recv_timeout(wait) {
            Ok(env) => env,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        if env.msg == ProtoMsg::Shutdown {
            break;
        }
        // A crash window can open between the loop-top check and this
        // recv; a dead node must not process the frame (the next loop
        // iteration enters the crash branch and handles the window).
        if ctx.crash_restart_at().is_some() {
            if let Some(shim) = &ctx.shim {
                shim.crash_dropped.inc();
            }
            continue;
        }
        let now_ms = ctx.now_ms();
        let mut out = Vec::new();
        // The reliable layer acks, dedups and unwraps first; only
        // genuinely new payloads reach the machine.
        if let Some(msg) = chan.accept(env.from, env.msg, &mut out) {
            match &mut role {
                Role::Coordinator { proto, rng, .. } => {
                    proto.on_message(now_ms, env.from, msg, rng, &mut out);
                }
                Role::Aggregator { proto } => proto.on_message(env.from, msg, &mut out),
                Role::Measurement { proto, .. } => {
                    let mut events = Vec::new();
                    proto.on_message(now_ms, env.from, msg, &mut out, &mut events);
                }
                Role::Database { proto } => {
                    let mut events = Vec::new();
                    proto.on_message(now_ms, env.from, msg, &mut out, &mut events);
                }
                Role::Ipc { proto } => {
                    let mut world = ctx.world.lock();
                    proto.on_message(now_ms, env.from, msg, &mut world, &mut out);
                }
                Role::Peer { proto } => {
                    {
                        let mut world = ctx.world.lock();
                        proto.on_message(now_ms, env.from, msg, &mut world, &mut out);
                    }
                    drain_peer(proto, &ctx.sink);
                }
            }
        }
        chan.harden(&mut out);
        ctx.dispatch(out, &mut timers);
    }
}

/// Moves the add-on's freshly observable outcomes into the shared sink.
fn drain_peer(proto: &mut PeerProto, sink: &Sink) {
    if proto.completed.is_empty() && proto.rejected.is_empty() && proto.server_removals.is_empty() {
        return;
    }
    let mut st = sink.state.lock().expect("sink poisoned");
    st.completed.append(&mut proto.completed);
    st.rejected.append(&mut proto.rejected);
    st.removals.append(&mut proto.server_removals);
    sink.cv.notify_all();
}

/// The running deployment.
pub struct MiniDeployment {
    dir: Arc<HashMap<Address, SocketAddr>>,
    handles: Vec<JoinHandle<()>>,
    world: Arc<Mutex<World>>,
    telemetry: Arc<Registry>,
    wire: Arc<WireTelemetry>,
    sink: Arc<Sink>,
    next_tag: AtomicU64,
    shim: Option<Arc<FaultShim>>,
    /// Local tags of checks begun but not yet completed or rejected.
    in_flight: Mutex<Vec<u64>>,
    /// On-disk home of the Database server's WAL + snapshot (v2 only);
    /// removed on shutdown unless recovered first.
    db_dir: Option<PathBuf>,
}

impl MiniDeployment {
    /// Starts a minimal deployment: v1 ($heriff) configuration, one
    /// Measurement server, no IPCs — peer fan-out only, with timings
    /// shrunk to wall-clock test scale. The full configuration surface is
    /// [`MiniDeployment::start_with`].
    pub fn start(world: World, peers: &[(u64, Country)]) -> io::Result<MiniDeployment> {
        let mut cfg = SheriffConfig::v1(7);
        cfg.ipc_locations.clear();
        cfg.proc_per_reply_ms = 2.0;
        cfg.context_switch_alpha = 0.0;
        cfg.job_deadline_ms = 8_000;
        cfg.heartbeat_every_ms = 3_600_000;
        let specs: Vec<PpcSpec> = peers
            .iter()
            .map(|&(peer_id, country)| PpcSpec {
                peer_id,
                country,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Linux,
                    browser: Browser::Firefox,
                },
                affluence: 0.3,
                logged_in_domains: vec![],
            })
            .collect();
        Self::start_with(world, cfg, &specs)
    }

    /// Starts the full system over TCP with the *same* configuration type
    /// the discrete-event backend takes. Fetch-latency knobs are ignored
    /// (loopback fetches are real); everything protocol-visible —
    /// version, server count, IPC roster, PPCs per request, currency,
    /// doppelganger switch, heartbeat policy — behaves identically.
    pub fn start_with(
        world: World,
        cfg: SheriffConfig,
        peers: &[PpcSpec],
    ) -> io::Result<MiniDeployment> {
        Self::start_with_faults(world, cfg, peers, FaultPlan::new(0))
    }

    /// Like [`MiniDeployment::start_with`], with a deterministic fault
    /// schedule applied at the socket boundary — the very [`FaultPlan`]
    /// type the DES engine consumes, against the same node numbering, so
    /// one schedule exercises both backends identically. An inactive
    /// (all-zero) plan is bypassed entirely: a strict no-op.
    pub fn start_with_faults(
        world: World,
        cfg: SheriffConfig,
        peers: &[PpcSpec],
        plan: FaultPlan,
    ) -> io::Result<MiniDeployment> {
        let whitelist = Whitelist::with_domains(world.domains().map(str::to_string));
        let world = Arc::new(Mutex::new(world));
        let rates = world.lock().rates.clone();
        let mut alloc = IpAllocator::new();
        let locator = GeoLocator::new(Granularity::City);
        let telemetry = Arc::new(Registry::new());
        let wire = Arc::new(WireTelemetry::new(&telemetry));
        let sink = Arc::new(Sink {
            state: std::sync::Mutex::new(SinkState::default()),
            cv: std::sync::Condvar::new(),
        });

        let n_servers = if cfg.version == SystemVersion::V1 {
            1
        } else {
            cfg.n_measurement_servers
        };
        let has_db = cfg.version == SystemVersion::V2;
        // Per-deployment on-disk home for the Database server's WAL +
        // snapshot; the pid/sequence pair keeps concurrent test binaries
        // and repeated deployments in one process apart.
        let db_dir = has_db.then(|| {
            static DB_DIR_SEQ: AtomicU64 = AtomicU64::new(0);
            std::env::temp_dir().join(format!(
                "sheriff-db-{}-{}",
                std::process::id(),
                DB_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });

        // Coordinator state. IP allocation order matches the DES backend
        // exactly (peers first, then IPCs) so both produce identical
        // observation sets under the same world seed.
        let mut coordinator = Coordinator::with_telemetry(whitelist, Arc::clone(&telemetry));
        coordinator.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
        for i in 0..n_servers {
            coordinator.register_server(&format!("ms-{i}"), 80, 0);
        }
        let mut peer_setups = Vec::new();
        for spec in peers {
            let ip = alloc.allocate(spec.country, spec.city_idx);
            let location = locator.locate(ip).expect("allocated IPs always geolocate");
            coordinator.peer_online(PeerId(spec.peer_id), ip, location.clone());
            peer_setups.push((spec.clone(), ip, location));
        }

        // Bind every listener up front so the address directory is
        // complete before any thread runs.
        let mut listeners: Vec<(Address, TcpListener)> = Vec::new();
        let mut dir = HashMap::new();
        let bind = |addr: Address,
                    listeners: &mut Vec<(Address, TcpListener)>,
                    dir: &mut HashMap<Address, SocketAddr>|
         -> io::Result<()> {
            let l = TcpListener::bind("127.0.0.1:0")?;
            dir.insert(addr, l.local_addr()?);
            listeners.push((addr, l));
            Ok(())
        };
        bind(Address::Coordinator, &mut listeners, &mut dir)?;
        bind(Address::Aggregator, &mut listeners, &mut dir)?;
        if has_db {
            bind(Address::Database, &mut listeners, &mut dir)?;
        }
        for index in 0..n_servers {
            bind(Address::Server { index }, &mut listeners, &mut dir)?;
        }
        for index in 0..cfg.ipc_locations.len() {
            bind(Address::Ipc { index }, &mut listeners, &mut dir)?;
        }
        for spec in peers {
            bind(Address::Peer { id: spec.peer_id }, &mut listeners, &mut dir)?;
        }
        let dir = Arc::new(dir);
        let epoch = Instant::now();

        // Bind order above is exactly the DES node layout, so enumerating
        // it yields the index the fault plan is phrased against.
        let shim = plan.is_active().then(|| {
            let index = listeners
                .iter()
                .enumerate()
                .map(|(i, (addr, _))| (*addr, i))
                .collect();
            Arc::new(FaultShim::new(plan, index, &telemetry))
        });
        let reliable_cfg = ReliableConfig {
            base_backoff_ms: cfg.retransmit_base_ms,
            ..ReliableConfig::default()
        };
        let unknown_timers = telemetry.counter("protocol.unknown_timers");

        let ipc_addrs: Vec<Address> = (0..cfg.ipc_locations.len())
            .map(|index| Address::Ipc { index })
            .collect();
        let mut handles = Vec::new();
        let mut ipc_engines: HashMap<usize, (IpcEngine, Option<String>)> = HashMap::new();
        for (i, &(country, city_idx)) in cfg.ipc_locations.iter().enumerate() {
            let ip = alloc.allocate(country, city_idx);
            let city = locator.locate(ip).and_then(|l| l.city);
            ipc_engines.insert(
                i,
                (
                    IpcEngine {
                        id: i as u64,
                        country,
                        city_idx,
                        ip,
                        user_agent: UserAgent {
                            os: Os::Linux,
                            browser: Browser::Firefox,
                        },
                    },
                    city,
                ),
            );
        }
        let mut peer_setups: HashMap<u64, _> = peer_setups
            .into_iter()
            .map(|(spec, ip, loc)| (spec.peer_id, (spec, ip, loc)))
            .collect();
        let mut coordinator = Some(coordinator);

        for (addr, listener) in listeners {
            let role = match addr {
                Address::Coordinator => {
                    let mut proto = CoordinatorProto::new(
                        coordinator.take().expect("one coordinator"),
                        cfg.ppc_per_request,
                    );
                    proto.sweep_every_ms = cfg.coord_sweep_every_ms;
                    Role::Coordinator {
                        proto: Box::new(proto),
                        rng: StdRng::seed_from_u64(cfg.seed),
                        sweep_every_ms: cfg.coord_sweep_every_ms,
                    }
                }
                Address::Aggregator => Role::Aggregator {
                    proto: AggregatorProto::new(),
                },
                Address::Database => {
                    let dir = db_dir.as_ref().expect("database role implies a db dir");
                    Role::Database {
                        proto: Box::new(DbProto::with_storage(
                            cfg.db_cost,
                            Box::new(FileStorage::open(dir)),
                            cfg.db_snapshot_every,
                        )),
                    }
                }
                Address::Server { index } => Role::Measurement {
                    proto: Box::new(MeasurementProto::new(MeasurementParams {
                        index,
                        ipcs: ipc_addrs.clone(),
                        rates: rates.clone(),
                        target_currency: cfg.target_currency.clone(),
                        proc_per_reply_ms: cfg.proc_per_reply_ms,
                        context_switch_alpha: cfg.context_switch_alpha,
                        job_deadline_ms: cfg.job_deadline_ms,
                        db_cost: cfg.db_cost,
                        integrated_db: cfg.version == SystemVersion::V1,
                        heartbeat_every_ms: cfg.heartbeat_every_ms,
                    })),
                    beacon_every_ms: cfg.heartbeat_every_ms,
                },
                Address::Ipc { index } => {
                    let (engine, city) = ipc_engines.remove(&index).expect("ipc engine");
                    Role::Ipc {
                        proto: Box::new(IpcProto { engine, city }),
                    }
                }
                Address::Peer { id } => {
                    let (spec, ip, location) = peer_setups.remove(&id).expect("peer spec");
                    Role::Peer {
                        proto: Box::new(PeerProto::new(
                            PpcEngine {
                                peer_id: spec.peer_id,
                                browser: BrowserProfile::new(),
                                ledger: PollutionLedger::new(),
                                ip,
                                country: spec.country,
                                city_idx: spec.city_idx,
                                user_agent: spec.user_agent,
                                affluence: spec.affluence,
                                logged_in_domains: spec.logged_in_domains.clone(),
                            },
                            location.city,
                            cfg.target_currency.clone(),
                            cfg.enable_doppelgangers,
                        )),
                    }
                }
            };
            let (tx, rx) = mpsc::channel();
            let ctx = NodeCtx {
                me: addr,
                dir: Arc::clone(&dir),
                wire: Arc::clone(&wire),
                world: Arc::clone(&world),
                epoch,
                sink: Arc::clone(&sink),
                shim: shim.clone(),
                unknown_timers: Arc::clone(&unknown_timers),
            };
            let chan = Channel::new(reliable_cfg).with_telemetry(&telemetry);
            let wire_for_acceptor = Arc::clone(&wire);
            handles.push(std::thread::spawn(move || {
                acceptor_loop(listener, tx, wire_for_acceptor);
            }));
            handles.push(std::thread::spawn(move || {
                worker_loop(role, chan, rx, ctx);
            }));
        }

        Ok(MiniDeployment {
            dir,
            handles,
            world,
            telemetry,
            wire,
            sink,
            next_tag: AtomicU64::new(1),
            shim,
            in_flight: Mutex::new(Vec::new()),
            db_dir,
        })
    }

    /// The deployment's telemetry registry (wire.* counters). Clone the
    /// `Arc` before [`MiniDeployment::shutdown`] to inspect final counts.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Coordinator address (exposed so tests can poke the socket
    /// directly, e.g. with rude or malformed clients).
    pub fn coordinator_addr(&self) -> SocketAddr {
        self.dir[&Address::Coordinator]
    }

    /// The shared world (tests inspect ground truth through it).
    pub fn world(&self) -> Arc<Mutex<World>> {
        Arc::clone(&self.world)
    }

    /// Runs one full §3.2 price check initiated by `peer`'s add-on and
    /// returns the completed check.
    pub fn run_check(
        &self,
        peer: u64,
        domain: &str,
        product: ProductId,
    ) -> Result<PriceCheck, String> {
        let tag = self.begin_check(peer, domain, product)?;
        self.await_check(tag)
    }

    /// Injects a §3.2 check and returns its local tag without waiting.
    /// Pair with [`MiniDeployment::await_check`], or let
    /// [`MiniDeployment::shutdown_with_report`] tell you it was aborted.
    pub fn begin_check(&self, peer: u64, domain: &str, product: ProductId) -> Result<u64, String> {
        let me = Address::Peer { id: peer };
        if !self.dir.contains_key(&me) {
            return Err(format!("unknown peer {peer}"));
        }
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        self.in_flight.lock().push(tag);
        self.inject(
            me,
            me,
            ProtoMsg::StartCheck {
                domain: domain.to_string(),
                product,
                local_tag: tag,
            },
        )?;
        Ok(tag)
    }

    /// Blocks until the check behind `tag` completes or is rejected.
    pub fn await_check(&self, tag: u64) -> Result<PriceCheck, String> {
        let deadline = Instant::now() + CHECK_TIMEOUT;
        match self.sink.wait_for(deadline, |st| {
            if let Some(pos) = st.completed.iter().position(|c| c.local_tag == tag) {
                return Some(Ok(st.completed.swap_remove(pos).check));
            }
            if let Some(pos) = st.rejected.iter().position(|(t, _)| *t == tag) {
                let (_, reason) = st.rejected.swap_remove(pos);
                return Some(Err(format!("rejected: {reason}")));
            }
            None
        }) {
            Some(res) => {
                self.in_flight.lock().retain(|t| *t != tag);
                res
            }
            None => Err("price check timed out".into()),
        }
    }

    /// Running totals of the installed fault plan (`None` without one).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.shim.as_ref().map(|s| s.plan.lock().stats)
    }

    /// Like [`MiniDeployment::run_check`] but rendered as Fig. 2 result
    /// rows.
    pub fn run_price_check(
        &self,
        peer: u64,
        domain: &str,
        product: ProductId,
    ) -> Result<Vec<ResultRow>, String> {
        Ok(rows_from_check(&self.run_check(peer, domain, product)?))
    }

    /// Asks the Coordinator (as `via_peer`) to decommission Measurement
    /// server `index`; returns whether it was removed. The Coordinator
    /// refuses while the server still has pending jobs.
    pub fn remove_server(&self, via_peer: u64, index: usize) -> Result<bool, String> {
        let from = Address::Peer { id: via_peer };
        let before = self
            .sink
            .state
            .lock()
            .expect("sink poisoned")
            .removals
            .len();
        self.inject(from, Address::Coordinator, ProtoMsg::RemoveServer { index })?;
        let deadline = Instant::now() + CHECK_TIMEOUT;
        self.sink
            .wait_for(deadline, |st| {
                st.removals[before.min(st.removals.len())..]
                    .iter()
                    .find(|&&(i, _)| i == index)
                    .map(|&(_, removed)| removed)
            })
            .ok_or_else(|| "remove_server timed out".into())
    }

    /// Sends one envelope into the deployment from the outside.
    fn inject(&self, from: Address, to: Address, msg: ProtoMsg) -> Result<(), String> {
        let addr = self.dir.get(&to).ok_or_else(|| format!("unknown {to:?}"))?;
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        Envelope { from, msg }
            .send_counted(&mut s, &self.wire)
            .map_err(|e| e.to_string())
    }

    fn shutdown_impl(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        // Let in-flight frames drain first: a client unblocks when the
        // completion sink is updated, which can happen *before* the
        // worker's trailing Ack hits the wire — so a worker that reads
        // its Shutdown frame ahead of that Ack would exit without ever
        // counting it. Momentary balance is not enough (the Ack may not
        // have been written yet); require the books to balance and stay
        // still across several polls. Bounded wait, since a frame to a
        // node that already vanished (crash tests) never arrives.
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut last = (u64::MAX, u64::MAX);
        let mut stable = 0u32;
        while stable < 10 && Instant::now() < deadline {
            let now = (self.wire.frames_out.get(), self.wire.frames_in.get());
            if now.0 == now.1 && now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // One Shutdown frame per node: the acceptor forwards it to the
        // worker and stops accepting; the worker drains and exits.
        for to in self.dir.keys() {
            let _ = self.inject(Address::Coordinator, *to, ProtoMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(dir) = self.db_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// Shuts down like [`MiniDeployment::shutdown`], then re-opens the
    /// Database server's on-disk storage and replays snapshot + WAL —
    /// exactly what a freshly restarted Database process would recover.
    /// Returns the recovered checks (empty for v1 deployments, which run
    /// no Database node). The storage directory is removed afterwards.
    pub fn shutdown_and_recover_db(mut self) -> Vec<PriceCheck> {
        let dir = self.db_dir.take();
        self.shutdown_impl();
        let Some(dir) = dir else {
            return Vec::new();
        };
        let storage = FileStorage::open(&dir);
        let recovered = recover(&storage);
        let _ = std::fs::remove_dir_all(&dir);
        recovered.records.into_iter().map(|r| r.check).collect()
    }

    /// Orderly shutdown: every node receives a Shutdown frame, every
    /// acceptor and worker thread is joined. Also runs on [`Drop`], so a
    /// deployment can never leak its threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Shuts down like [`MiniDeployment::shutdown`], then reports the
    /// local tags of checks that were begun but never completed nor
    /// rejected — work aborted mid-flight. Every thread is joined either
    /// way; an in-flight check must never wedge the teardown.
    pub fn shutdown_with_report(mut self) -> Vec<u64> {
        self.shutdown_impl();
        let st = self.sink.state.lock().expect("sink poisoned");
        self.in_flight
            .lock()
            .iter()
            .copied()
            .filter(|&t| {
                !st.completed.iter().any(|c| c.local_tag == t)
                    && !st.rejected.iter().any(|&(r, _)| r == t)
            })
            .collect()
    }
}

impl Drop for MiniDeployment {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::world::WorldConfig;
    use sheriff_netsim::LinkFaults;

    /// Four same-country peers (PPC fan-out is location-local, §6.1) and
    /// two far-away IPC vantages for cross-country rows.
    fn deployment_with(plan: FaultPlan) -> MiniDeployment {
        let world = World::build(&WorldConfig::small(), 77);
        let mut cfg = SheriffConfig::v1(7);
        cfg.ipc_locations = vec![(Country::US, 0), (Country::JP, 0)];
        cfg.proc_per_reply_ms = 2.0;
        cfg.context_switch_alpha = 0.0;
        cfg.job_deadline_ms = 8_000;
        cfg.heartbeat_every_ms = 3_600_000;
        let specs: Vec<PpcSpec> = [10u64, 11, 12, 13]
            .iter()
            .map(|&peer_id| PpcSpec {
                peer_id,
                country: Country::ES,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Linux,
                    browser: Browser::Firefox,
                },
                affluence: 0.3,
                logged_in_domains: vec![],
            })
            .collect();
        MiniDeployment::start_with_faults(world, cfg, &specs, plan).expect("deployment starts")
    }

    fn deployment() -> MiniDeployment {
        deployment_with(FaultPlan::new(0))
    }

    #[test]
    fn end_to_end_over_tcp() {
        let d = deployment();
        let rows = d
            .run_price_check(10, "steampowered.com", ProductId(0))
            .expect("check succeeds");
        // Initiator + 2 IPCs + 3 same-country PPCs.
        assert_eq!(rows.len(), 6, "{rows:?}");
        assert!(rows.iter().all(|r| r.converted > 0.0));
        assert!(rows.iter().any(|r| r.label == "You"));
        assert!(rows.iter().any(|r| r.label.starts_with("IPC ")));
        assert!(rows.iter().any(|r| r.label.starts_with("peer ")));
        // Steam discriminates by country: the IPC vantages differ from ES.
        let min = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::INFINITY, f64::min);
        let max = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.05, "spread {min}..{max}");
        d.shutdown();
    }

    #[test]
    fn unknown_domain_rejected_over_tcp() {
        let d = deployment();
        let err = d
            .run_price_check(10, "evil.example", ProductId(0))
            .unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        d.shutdown();
    }

    #[test]
    fn uniform_store_agrees_across_peers() {
        let d = deployment();
        let w = d.world();
        let domain = w
            .lock()
            .domains()
            .find(|x| x.starts_with("store-"))
            .unwrap()
            .to_string();
        let rows = d.run_price_check(11, &domain, ProductId(0)).expect("check");
        let confident: Vec<f64> = rows
            .iter()
            .filter(|r| !r.low_confidence)
            .map(|r| r.converted)
            .collect();
        if confident.len() >= 2 {
            let min = confident.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = confident.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert!(max / min < 1.01, "uniform store spread {min}..{max}");
        }
        d.shutdown();
    }

    #[test]
    fn sequential_checks_reuse_deployment() {
        let d = deployment();
        for p in 0..3 {
            let rows = d
                .run_price_check(12, "amazon.com", ProductId(p))
                .expect("check");
            assert!(rows.len() >= 4, "{rows:?}");
        }
        d.shutdown();
    }

    #[test]
    fn shutdown_mid_flight_reports_aborted_check_and_joins() {
        // Node layout of this deployment: coordinator 0, aggregator 1
        // (v1 → no db), measurement server 2, IPCs 3–4, peers 5–8.
        // Every IPC FetchReply is eaten, so the job stays open until its
        // 8s deadline — far beyond the shutdown below.
        let dead = LinkFaults {
            drop: 1.0,
            ..LinkFaults::NONE
        };
        let d = deployment_with(
            FaultPlan::new(5)
                .with_link(3, 2, dead)
                .with_link(4, 2, dead),
        );
        let tag = d
            .begin_check(10, "amazon.com", ProductId(0))
            .expect("begins");
        // Let the fan-out happen, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(400));
        let aborted = d.shutdown_with_report();
        assert_eq!(
            aborted,
            vec![tag],
            "mid-flight check must report as aborted"
        );
    }

    #[test]
    fn drop_without_shutdown_joins_all_threads() {
        let d = deployment();
        let rows = d
            .run_price_check(10, "amazon.com", ProductId(0))
            .expect("check");
        assert!(!rows.is_empty());
        drop(d); // Drop must shut the node threads down, not leak them.
    }
}
