//! A real localhost deployment: Coordinator, Measurement server, and peer
//! listeners on ephemeral TCP ports, speaking the [`crate::proto`] protocol
//! over [`crate::frame`] frames.
//!
//! This is the "does it actually run on sockets" proof. The synthetic web
//! sits behind a shared mutex (each peer fetches pages locally, as the real
//! add-on's browser would); everything else — job assignment, fan-out,
//! Tags-Path extraction, currency conversion, result streaming — happens
//! over real connections between real threads.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use sheriff_telemetry::Registry;

use sheriff_core::measurement::{process_response, VantageMeta};
use sheriff_core::records::VantageKind;
use sheriff_core::whitelist::split_url;
use sheriff_currency::FixedRates;
use sheriff_geo::{Country, IpAllocator, IpV4};
use sheriff_html::tagspath::TagsPath;
use sheriff_html::Document;
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::{CookieJar, FetchContext, FetchResult, ProductId, UserAgent, World};

use crate::proto::{ResultRow, WireMsg};
use crate::telemetry::WireTelemetry;

/// The running deployment.
pub struct MiniDeployment {
    coordinator_addr: SocketAddr,
    server_addr: SocketAddr,
    peer_addrs: Vec<SocketAddr>,
    handles: Vec<JoinHandle<()>>,
    world: Arc<Mutex<World>>,
    telemetry: Arc<Registry>,
    wire: Arc<WireTelemetry>,
}

impl MiniDeployment {
    /// Starts coordinator + one Measurement server + one listener per peer
    /// on ephemeral localhost ports.
    pub fn start(world: World, peers: &[(u64, Country)]) -> io::Result<MiniDeployment> {
        let world = Arc::new(Mutex::new(world));
        let rates = world.lock().rates.clone();
        let mut handles = Vec::new();
        let mut alloc = IpAllocator::new();
        let telemetry = Arc::new(Registry::new());
        let wire = Arc::new(WireTelemetry::new(&telemetry));

        // Peers.
        let mut peer_addrs = Vec::new();
        for &(peer_id, country) in peers {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            peer_addrs.push(listener.local_addr()?);
            let ip = alloc.allocate(country, 0);
            let world = Arc::clone(&world);
            let rates = rates.clone();
            let wire = Arc::clone(&wire);
            handles.push(std::thread::spawn(move || {
                peer_loop(listener, peer_id, country, ip, world, rates, wire);
            }));
        }

        // Measurement server.
        let server_listener = TcpListener::bind("127.0.0.1:0")?;
        let server_addr = server_listener.local_addr()?;
        {
            let world = Arc::clone(&world);
            let rates = rates.clone();
            let peer_addrs = peer_addrs.clone();
            let wire = Arc::clone(&wire);
            handles.push(std::thread::spawn(move || {
                measurement_loop(server_listener, world, rates, peer_addrs, wire);
            }));
        }

        // Coordinator.
        let coord_listener = TcpListener::bind("127.0.0.1:0")?;
        let coordinator_addr = coord_listener.local_addr()?;
        {
            let world = Arc::clone(&world);
            let wire = Arc::clone(&wire);
            handles.push(std::thread::spawn(move || {
                coordinator_loop(coord_listener, world, server_addr, wire);
            }));
        }

        Ok(MiniDeployment {
            coordinator_addr,
            server_addr,
            peer_addrs,
            handles,
            world,
            telemetry,
            wire,
        })
    }

    /// The deployment's telemetry registry (wire.* counters). Clone the
    /// `Arc` before [`MiniDeployment::shutdown`] to inspect final counts.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Coordinator address for add-on clients.
    pub fn coordinator_addr(&self) -> SocketAddr {
        self.coordinator_addr
    }

    /// The shared world (tests inspect ground truth through it).
    pub fn world(&self) -> Arc<Mutex<World>> {
        Arc::clone(&self.world)
    }

    /// Acts as the browser add-on: runs the full §3.2 protocol for one
    /// price check and returns the Fig. 2 result rows.
    pub fn run_price_check(
        &self,
        domain: &str,
        product: ProductId,
    ) -> Result<Vec<ResultRow>, String> {
        // Step 1: ask the Coordinator.
        let mut coord = TcpStream::connect(self.coordinator_addr).map_err(|e| e.to_string())?;
        WireMsg::CoordRequest {
            url: format!("{domain}/product/{}", product.0),
            peer: 1,
        }
        .send_counted(&mut coord, &self.wire)
        .map_err(|e| e.to_string())?;
        let assign = WireMsg::recv_counted(&mut coord, &self.wire)
            .map_err(|e| e.to_string())?
            .ok_or("coordinator hung up")?;
        let server_addr = match assign {
            WireMsg::CoordAssign { server_addr, .. } => server_addr,
            WireMsg::CoordReject { reason } => return Err(format!("rejected: {reason}")),
            other => return Err(format!("unexpected reply: {other:?}")),
        };

        // The "user" fetches their own page and selects the price.
        let (html, tags_path) = {
            let mut world = self.world.lock();
            let rates = world.rates.clone();
            let jar = CookieJar::new();
            let ctx = clean_ctx(IpV4(0x0a00_0001), Country::ES, &jar, 1);
            let template = world
                .retailer(domain)
                .map(|r| r.template)
                .ok_or("unknown domain")?;
            let retailer = world.retailer_mut(domain).ok_or("unknown domain")?;
            let result = retailer
                .fetch(product, &ctx, 0, &rates, 0.0, 1)
                .ok_or("unknown product")?;
            let FetchResult::Page { html, .. } = result else {
                return Err("captcha on initiator fetch".into());
            };
            let doc = Document::parse(&html);
            let (tag, class) = sheriff_market::page::price_markup(template);
            let el = doc
                .find_by_class(tag, class)
                .ok_or("price element missing")?;
            let path = TagsPath::from_node(&doc, el).ok_or("no tags path")?;
            (html, path)
        };

        // Step 3: submit to the Measurement server.
        let mut server = TcpStream::connect(&server_addr).map_err(|e| e.to_string())?;
        WireMsg::JobSubmit {
            job: 1,
            domain: domain.to_string(),
            product: product.0,
            tags_path_json: serde_json::to_string(&tags_path).map_err(|e| e.to_string())?,
            initiator_html: html,
        }
        .send_counted(&mut server, &self.wire)
        .map_err(|e| e.to_string())?;

        // Step 5: results.
        match WireMsg::recv_counted(&mut server, &self.wire).map_err(|e| e.to_string())? {
            Some(WireMsg::Results { rows, .. }) => Ok(rows),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// Orderly shutdown: every component receives a Shutdown frame.
    pub fn shutdown(self) {
        for addr in std::iter::once(self.coordinator_addr)
            .chain(std::iter::once(self.server_addr))
            .chain(self.peer_addrs.iter().copied())
        {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = WireMsg::Shutdown.send_counted(&mut s, &self.wire);
            }
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn clean_ctx<'a>(
    ip: IpV4,
    country: Country,
    jar: &'a CookieJar,
    seq: u64,
) -> FetchContext<'a> {
    FetchContext {
        ip,
        country,
        cookies: jar,
        user_agent: UserAgent {
            os: Os::Linux,
            browser: Browser::Firefox,
        },
        logged_in: false,
        day: 0,
        time_quarter: 0,
        request_seq: seq,
        client_id: seq,
    }
}

fn coordinator_loop(
    listener: TcpListener,
    world: Arc<Mutex<World>>,
    server_addr: SocketAddr,
    wire: Arc<WireTelemetry>,
) {
    let jobs = AtomicU64::new(1);
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        match WireMsg::recv_counted(&mut stream, &wire) {
            Ok(Some(WireMsg::CoordRequest { url, .. })) => {
                let (domain, _path) = split_url(&url);
                let known = world.lock().retailer(domain).is_some();
                let reply = if known {
                    WireMsg::CoordAssign {
                        job: jobs.fetch_add(1, Ordering::Relaxed),
                        server_addr: server_addr.to_string(),
                    }
                } else {
                    WireMsg::CoordReject {
                        reason: format!("{domain} is not whitelisted"),
                    }
                };
                let _ = reply.send_counted(&mut stream, &wire);
            }
            Ok(Some(WireMsg::Shutdown)) => break,
            _ => {}
        }
    }
}

fn measurement_loop(
    listener: TcpListener,
    world: Arc<Mutex<World>>,
    rates: FixedRates,
    peer_addrs: Vec<SocketAddr>,
    wire: Arc<WireTelemetry>,
) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        match WireMsg::recv_counted(&mut stream, &wire) {
            Ok(Some(WireMsg::JobSubmit {
                job,
                domain,
                product,
                tags_path_json,
                initiator_html,
            })) => {
                let Ok(path) = serde_json::from_str::<TagsPath>(&tags_path_json) else {
                    continue;
                };
                let mut rows = Vec::new();

                // The initiator's own page.
                let meta = VantageMeta {
                    kind: VantageKind::Initiator,
                    id: 0,
                    country: Country::ES,
                    city: None,
                    ip: IpV4(0),
                };
                let obs = process_response(&initiator_html, &path, &meta, "EUR", &rates);
                rows.push(ResultRow {
                    label: "You".to_string(),
                    original: obs.raw_text.clone(),
                    converted: obs.amount_eur,
                    low_confidence: obs.low_confidence,
                });

                // Fan out to every peer over TCP.
                for (i, addr) in peer_addrs.iter().enumerate() {
                    let Ok(mut peer) = TcpStream::connect(addr) else {
                        continue;
                    };
                    let order = WireMsg::FetchOrder {
                        job,
                        domain: domain.clone(),
                        product,
                        seq: job * 100 + i as u64,
                    };
                    if order.send_counted(&mut peer, &wire).is_err() {
                        continue;
                    }
                    let Ok(Some(WireMsg::FetchReply {
                        peer: peer_id,
                        country,
                        html,
                        ..
                    })) = WireMsg::recv_counted(&mut peer, &wire)
                    else {
                        continue;
                    };
                    let c = Country::from_code(&country).unwrap_or(Country::ES);
                    let meta = VantageMeta {
                        kind: VantageKind::Ppc,
                        id: peer_id,
                        country: c,
                        city: None,
                        ip: IpV4(0),
                    };
                    let obs = process_response(&html, &path, &meta, "EUR", &rates);
                    rows.push(ResultRow {
                        label: format!("peer {} ({})", peer_id, c.name()),
                        original: obs.raw_text.clone(),
                        converted: obs.amount_eur,
                        low_confidence: obs.low_confidence,
                    });
                }
                let _ = WireMsg::Results { job, rows }.send_counted(&mut stream, &wire);
                let _ = &world; // world is only touched by peers in this deployment
            }
            Ok(Some(WireMsg::Shutdown)) => break,
            _ => {}
        }
    }
}

fn peer_loop(
    listener: TcpListener,
    peer_id: u64,
    country: Country,
    ip: IpV4,
    world: Arc<Mutex<World>>,
    rates: FixedRates,
    wire: Arc<WireTelemetry>,
) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        match WireMsg::recv_counted(&mut stream, &wire) {
            Ok(Some(WireMsg::FetchOrder {
                job,
                domain,
                product,
                seq,
            })) => {
                let html = {
                    let mut w = world.lock();
                    let jar = CookieJar::new();
                    let ctx = clean_ctx(ip, country, &jar, seq);
                    w.retailer_mut(&domain)
                        .and_then(|r| r.fetch(ProductId(product), &ctx, 0, &rates, 0.0, peer_id))
                        .map(|res| match res {
                            FetchResult::Page { html, .. } => html,
                            FetchResult::Captcha { html } => html,
                        })
                };
                if let Some(html) = html {
                    let _ = WireMsg::FetchReply {
                        job,
                        peer: peer_id,
                        country: country.code().to_string(),
                        html,
                    }
                    .send_counted(&mut stream, &wire);
                }
            }
            Ok(Some(WireMsg::Shutdown)) => break,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::world::WorldConfig;

    fn deployment() -> MiniDeployment {
        let world = World::build(&WorldConfig::small(), 77);
        MiniDeployment::start(
            world,
            &[
                (10, Country::ES),
                (11, Country::US),
                (12, Country::JP),
            ],
        )
        .expect("deployment starts")
    }

    #[test]
    fn end_to_end_over_tcp() {
        let d = deployment();
        let rows = d
            .run_price_check("steampowered.com", ProductId(0))
            .expect("check succeeds");
        // Initiator + 3 peers.
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.converted > 0.0));
        // Steam discriminates by country: some row differs from the rest.
        let min = rows.iter().map(|r| r.converted).fold(f64::INFINITY, f64::min);
        let max = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.05, "spread {min}..{max}");
        d.shutdown();
    }

    #[test]
    fn unknown_domain_rejected_over_tcp() {
        let d = deployment();
        let err = d
            .run_price_check("evil.example", ProductId(0))
            .unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        d.shutdown();
    }

    #[test]
    fn uniform_store_agrees_across_peers() {
        let d = deployment();
        let w = d.world();
        let domain = w
            .lock()
            .domains()
            .find(|x| x.starts_with("store-"))
            .unwrap()
            .to_string();
        let rows = d.run_price_check(&domain, ProductId(0)).expect("check");
        let confident: Vec<f64> = rows
            .iter()
            .filter(|r| !r.low_confidence)
            .map(|r| r.converted)
            .collect();
        if confident.len() >= 2 {
            let min = confident.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = confident.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert!(max / min < 1.01, "uniform store spread {min}..{max}");
        }
        d.shutdown();
    }

    #[test]
    fn sequential_checks_reuse_deployment() {
        let d = deployment();
        for p in 0..3 {
            let rows = d.run_price_check("amazon.com", ProductId(p)).expect("check");
            assert!(rows.len() >= 3);
        }
        d.shutdown();
    }
}
