//! A real localhost deployment of the Price $heriff over TCP.
//!
//! This is the "does it actually run on sockets" proof — and since the
//! protocol refactor it is a *thin transport adapter*: every role
//! (Coordinator, Aggregator, Measurement servers, Database server, IPCs,
//! PPC add-ons) is one of the sans-IO state machines from
//! [`sheriff_core::protocol`], exactly the ones the discrete-event
//! simulation drives.
//!
//! Since the reactor refactor the transport tier is *sharded*: the node
//! roster is hashed over a small set of single-threaded event loops
//! (see [`crate::reactor`]), each owning its nodes' nonblocking
//! listeners, live connections and a virtual-time timer queue. Thread
//! count is `O(shards)` instead of `O(nodes)`, which is what lets the
//! TCP backend host rosters past the paper's 1265-peer deployment.
//! Sends are still one [`Envelope`] per connection (connect–write–close)
//! and time is still real elapsed milliseconds since deployment start —
//! the protocol machines cannot tell the backends apart, and the
//! `backend_parity` test pins both to identical observation sets.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_core::coordinator::{Coordinator, PeerId};
use sheriff_core::durability::recover;
use sheriff_core::pollution::PollutionLedger;
use sheriff_core::protocol::{
    Address, AggregatorProto, Channel, CompletedProtoCheck, CoordinatorProto, DbProto, DefenseBook,
    IpcProto, MeasurementParams, MeasurementProto, PeerProto, ProtoMsg, ReliableConfig,
};
use sheriff_core::proxy::{IpcEngine, PpcEngine};
use sheriff_core::records::PriceCheck;
use sheriff_core::system::{PpcSpec, SheriffConfig, SystemVersion};
use sheriff_core::{BrowserProfile, Whitelist};
use sheriff_geo::{Country, GeoLocator, Granularity, IpAllocator};
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::{ByzStats, FaultPlan, FaultStats};
use sheriff_telemetry::Registry;

use crate::proto::{rows_from_check, Envelope, ResultRow};
use crate::reactor::reactor::Reactor;
use crate::reactor::shard::{
    default_shard_count, shard_of, ByzShim, FaultShim, NodeSlot, Role, ShardCtx,
};
use crate::reactor::DeployOptions;
use crate::storage::FileStorage;
use crate::telemetry::WireTelemetry;

/// How long [`MiniDeployment::run_check`] waits before declaring a check
/// lost.
const CHECK_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything the initiating add-ons surface to the outside world.
#[derive(Default)]
pub(crate) struct SinkState {
    pub(crate) completed: Vec<CompletedProtoCheck>,
    /// `(local_tag, reason)`.
    pub(crate) rejected: Vec<(u64, String)>,
    /// `(server_index, removed)` acks.
    pub(crate) removals: Vec<(usize, bool)>,
}

/// The sink uses `std::sync` primitives (the vendored `parking_lot` has
/// no condvar); the world stays behind `parking_lot::Mutex` to match the
/// core crate's types.
pub(crate) struct Sink {
    pub(crate) state: std::sync::Mutex<SinkState>,
    pub(crate) cv: std::sync::Condvar,
}

impl Sink {
    /// Blocks on the sink until `pick` yields, or `deadline` passes.
    fn wait_for<T>(
        &self,
        deadline: Instant,
        mut pick: impl FnMut(&mut SinkState) -> Option<T>,
    ) -> Option<T> {
        let mut st = self.state.lock().expect("sink poisoned");
        loop {
            if let Some(v) = pick(&mut st) {
                return Some(v);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(st, remaining).expect("sink poisoned");
            st = guard;
        }
    }
}

/// The running deployment.
pub struct MiniDeployment {
    dir: Arc<HashMap<Address, SocketAddr>>,
    /// One join handle per reactor shard (not per node).
    handles: Vec<JoinHandle<()>>,
    world: Arc<Mutex<World>>,
    telemetry: Arc<Registry>,
    wire: Arc<WireTelemetry>,
    sink: Arc<Sink>,
    next_tag: AtomicU64,
    shim: Option<Arc<FaultShim>>,
    byz: Option<Arc<ByzShim>>,
    /// Fault-plan node indices (bind order — the DES numbering) grouped
    /// by owning reactor shard.
    shards: Vec<Vec<usize>>,
    /// Local tags of checks begun but not yet completed or rejected.
    in_flight: Mutex<Vec<u64>>,
    /// On-disk home of the Database server's WAL + snapshot (v2 only);
    /// removed on shutdown unless recovered first.
    db_dir: Option<PathBuf>,
}

impl MiniDeployment {
    /// Starts a minimal deployment: v1 ($heriff) configuration, one
    /// Measurement server, no IPCs — peer fan-out only, with timings
    /// shrunk to wall-clock test scale. The full configuration surface is
    /// [`MiniDeployment::start_with`].
    pub fn start(world: World, peers: &[(u64, Country)]) -> io::Result<MiniDeployment> {
        let mut cfg = SheriffConfig::v1(7);
        cfg.ipc_locations.clear();
        cfg.proc_per_reply_ms = 2.0;
        cfg.context_switch_alpha = 0.0;
        cfg.job_deadline_ms = 8_000;
        cfg.heartbeat_every_ms = 3_600_000;
        let specs: Vec<PpcSpec> = peers
            .iter()
            .map(|&(peer_id, country)| PpcSpec {
                peer_id,
                country,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Linux,
                    browser: Browser::Firefox,
                },
                affluence: 0.3,
                logged_in_domains: vec![],
            })
            .collect();
        Self::start_with(world, cfg, &specs)
    }

    /// Starts the full system over TCP with the *same* configuration type
    /// the discrete-event backend takes. Fetch-latency knobs are ignored
    /// (loopback fetches are real); everything protocol-visible —
    /// version, server count, IPC roster, PPCs per request, currency,
    /// doppelganger switch, heartbeat policy — behaves identically.
    pub fn start_with(
        world: World,
        cfg: SheriffConfig,
        peers: &[PpcSpec],
    ) -> io::Result<MiniDeployment> {
        Self::start_with_faults(world, cfg, peers, FaultPlan::new(0))
    }

    /// Like [`MiniDeployment::start_with`], with a deterministic fault
    /// schedule applied at the reactor's socket edges — the very
    /// [`FaultPlan`] type the DES engine consumes, against the same node
    /// numbering, so one schedule exercises both backends identically. An
    /// inactive (all-zero) plan is bypassed entirely: a strict no-op.
    pub fn start_with_faults(
        world: World,
        cfg: SheriffConfig,
        peers: &[PpcSpec],
        plan: FaultPlan,
    ) -> io::Result<MiniDeployment> {
        Self::start_with_options(world, cfg, peers, plan, DeployOptions::default())
    }

    /// The full-surface constructor: fault schedule plus reactor tuning.
    /// `opts.shards == 0` sizes the shard set from the roster.
    pub fn start_with_options(
        world: World,
        cfg: SheriffConfig,
        peers: &[PpcSpec],
        plan: FaultPlan,
        opts: DeployOptions,
    ) -> io::Result<MiniDeployment> {
        let whitelist = Whitelist::with_domains(world.domains().map(str::to_string));
        let world = Arc::new(Mutex::new(world));
        let rates = world.lock().rates.clone();
        let mut alloc = IpAllocator::new();
        let locator = GeoLocator::new(Granularity::City);
        let telemetry = Arc::new(Registry::new());
        let wire = Arc::new(WireTelemetry::new(&telemetry));
        let sink = Arc::new(Sink {
            state: std::sync::Mutex::new(SinkState::default()),
            cv: std::sync::Condvar::new(),
        });

        let n_servers = if cfg.version == SystemVersion::V1 {
            1
        } else {
            cfg.n_measurement_servers
        };
        let has_db = cfg.version == SystemVersion::V2;
        // Per-deployment on-disk home for the Database server's WAL +
        // snapshot; the pid/sequence pair keeps concurrent test binaries
        // and repeated deployments in one process apart.
        let db_dir = has_db.then(|| {
            static DB_DIR_SEQ: AtomicU64 = AtomicU64::new(0);
            std::env::temp_dir().join(format!(
                "sheriff-db-{}-{}",
                std::process::id(),
                DB_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });

        // Coordinator state. IP allocation order matches the DES backend
        // exactly (peers first, then IPCs) so both produce identical
        // observation sets under the same world seed.
        let mut coordinator = Coordinator::with_telemetry(whitelist, Arc::clone(&telemetry));
        coordinator.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
        for i in 0..n_servers {
            coordinator.register_server(&format!("ms-{i}"), 80, 0);
        }
        let mut peer_setups = Vec::new();
        for spec in peers {
            let ip = alloc.allocate(spec.country, spec.city_idx);
            let location = locator.locate(ip).expect("allocated IPs always geolocate");
            coordinator.peer_online(PeerId(spec.peer_id), ip, location.clone());
            peer_setups.push((spec.clone(), ip, location));
        }

        // Bind every listener up front so the address directory is
        // complete before any shard runs.
        let mut listeners: Vec<(Address, TcpListener)> = Vec::new();
        let mut dir = HashMap::new();
        let bind = |addr: Address,
                    listeners: &mut Vec<(Address, TcpListener)>,
                    dir: &mut HashMap<Address, SocketAddr>|
         -> io::Result<()> {
            let l = TcpListener::bind("127.0.0.1:0")?;
            dir.insert(addr, l.local_addr()?);
            listeners.push((addr, l));
            Ok(())
        };
        bind(Address::Coordinator, &mut listeners, &mut dir)?;
        bind(Address::Aggregator, &mut listeners, &mut dir)?;
        if has_db {
            bind(Address::Database, &mut listeners, &mut dir)?;
        }
        for index in 0..n_servers {
            bind(Address::Server { index }, &mut listeners, &mut dir)?;
        }
        for index in 0..cfg.ipc_locations.len() {
            bind(Address::Ipc { index }, &mut listeners, &mut dir)?;
        }
        for spec in peers {
            bind(Address::Peer { id: spec.peer_id }, &mut listeners, &mut dir)?;
        }
        let dir = Arc::new(dir);
        let epoch = Instant::now();

        // Bind order above is exactly the DES node layout, so enumerating
        // it yields the index the fault and Byzantine plans are phrased
        // against.
        let index: HashMap<Address, usize> = listeners
            .iter()
            .enumerate()
            .map(|(i, (addr, _))| (*addr, i))
            .collect();
        let shim = plan
            .is_active()
            .then(|| Arc::new(FaultShim::new(plan, index.clone(), &telemetry)));
        let byz = opts
            .byzantine
            .clone()
            .filter(sheriff_netsim::ByzantinePlan::is_active)
            .map(|p| Arc::new(ByzShim::new(p, index)));
        let reliable_cfg = ReliableConfig {
            base_backoff_ms: cfg.retransmit_base_ms,
            ..ReliableConfig::default()
        };

        let ipc_addrs: Vec<Address> = (0..cfg.ipc_locations.len())
            .map(|index| Address::Ipc { index })
            .collect();
        let mut ipc_engines: HashMap<usize, (IpcEngine, Option<String>)> = HashMap::new();
        for (i, &(country, city_idx)) in cfg.ipc_locations.iter().enumerate() {
            let ip = alloc.allocate(country, city_idx);
            let city = locator.locate(ip).and_then(|l| l.city);
            ipc_engines.insert(
                i,
                (
                    IpcEngine {
                        id: i as u64,
                        country,
                        city_idx,
                        ip,
                        user_agent: UserAgent {
                            os: Os::Linux,
                            browser: Browser::Firefox,
                        },
                    },
                    city,
                ),
            );
        }
        let mut peer_setups: HashMap<u64, _> = peer_setups
            .into_iter()
            .map(|(spec, ip, loc)| (spec.peer_id, (spec, ip, loc)))
            .collect();
        let mut coordinator = Some(coordinator);

        // Instantiate every role machine in bind order.
        let mut roster: Vec<(Address, TcpListener, Role)> = Vec::new();
        for (addr, listener) in listeners {
            let role = match addr {
                Address::Coordinator => {
                    let mut proto = CoordinatorProto::new(
                        coordinator.take().expect("one coordinator"),
                        cfg.ppc_per_request,
                    );
                    proto.sweep_every_ms = cfg.coord_sweep_every_ms;
                    proto.defense = DefenseBook::new(cfg.defense).with_telemetry(&telemetry);
                    Role::Coordinator {
                        proto: Box::new(proto),
                        rng: StdRng::seed_from_u64(cfg.seed),
                        sweep_every_ms: cfg.coord_sweep_every_ms,
                    }
                }
                Address::Aggregator => Role::Aggregator {
                    proto: AggregatorProto::new(),
                },
                Address::Database => {
                    let dir = db_dir.as_ref().expect("database role implies a db dir");
                    Role::Database {
                        proto: Box::new(DbProto::with_storage(
                            cfg.db_cost,
                            Box::new(FileStorage::open(dir)),
                            cfg.db_snapshot_every,
                        )),
                    }
                }
                Address::Server { index } => {
                    let mut proto = MeasurementProto::new(MeasurementParams {
                        index,
                        ipcs: ipc_addrs.clone(),
                        rates: rates.clone(),
                        target_currency: cfg.target_currency.clone(),
                        proc_per_reply_ms: cfg.proc_per_reply_ms,
                        context_switch_alpha: cfg.context_switch_alpha,
                        job_deadline_ms: cfg.job_deadline_ms,
                        db_cost: cfg.db_cost,
                        integrated_db: cfg.version == SystemVersion::V1,
                        heartbeat_every_ms: cfg.heartbeat_every_ms,
                        ipc_countries: cfg.ipc_locations.iter().map(|&(c, _)| c).collect(),
                        defense: cfg.defense,
                    });
                    proto.defense = DefenseBook::new(cfg.defense).with_telemetry(&telemetry);
                    Role::Measurement {
                        proto: Box::new(proto),
                        beacon_every_ms: cfg.heartbeat_every_ms,
                    }
                }
                Address::Ipc { index } => {
                    let (engine, city) = ipc_engines.remove(&index).expect("ipc engine");
                    Role::Ipc {
                        proto: Box::new(IpcProto { engine, city }),
                    }
                }
                Address::Peer { id } => {
                    let (spec, ip, location) = peer_setups.remove(&id).expect("peer spec");
                    Role::Peer {
                        proto: Box::new(PeerProto::new(
                            PpcEngine {
                                peer_id: spec.peer_id,
                                browser: BrowserProfile::new(),
                                ledger: PollutionLedger::new(),
                                ip,
                                country: spec.country,
                                city_idx: spec.city_idx,
                                user_agent: spec.user_agent,
                                affluence: spec.affluence,
                                logged_in_domains: spec.logged_in_domains.clone(),
                            },
                            location.city,
                            cfg.target_currency.clone(),
                            cfg.enable_doppelgangers,
                        )),
                    }
                }
            };
            roster.push((addr, listener, role));
        }

        // Partition the roster over the reactor shards and spawn one
        // event-loop thread per shard.
        let n_nodes = roster.len();
        let n_shards = if opts.shards == 0 {
            default_shard_count(n_nodes)
        } else {
            opts.shards.clamp(1, n_nodes.max(1))
        };
        let ctx = ShardCtx {
            dir: Arc::clone(&dir),
            wire: Arc::clone(&wire),
            world: Arc::clone(&world),
            epoch,
            sink: Arc::clone(&sink),
            shim: shim.clone(),
            byz: byz.clone(),
            unknown_timers: telemetry.counter("protocol.unknown_timers"),
            wakeups: telemetry.counter("wire.reactor_wakeups"),
            queue_depth: telemetry.gauge("wire.shard_queue_depth"),
        };
        let mut groups: Vec<Vec<(NodeSlot, TcpListener)>> =
            (0..n_shards).map(|_| Vec::new()).collect();
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (fault_idx, (addr, listener, role)) in roster.into_iter().enumerate() {
            let chan = Channel::new(reliable_cfg).with_telemetry(&telemetry);
            let s = shard_of(addr, n_shards);
            groups[s].push((NodeSlot::new(addr, role, chan), listener));
            shards[s].push(fault_idx);
        }
        let handles = groups
            .into_iter()
            .map(|nodes| {
                let ctx = ctx.clone();
                std::thread::spawn(move || Reactor::new(ctx, nodes).run())
            })
            .collect();

        Ok(MiniDeployment {
            dir,
            handles,
            world,
            telemetry,
            wire,
            sink,
            next_tag: AtomicU64::new(1),
            shim,
            byz,
            shards,
            in_flight: Mutex::new(Vec::new()),
            db_dir,
        })
    }

    /// The deployment's telemetry registry (wire.* counters). Clone the
    /// `Arc` before [`MiniDeployment::shutdown`] to inspect final counts.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Coordinator address (exposed so tests can poke the socket
    /// directly, e.g. with rude or malformed clients).
    pub fn coordinator_addr(&self) -> SocketAddr {
        self.dir[&Address::Coordinator]
    }

    /// The shared world (tests inspect ground truth through it).
    pub fn world(&self) -> Arc<Mutex<World>> {
        Arc::clone(&self.world)
    }

    /// Number of reactor shards (event-loop threads) this deployment
    /// runs on.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The fault-plan node indices (bind order — the DES numbering)
    /// owned by reactor shard `shard`. Tests use this to phrase crash
    /// schedules against a *whole shard*: every node here shares one
    /// event-loop thread.
    pub fn shard_members(&self, shard: usize) -> &[usize] {
        self.shards.get(shard).map_or(&[], Vec::as_slice)
    }

    /// Runs one full §3.2 price check initiated by `peer`'s add-on and
    /// returns the completed check.
    pub fn run_check(
        &self,
        peer: u64,
        domain: &str,
        product: ProductId,
    ) -> Result<PriceCheck, String> {
        let tag = self.begin_check(peer, domain, product)?;
        self.await_check(tag)
    }

    /// Injects a §3.2 check and returns its local tag without waiting.
    /// Pair with [`MiniDeployment::await_check`], or let
    /// [`MiniDeployment::shutdown_with_report`] tell you it was aborted.
    pub fn begin_check(&self, peer: u64, domain: &str, product: ProductId) -> Result<u64, String> {
        let me = Address::Peer { id: peer };
        if !self.dir.contains_key(&me) {
            return Err(format!("unknown peer {peer}"));
        }
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        self.in_flight.lock().push(tag);
        self.inject(
            me,
            me,
            ProtoMsg::StartCheck {
                domain: domain.to_string(),
                product,
                local_tag: tag,
            },
        )?;
        Ok(tag)
    }

    /// Blocks until the check behind `tag` completes or is rejected.
    pub fn await_check(&self, tag: u64) -> Result<PriceCheck, String> {
        let deadline = Instant::now() + CHECK_TIMEOUT;
        match self.sink.wait_for(deadline, |st| {
            if let Some(pos) = st.completed.iter().position(|c| c.local_tag == tag) {
                return Some(Ok(st.completed.swap_remove(pos).check));
            }
            if let Some(pos) = st.rejected.iter().position(|(t, _)| *t == tag) {
                let (_, reason) = st.rejected.swap_remove(pos);
                return Some(Err(format!("rejected: {reason}")));
            }
            None
        }) {
            Some(res) => {
                self.in_flight.lock().retain(|t| *t != tag);
                res
            }
            None => Err("price check timed out".into()),
        }
    }

    /// Running totals of the installed fault plan (`None` without one).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.shim.as_ref().map(|s| s.stats())
    }

    /// Running totals of the installed Byzantine plan (`None` without
    /// an active one).
    pub fn byz_stats(&self) -> Option<ByzStats> {
        self.byz.as_ref().map(|s| s.stats())
    }

    /// Like [`MiniDeployment::run_check`] but rendered as Fig. 2 result
    /// rows.
    pub fn run_price_check(
        &self,
        peer: u64,
        domain: &str,
        product: ProductId,
    ) -> Result<Vec<ResultRow>, String> {
        Ok(rows_from_check(&self.run_check(peer, domain, product)?))
    }

    /// Asks the Coordinator (as `via_peer`) to decommission Measurement
    /// server `index`; returns whether it was removed. The Coordinator
    /// refuses while the server still has pending jobs.
    pub fn remove_server(&self, via_peer: u64, index: usize) -> Result<bool, String> {
        let from = Address::Peer { id: via_peer };
        let before = self
            .sink
            .state
            .lock()
            .expect("sink poisoned")
            .removals
            .len();
        self.inject(from, Address::Coordinator, ProtoMsg::RemoveServer { index })?;
        let deadline = Instant::now() + CHECK_TIMEOUT;
        self.sink
            .wait_for(deadline, |st| {
                st.removals[before.min(st.removals.len())..]
                    .iter()
                    .find(|&&(i, _)| i == index)
                    .map(|&(_, removed)| removed)
            })
            .ok_or_else(|| "remove_server timed out".into())
    }

    /// Sends one envelope into the deployment from the outside.
    fn inject(&self, from: Address, to: Address, msg: ProtoMsg) -> Result<(), String> {
        let addr = self.dir.get(&to).ok_or_else(|| format!("unknown {to:?}"))?;
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        Envelope { from, msg }
            .send_counted(&mut s, &self.wire)
            .map_err(|e| e.to_string())
    }

    fn shutdown_impl(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        // Let in-flight frames drain first: a client unblocks when the
        // completion sink is updated, which can happen *before* the
        // reactor's trailing Ack hits the wire — so a shard that reads
        // its Shutdown frames ahead of that Ack would exit without ever
        // counting it. Momentary balance is not enough (the Ack may not
        // have been written yet); require the books to balance and stay
        // still across several polls. Bounded wait, since a frame to a
        // node that already vanished (crash tests) never arrives.
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut last = (u64::MAX, u64::MAX);
        let mut stable = 0u32;
        while stable < 10 && Instant::now() < deadline {
            let now = (self.wire.frames_out.get(), self.wire.frames_in.get());
            if now.0 == now.1 && now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // One Shutdown frame per node: its shard stops accepting on that
        // listener and discards the node; a shard exits once every node
        // it owns is down and its write queues drained.
        for to in self.dir.keys() {
            let _ = self.inject(Address::Coordinator, *to, ProtoMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(dir) = self.db_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// Shuts down like [`MiniDeployment::shutdown`], then re-opens the
    /// Database server's on-disk storage and replays snapshot + WAL —
    /// exactly what a freshly restarted Database process would recover.
    /// Returns the recovered checks (empty for v1 deployments, which run
    /// no Database node). The storage directory is removed afterwards.
    pub fn shutdown_and_recover_db(mut self) -> Vec<PriceCheck> {
        let dir = self.db_dir.take();
        self.shutdown_impl();
        let Some(dir) = dir else {
            return Vec::new();
        };
        let storage = FileStorage::open(&dir);
        let recovered = recover(&storage);
        let _ = std::fs::remove_dir_all(&dir);
        recovered.records.into_iter().map(|r| r.check).collect()
    }

    /// Orderly shutdown: every node receives a Shutdown frame, every
    /// reactor shard thread is joined. Also runs on [`Drop`], so a
    /// deployment can never leak its threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Shuts down like [`MiniDeployment::shutdown`], then reports the
    /// local tags of checks that were begun but never completed nor
    /// rejected — work aborted mid-flight. Every thread is joined either
    /// way; an in-flight check must never wedge the teardown.
    pub fn shutdown_with_report(mut self) -> Vec<u64> {
        self.shutdown_impl();
        // Snapshot each book under its own guard, never both at once:
        // the report path imposes no ordering between the sink and
        // in-flight locks, so the wire lock-order graph stays
        // edge-free (SL201).
        let (completed, rejected): (Vec<u64>, Vec<u64>) = {
            let st = self.sink.state.lock().expect("sink poisoned");
            (
                st.completed.iter().map(|c| c.local_tag).collect(),
                st.rejected.iter().map(|&(r, _)| r).collect(),
            )
        };
        let tags: Vec<u64> = self.in_flight.lock().clone();
        tags.into_iter()
            .filter(|t| !completed.contains(t) && !rejected.contains(t))
            .collect()
    }
}

impl Drop for MiniDeployment {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::world::WorldConfig;
    use sheriff_netsim::LinkFaults;

    /// Four same-country peers (PPC fan-out is location-local, §6.1) and
    /// two far-away IPC vantages for cross-country rows.
    fn deployment_with(plan: FaultPlan) -> MiniDeployment {
        let world = World::build(&WorldConfig::small(), 77);
        let mut cfg = SheriffConfig::v1(7);
        cfg.ipc_locations = vec![(Country::US, 0), (Country::JP, 0)];
        cfg.proc_per_reply_ms = 2.0;
        cfg.context_switch_alpha = 0.0;
        cfg.job_deadline_ms = 8_000;
        cfg.heartbeat_every_ms = 3_600_000;
        let specs: Vec<PpcSpec> = [10u64, 11, 12, 13]
            .iter()
            .map(|&peer_id| PpcSpec {
                peer_id,
                country: Country::ES,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Linux,
                    browser: Browser::Firefox,
                },
                affluence: 0.3,
                logged_in_domains: vec![],
            })
            .collect();
        MiniDeployment::start_with_faults(world, cfg, &specs, plan).expect("deployment starts")
    }

    fn deployment() -> MiniDeployment {
        deployment_with(FaultPlan::new(0))
    }

    #[test]
    fn end_to_end_over_tcp() {
        let d = deployment();
        let rows = d
            .run_price_check(10, "steampowered.com", ProductId(0))
            .expect("check succeeds");
        // Initiator + 2 IPCs + 3 same-country PPCs.
        assert_eq!(rows.len(), 6, "{rows:?}");
        assert!(rows.iter().all(|r| r.converted > 0.0));
        assert!(rows.iter().any(|r| r.label == "You"));
        assert!(rows.iter().any(|r| r.label.starts_with("IPC ")));
        assert!(rows.iter().any(|r| r.label.starts_with("peer ")));
        // Steam discriminates by country: the IPC vantages differ from ES.
        let min = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::INFINITY, f64::min);
        let max = rows
            .iter()
            .map(|r| r.converted)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.05, "spread {min}..{max}");
        d.shutdown();
    }

    #[test]
    fn unknown_domain_rejected_over_tcp() {
        let d = deployment();
        let err = d
            .run_price_check(10, "evil.example", ProductId(0))
            .unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        d.shutdown();
    }

    #[test]
    fn uniform_store_agrees_across_peers() {
        let d = deployment();
        let w = d.world();
        let domain = w
            .lock()
            .domains()
            .find(|x| x.starts_with("store-"))
            .unwrap()
            .to_string();
        let rows = d.run_price_check(11, &domain, ProductId(0)).expect("check");
        let confident: Vec<f64> = rows
            .iter()
            .filter(|r| !r.low_confidence)
            .map(|r| r.converted)
            .collect();
        if confident.len() >= 2 {
            let min = confident.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = confident.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert!(max / min < 1.01, "uniform store spread {min}..{max}");
        }
        d.shutdown();
    }

    #[test]
    fn sequential_checks_reuse_deployment() {
        let d = deployment();
        for p in 0..3 {
            let rows = d
                .run_price_check(12, "amazon.com", ProductId(p))
                .expect("check");
            assert!(rows.len() >= 4, "{rows:?}");
        }
        d.shutdown();
    }

    #[test]
    fn shutdown_mid_flight_reports_aborted_check_and_joins() {
        // Node layout of this deployment: coordinator 0, aggregator 1
        // (v1 → no db), measurement server 2, IPCs 3–4, peers 5–8.
        // Every IPC FetchReply is eaten, so the job stays open until its
        // 8s deadline — far beyond the shutdown below.
        let dead = LinkFaults {
            drop: 1.0,
            ..LinkFaults::NONE
        };
        let d = deployment_with(
            FaultPlan::new(5)
                .with_link(3, 2, dead)
                .with_link(4, 2, dead),
        );
        let tag = d
            .begin_check(10, "amazon.com", ProductId(0))
            .expect("begins");
        // Let the fan-out happen, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(400));
        let aborted = d.shutdown_with_report();
        assert_eq!(
            aborted,
            vec![tag],
            "mid-flight check must report as aborted"
        );
    }

    #[test]
    fn drop_without_shutdown_joins_all_threads() {
        let d = deployment();
        let rows = d
            .run_price_check(10, "amazon.com", ProductId(0))
            .expect("check");
        assert!(!rows.is_empty());
        drop(d); // Drop must shut the shard threads down, not leak them.
    }

    #[test]
    fn shard_layout_is_deterministic_and_total() {
        // Same roster → same placement, every node owned exactly once,
        // and explicit shard counts are honored.
        let d1 = deployment();
        let d2 = deployment();
        assert_eq!(d1.shard_count(), d2.shard_count());
        let mut owned: Vec<usize> = (0..d1.shard_count())
            .flat_map(|s| d1.shard_members(s).to_vec())
            .collect();
        owned.sort_unstable();
        assert_eq!(
            owned,
            (0..9).collect::<Vec<_>>(),
            "9 nodes, each owned once"
        );
        for s in 0..d1.shard_count() {
            assert_eq!(d1.shard_members(s), d2.shard_members(s));
        }
        d1.shutdown();
        d2.shutdown();

        let world = World::build(&WorldConfig::small(), 77);
        let d3 = MiniDeployment::start_with_options(
            world,
            SheriffConfig::v1(7),
            &[],
            FaultPlan::new(0),
            DeployOptions {
                shards: 2,
                ..DeployOptions::default()
            },
        )
        .expect("deployment starts");
        assert_eq!(d3.shard_count(), 2);
        d3.shutdown();
    }
}
