//! Quarantine lifecycle at the Measurement-server machine level: a peer
//! floods past its reply quota, crosses the score threshold, serves
//! quarantine (everything dropped), moves to parole on the quarantine
//! timer, is re-admitted for fresh work while on parole, and is fully
//! reinstated — score forgiven — on the parole timer. Along the way its
//! observations are counted exactly once per job.

use sheriff_core::coordinator::JobId;
use sheriff_core::db::DbCostModel;
use sheriff_core::measurement::VantageMeta;
use sheriff_core::protocol::{
    Address, DefenseParams, MeasEvent, MeasurementParams, MeasurementProto, Output, ProtoMsg,
    Standing, TimerKind,
};
use sheriff_core::records::{PriceObservation, VantageKind};
use sheriff_currency::FixedRates;
use sheriff_geo::{Country, IpV4};
use sheriff_html::tagspath::TagsPath;
use sheriff_market::ProductId;

const PEER: u64 = 7;
const OTHER: u64 = 8;
const INITIATOR: u64 = 9;

/// A machine with a one-reply-per-job quota and a two-point threshold,
/// so two flood copies walk the peer straight into quarantine.
fn proto() -> MeasurementProto {
    MeasurementProto::new(MeasurementParams {
        index: 0,
        ipcs: vec![],
        rates: FixedRates::paper_era(),
        target_currency: "EUR".into(),
        proc_per_reply_ms: 1.0,
        context_switch_alpha: 0.0,
        job_deadline_ms: 2_000,
        db_cost: DbCostModel::integrated(),
        integrated_db: true,
        heartbeat_every_ms: 60_000,
        ipc_countries: vec![],
        defense: DefenseParams {
            quarantine_threshold: 2,
            replies_per_job: 1,
            ..DefenseParams::default()
        },
    })
}

fn initiator_obs() -> PriceObservation {
    PriceObservation {
        vantage: VantageKind::Initiator,
        vantage_id: INITIATOR,
        country: Country::ES,
        city: None,
        ip: IpV4(0x0A00_0001),
        raw_text: "EUR 10.00".into(),
        currency: "EUR".into(),
        amount: 10.0,
        amount_eur: 10.0,
        low_confidence: false,
        failed: false,
    }
}

fn meta(peer: u64) -> VantageMeta {
    VantageMeta {
        kind: VantageKind::Ppc,
        id: peer,
        country: Country::ES,
        city: None,
        ip: IpV4(0x0A00_0002),
    }
}

/// Opens job `job` with PPCs 7 and 8: both protocol halves delivered,
/// fan-out done. The blank Tags Path makes every reply extract as a
/// failed fetch, which the plausibility gate must wave through.
fn open_job(p: &mut MeasurementProto, job: u64, now: u64) {
    let (mut out, mut events) = (Vec::new(), Vec::new());
    p.on_message(
        now,
        Address::Coordinator,
        ProtoMsg::PpcList {
            job: JobId(job),
            ppcs: vec![Address::Peer { id: PEER }, Address::Peer { id: OTHER }],
        },
        &mut out,
        &mut events,
    );
    p.on_message(
        now,
        Address::Peer { id: INITIATOR },
        ProtoMsg::JobSubmit {
            job: JobId(job),
            domain: "shop.example".into(),
            product: ProductId(1),
            tags_path: TagsPath { steps: vec![] },
            initiator_html: "<html></html>".into(),
            initiator_obs: Box::new(initiator_obs()),
        },
        &mut out,
        &mut events,
    );
}

fn reply(p: &mut MeasurementProto, job: u64, peer: u64, now: u64) -> (Vec<Output>, Vec<MeasEvent>) {
    let (mut out, mut events) = (Vec::new(), Vec::new());
    p.on_message(
        now,
        Address::Peer { id: peer },
        ProtoMsg::FetchReply {
            job: JobId(job),
            meta: meta(peer),
            html: "<html><span>10.00</span></html>".into(),
        },
        &mut out,
        &mut events,
    );
    (out, events)
}

#[test]
fn quota_trip_quarantine_parole_readmission_cycle() {
    let mut p = proto();
    open_job(&mut p, 1, 0);

    // Honest first reply: spends the job's one token and is admitted.
    reply(&mut p, 1, PEER, 10);
    assert_eq!(p.defense.admitted_by(PEER), 1);
    assert_eq!(p.defense.standing(PEER), Standing::Good);

    // Flood copy 1: the bucket is empty — quota trip, score 1.
    let (out, _) = reply(&mut p, 1, PEER, 20);
    assert!(out.is_empty(), "a quota trip below threshold stays local");
    assert_eq!(p.defense.score(PEER), 1);
    assert_eq!(p.defense.standing(PEER), Standing::Probation);

    // Flood copy 2: score 2 crosses the threshold — quarantine, with a
    // timer armed and the misbehavior reported upstream.
    let (out, _) = reply(&mut p, 1, PEER, 30);
    assert_eq!(p.defense.standing(PEER), Standing::Quarantined);
    assert_eq!(p.defense.totals.quarantines, 1);
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Timer {
                kind: TimerKind::Quarantine(PEER),
                ..
            }
        )),
        "no quarantine timer armed: {out:?}"
    );
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Send {
                to: Address::Coordinator,
                msg: ProtoMsg::MisbehaviorReport {
                    peer: PEER,
                    score: 2
                },
            }
        )),
        "no misbehavior report sent: {out:?}"
    );

    // While quarantined, everything from the peer is dropped before any
    // bookkeeping — not even a late/duplicate event.
    let (out, events) = reply(&mut p, 1, PEER, 40);
    assert!(out.is_empty() && events.is_empty());
    assert_eq!(p.defense.totals.quarantine_drops, 1);
    assert_eq!(
        p.defense.admitted_by(PEER),
        1,
        "no admissions in quarantine"
    );

    // The quarantine timer fires: parole, with the parole timer armed.
    let (mut out, mut events) = (Vec::new(), Vec::new());
    p.on_timer(30_030, TimerKind::Quarantine(PEER), &mut out, &mut events);
    assert_eq!(p.defense.standing(PEER), Standing::Parole);
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Timer {
                kind: TimerKind::Parole(PEER),
                ..
            }
        )),
        "no parole timer armed: {out:?}"
    );

    // Fresh job while on parole: the peer is re-admitted, once.
    open_job(&mut p, 2, 31_000);
    let (_, events) = reply(&mut p, 2, PEER, 31_010);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, MeasEvent::ReplyAccepted { .. })),
        "parole reply not re-admitted: {events:?}"
    );
    assert_eq!(p.defense.admitted_by(PEER), 2);

    // The parole timer fires clean: full reinstatement, score forgiven.
    let (mut out, mut events) = (Vec::new(), Vec::new());
    p.on_timer(45_030, TimerKind::Parole(PEER), &mut out, &mut events);
    assert_eq!(p.defense.standing(PEER), Standing::Good);
    assert_eq!(p.defense.score(PEER), 0);
    assert_eq!(p.defense.totals.paroles, 1);

    // Finish job 2 and check the assembled result counts the paroled
    // peer's observation exactly once.
    let (mut out, mut events) = (Vec::new(), Vec::new());
    p.on_message(
        45_100,
        Address::Peer { id: OTHER },
        ProtoMsg::FetchReply {
            job: JobId(2),
            meta: meta(OTHER),
            html: "<html><span>10.00</span></html>".into(),
        },
        &mut out,
        &mut events,
    );
    let proc_done = out.iter().find_map(|o| match o {
        Output::Timer {
            kind: TimerKind::ProcDone(job),
            ..
        } => Some(*job),
        _ => None,
    });
    let job = proc_done.expect("both replies in: assembly scheduled");
    let (mut out, mut events) = (Vec::new(), Vec::new());
    p.on_timer(45_200, TimerKind::ProcDone(job), &mut out, &mut events);
    let check = out
        .iter()
        .find_map(|o| match o {
            Output::Send {
                msg: ProtoMsg::Results { check, .. },
                ..
            } => Some(check.as_ref().clone()),
            _ => None,
        })
        .expect("results streamed to the initiator");
    let from_peer = check
        .observations
        .iter()
        .filter(|o| o.vantage == VantageKind::Ppc && o.vantage_id == PEER)
        .count();
    assert_eq!(from_peer, 1, "paroled peer counted exactly once: {check:?}");
    assert_eq!(check.observations.len(), 3, "initiator + two PPC vantages");
}

/// A transport-duplicated reply from an honest peer is absorbed by the
/// vantage dedup *without* scoring once the quota allows it — dedup and
/// punishment are separate layers.
#[test]
fn honest_duplicate_within_quota_never_scores() {
    let mut p = proto();
    p.defense.set_params(DefenseParams {
        quarantine_threshold: 2,
        replies_per_job: 3,
        ..DefenseParams::default()
    });
    open_job(&mut p, 1, 0);
    reply(&mut p, 1, PEER, 10);
    let (_, events) = reply(&mut p, 1, PEER, 20);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, MeasEvent::ReplyDuplicate)),
        "duplicate not absorbed: {events:?}"
    );
    assert_eq!(p.defense.score(PEER), 0, "dedup must not score");
    assert_eq!(p.defense.admitted_by(PEER), 1);
}
