//! The durability proof for the Database tier (DESIGN.md "Durability &
//! recovery"):
//!
//! * a **crash-point matrix** that re-runs recovery from every WAL
//!   record boundary (and every mid-record byte) and asserts the
//!   reconstructed store equals exactly the durable prefix;
//! * **determinism**: the same schedule produces byte-identical WAL and
//!   snapshot images, at the protocol level and for a whole DES run;
//! * a **regression** for the crash-window path: pre-crash observations
//!   survive a Database crash, and a store torn off with the unflushed
//!   tail is re-stored by the sender's retransmit — zero observation
//!   loss either way;
//! * **proptests**: the record codec round-trips arbitrary records, and
//!   truncated or corrupted tails are cleanly ignored at recovery,
//!   never a panic.

use proptest::collection::vec as arb_vec;
use proptest::prelude::*;
use sheriff_core::coordinator::JobId;
use sheriff_core::db::DbCostModel;
use sheriff_core::durability::{
    decode_records, encode_record, record_boundaries, recover, MemStorage, WalRecord,
};
use sheriff_core::protocol::{Address, DbProto, ProtoMsg, TimerKind};
use sheriff_core::records::{PriceCheck, PriceObservation, VantageKind};
use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
use sheriff_geo::{Country, IpV4};
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::{FaultPlan, SimTime};
use std::collections::BTreeSet;

fn obs(i: u64) -> PriceObservation {
    PriceObservation {
        vantage: match i % 3 {
            0 => VantageKind::Initiator,
            1 => VantageKind::Ipc,
            _ => VantageKind::Ppc,
        },
        vantage_id: i,
        country: Country::ES,
        city: i.is_multiple_of(2).then(|| format!("city-{i}")),
        ip: IpV4(0x0A00_0000 + i as u32),
        raw_text: format!("{i},99 €"),
        currency: "EUR".into(),
        amount: i as f64 + 0.99,
        amount_eur: i as f64 + 0.99,
        low_confidence: i % 5 == 4,
        failed: i % 7 == 6,
    }
}

fn check(job: u64, n: usize) -> PriceCheck {
    PriceCheck {
        job_id: job,
        domain: format!("shop-{}.example", job % 3),
        url: format!("/product/{job}"),
        day: (job % 30) as u32,
        observations: (0..n as u64).map(obs).collect(),
    }
}

/// Drives `n` stores (message + DbDone timer each) through a fresh
/// `DbProto` at the given snapshot cadence and returns the proto.
fn run_stores(n: u64, snapshot_every: usize) -> DbProto {
    let mut proto = DbProto::with_storage(
        DbCostModel::dedicated(),
        Box::new(MemStorage::new()),
        snapshot_every,
    );
    for job in 1..=n {
        let (mut out, mut events) = (Vec::new(), Vec::new());
        proto.on_message(
            job * 100,
            Address::Server { index: 0 },
            ProtoMsg::StoreCheck {
                job: JobId(job),
                check: Box::new(check(job, 3 + (job % 4) as usize)),
            },
            &mut out,
            &mut events,
        );
        proto.on_timer(TimerKind::DbDone(JobId(job)), &mut out, &mut events);
    }
    proto
}

// ---------------------------------------------------------------------
// Crash-point matrix
// ---------------------------------------------------------------------

#[test]
fn recovery_matrix_every_wal_boundary_restores_the_durable_prefix() {
    // A cadence the feed never reaches: the whole history lives in the
    // WAL, so the boundaries enumerate every crash point.
    let proto = run_stores(6, 1_000);
    let wal = proto.wal_bytes();
    let bounds = record_boundaries(&wal);
    assert_eq!(bounds.len(), 7, "6 records plus offset 0");

    for (k, &cut) in bounds.iter().enumerate() {
        // A crash that durably preserved exactly `k` records...
        let storage = MemStorage::with_contents(Vec::new(), wal[..cut].to_vec());
        let recovered = recover(&storage);
        assert_eq!(recovered.records.len(), k, "boundary {k}");
        // ...recovers exactly checks 1..=k, in store order.
        for (i, rec) in recovered.records.iter().enumerate() {
            let job = i as u64 + 1;
            assert_eq!(rec.job, job);
            assert_eq!(rec.vt_ms, job * 100);
            assert_eq!(rec.check, check(job, 3 + (job % 4) as usize));
        }
        // And a DbProto rebooted over those bytes serves the same store.
        let reborn = DbProto::with_storage(
            DbCostModel::dedicated(),
            Box::new(MemStorage::with_contents(Vec::new(), wal[..cut].to_vec())),
            1_000,
        );
        assert_eq!(reborn.database.len(), k);
        let jobs: BTreeSet<u64> = reborn.stored_jobs().map(|j| j.0).collect();
        assert_eq!(jobs, (1..=k as u64).collect::<BTreeSet<u64>>());
    }
}

#[test]
fn recovery_matrix_mid_record_cuts_round_down_to_the_boundary() {
    let proto = run_stores(4, 1_000);
    let wal = proto.wal_bytes();
    let bounds = record_boundaries(&wal);
    for cut in 0..=wal.len() {
        // Number of whole records strictly before the cut.
        let expect = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        let storage = MemStorage::with_contents(Vec::new(), wal[..cut].to_vec());
        let recovered = recover(&storage);
        assert_eq!(recovered.records.len(), expect, "cut at byte {cut}");
    }
}

#[test]
fn recovery_matrix_with_snapshots_spans_both_regions() {
    // Cadence 2 over 5 stores: the durable image is a snapshot of 4
    // records plus a 1-record WAL tail. Every cut of the tail must
    // recover the 4 snapshotted checks plus the surviving tail prefix.
    let proto = run_stores(5, 2);
    let snapshot = proto.snapshot_bytes();
    let wal = proto.wal_bytes();
    assert!(!snapshot.is_empty(), "cadence must have folded the log");
    let bounds = record_boundaries(&wal);
    assert_eq!(bounds.len(), 2, "one tail record");
    for cut in 0..=wal.len() {
        let whole = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        let storage = MemStorage::with_contents(snapshot.clone(), wal[..cut].to_vec());
        let recovered = recover(&storage);
        assert_eq!(recovered.snapshot_records, 4, "cut at {cut}");
        assert_eq!(recovered.records.len(), 4 + whole, "cut at {cut}");
        for (i, rec) in recovered.records.iter().enumerate() {
            assert_eq!(rec.job, i as u64 + 1, "store order survives, cut {cut}");
        }
    }
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

#[test]
fn identical_schedules_write_identical_bytes() {
    let a = run_stores(5, 2);
    let b = run_stores(5, 2);
    assert_eq!(a.wal_bytes(), b.wal_bytes());
    assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
}

fn specs(n: u64) -> Vec<PpcSpec> {
    (0..n)
        .map(|i| PpcSpec {
            peer_id: 100 + i,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: sheriff_market::pricing::Os::Linux,
                browser: sheriff_market::pricing::Browser::Firefox,
            },
            affluence: 0.2,
            logged_in_domains: vec![],
        })
        .collect()
}

/// A full DES run with a Database crash window; returns the durable
/// images plus the completed/stored job sets.
fn des_run(seed: u64, crash: (u64, u64)) -> (Vec<u8>, Vec<u8>, BTreeSet<u64>, BTreeSet<u64>) {
    let world = World::build(&WorldConfig::small(), seed);
    let mut sheriff = PriceSheriff::new(SheriffConfig::fast(seed), world, &specs(2));
    sheriff.install_fault_plan(FaultPlan::new(seed).with_crash(2, crash.0, crash.1));
    sheriff.submit_check(SimTime::from_millis(0), 100, "amazon.com", ProductId(0));
    sheriff.submit_check(SimTime::from_millis(4_000), 101, "chegg.com", ProductId(1));
    sheriff.run_until(SimTime::from_mins(3));
    let completed: BTreeSet<u64> = sheriff.completed().iter().map(|c| c.check.job_id).collect();
    let stored: BTreeSet<u64> = sheriff.database_checks().iter().map(|c| c.job_id).collect();
    (
        sheriff.db_wal_bytes().expect("v2 has a database"),
        sheriff.db_snapshot_bytes().expect("v2 has a database"),
        completed,
        stored,
    )
}

#[test]
fn same_seed_same_crash_window_means_identical_wal_bytes() {
    let a = des_run(7, (3_500, 5_200));
    let b = des_run(7, (3_500, 5_200));
    assert_eq!(a.0, b.0, "WAL bytes diverged across replays");
    assert_eq!(a.1, b.1, "snapshot bytes diverged across replays");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

// ---------------------------------------------------------------------
// Crash-window regressions (the `DbProto::on_restart` satellite)
// ---------------------------------------------------------------------

#[test]
fn pre_crash_observations_survive_a_database_crash_window() {
    // Check 1 is stored and acked (~2.8s) before the DB dies at 3.5s;
    // check 2 runs entirely after the restart. Both must complete and
    // both must sit in the post-restart store: the crash destroyed only
    // volatile state, never an acknowledged observation.
    let world = World::build(&WorldConfig::small(), 13);
    let mut sheriff = PriceSheriff::new(SheriffConfig::fast(13), world, &specs(2));
    sheriff.install_fault_plan(FaultPlan::new(13).with_crash(2, 3_500, 5_200));
    sheriff.submit_check(SimTime::from_millis(0), 100, "amazon.com", ProductId(0));
    sheriff.submit_check(SimTime::from_millis(4_000), 101, "chegg.com", ProductId(1));
    sheriff.run_until(SimTime::from_mins(3));

    let done = sheriff.completed();
    assert_eq!(done.len(), 2, "both checks complete despite the crash");
    let stored = sheriff.database_checks();
    let stored_jobs: BTreeSet<u64> = stored.iter().map(|c| c.job_id).collect();
    let done_jobs: BTreeSet<u64> = done.iter().map(|c| c.check.job_id).collect();
    assert_eq!(stored_jobs, done_jobs, "zero observation loss");
    // The pre-crash check's observations came back byte-for-byte.
    let pre = done
        .iter()
        .find(|c| c.check.domain == "amazon.com")
        .expect("first check completed");
    let recovered = stored
        .iter()
        .find(|c| c.job_id == pre.check.job_id)
        .expect("first check recovered");
    assert_eq!(recovered.observations, pre.check.observations);

    let snap = sheriff.telemetry().snapshot();
    assert_eq!(snap.counters["faults.node_restarts"], 1);
    assert!(
        snap.counters["db.recovered_records"] >= 1,
        "restart must have replayed the durable record"
    );
}

#[test]
fn store_torn_off_by_the_crash_is_recovered_by_retransmit() {
    // The crash window covers the whole interval where the StoreCheck
    // can land (replies arrive well before the 2s deadline, so the store
    // goes out around the one-second mark): the delivery is either eaten
    // by the dead node or its append dies with the unflushed tail. The
    // reliable channel keeps retransmitting past the restart at 2.6s,
    // and the re-store must land: still zero loss.
    let world = World::build(&WorldConfig::small(), 17);
    let mut sheriff = PriceSheriff::new(SheriffConfig::fast(17), world, &specs(1));
    sheriff.install_fault_plan(FaultPlan::new(17).with_crash(2, 300, 2_600));
    sheriff.submit_check(SimTime::from_millis(0), 100, "amazon.com", ProductId(0));
    sheriff.run_until(SimTime::from_mins(3));

    let done = sheriff.completed();
    assert_eq!(
        done.len(),
        1,
        "the check completes despite the mid-store crash"
    );
    let stored = sheriff.database_checks();
    assert_eq!(stored.len(), 1);
    assert_eq!(stored[0].job_id, done[0].check.job_id);
    assert_eq!(stored[0].observations, done[0].check.observations);
    let snap = sheriff.telemetry().snapshot();
    assert_eq!(snap.counters["faults.node_restarts"], 1);
}

// ---------------------------------------------------------------------
// Proptests: codec totality
// ---------------------------------------------------------------------

fn arb_observation() -> impl Strategy<Value = PriceObservation> {
    let ident = (0u8..3, any::<u64>(), 0usize..Country::count());
    let text = (any::<bool>(), "\\PC{0,12}", "\\PC{0,20}", "[A-Z]{0,4}");
    // Finite floats only: NaN round-trips bit-exactly through the codec
    // but fails the PartialEq the assertions rely on.
    let nums = (
        any::<u32>(),
        -1.0e12f64..1.0e12,
        -1.0e12f64..1.0e12,
        (any::<bool>(), any::<bool>()),
    );
    (ident, text, nums).prop_map(
        |((vk, vantage_id, c), (has_city, city, raw_text, currency), (ip, a, e, (low, failed)))| {
            PriceObservation {
                vantage: match vk {
                    0 => VantageKind::Initiator,
                    1 => VantageKind::Ipc,
                    _ => VantageKind::Ppc,
                },
                vantage_id,
                country: Country::all().nth(c).expect("index drawn in range"),
                city: has_city.then_some(city),
                ip: IpV4(ip),
                raw_text,
                currency,
                amount: a,
                amount_eur: e,
                low_confidence: low,
                failed,
            }
        },
    )
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u32>()),
        "\\PC{0,24}",
        "\\PC{0,24}",
        arb_vec(arb_observation(), 0..5),
    )
        .prop_map(|((vt_ms, job, day), domain, url, observations)| WalRecord {
            vt_ms,
            job,
            check: PriceCheck {
                job_id: job,
                domain,
                url,
                day,
                observations,
            },
        })
}

proptest! {
    #[test]
    fn prop_codec_roundtrips_every_record(rec in arb_record()) {
        let bytes = encode_record(rec.vt_ms, rec.job, &rec.check);
        let (decoded, consumed) = decode_records(&bytes);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, vec![rec]);
    }

    #[test]
    fn prop_truncated_tail_is_ignored_cleanly(
        recs in arb_vec(arb_record(), 1..4),
        keep_num in 0u32..=1_000,
    ) {
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for rec in &recs {
            bytes.extend_from_slice(&encode_record(rec.vt_ms, rec.job, &rec.check));
            ends.push(bytes.len());
        }
        let cut = (keep_num as usize * bytes.len()) / 1_000;
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        // Recovery over the cut bytes: no panic, exactly the whole-record
        // prefix (records share no jobs only by luck, so count via the
        // raw decoder, then through `recover` with dedup semantics).
        let (decoded, consumed) = decode_records(&bytes[..cut]);
        prop_assert_eq!(decoded.len(), whole);
        prop_assert_eq!(consumed, ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0));
        let storage = MemStorage::with_contents(Vec::new(), bytes[..cut].to_vec());
        let recovered = recover(&storage);
        prop_assert!(recovered.records.len() <= whole);
    }

    #[test]
    fn prop_corrupted_tail_never_panics_and_never_invents_records(
        recs in arb_vec(arb_record(), 1..4),
        flip_num in 0u32..1_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = Vec::new();
        for rec in &recs {
            bytes.extend_from_slice(&encode_record(rec.vt_ms, rec.job, &rec.check));
        }
        let flip = (flip_num as usize * (bytes.len() - 1)) / 1_000;
        bytes[flip] ^= xor;
        let (decoded, consumed) = decode_records(&bytes);
        prop_assert!(decoded.len() <= recs.len());
        prop_assert!(consumed <= bytes.len());
        // Whatever survived is a prefix of the original stream.
        for (d, orig) in decoded.iter().zip(recs.iter()) {
            prop_assert_eq!(d, orig);
        }
    }
}
