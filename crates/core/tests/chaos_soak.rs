//! Chaos soak: seed-deterministic fault schedules (drops, duplicates,
//! delays, a Measurement-server crash, a Database crash, an IPC
//! partition) over the full DES deployment. Under every schedule the
//! self-healing layer must deliver eventual completion with zero leaked
//! Coordinator jobs, no duplicate observations, and zero observation
//! loss across the Database crash/restart — and an all-zero plan must
//! be a strict no-op.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated) when set, so CI can
//! pin its recorded schedule and local runs can explore.

use sheriff_core::records::VantageKind;
use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
use sheriff_geo::Country;
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::{FaultPlan, LinkFaults, SimTime};
use std::collections::HashSet;

const DEFAULT_SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS: u64 list"))
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn specs(n: u64) -> Vec<PpcSpec> {
    (0..n)
        .map(|i| PpcSpec {
            peer_id: 100 + i,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: sheriff_market::pricing::Os::Linux,
                browser: sheriff_market::pricing::Browser::Firefox,
            },
            affluence: 0.2,
            logged_in_domains: vec![],
        })
        .collect()
}

/// Fast config tuned so the crash window actually exercises §10.3
/// recovery: heartbeats are frequent, the Coordinator's patience is
/// shorter than the crash, and the sweep requeues the stranded jobs.
fn chaos_cfg(seed: u64) -> SheriffConfig {
    let mut cfg = SheriffConfig::fast(seed);
    cfg.heartbeat_every_ms = 600;
    cfg.heartbeat_timeout_ms = 2_000;
    cfg
}

/// The chaos schedule for one seed, phrased against the DES node layout
/// `[coordinator=0, aggregator=1, db=2, servers 3..5, ipcs 5..35, ppcs…]`
/// of the fast (v2, two-server) configuration.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_default_link(LinkFaults {
            drop: 0.03,
            duplicate: 0.05,
            delay: 0.08,
            delay_ms: (50, 400),
            ..LinkFaults::NONE
        })
        // Measurement server 0 is dead from 400ms to 3s: longer than the
        // Coordinator's 2s heartbeat patience, so its jobs get requeued.
        .with_crash(3, 400, 3_000)
        // The Database dies across the window where the first StoreChecks
        // land: un-barriered WAL bytes are torn off, acked stores must
        // survive, and the reliable channel re-stores the rest.
        .with_crash(2, 900, 2_600)
        // Three IPC vantages drop off the network for 700ms.
        .with_partition(vec![5, 6, 7], 200, 900)
}

#[test]
fn chaos_soak_completes_without_leaks_or_duplicates() {
    let mut total_requeued = 0u64;
    for seed in seeds() {
        let world = World::build(&WorldConfig::small(), seed);
        let mut sheriff = PriceSheriff::new(chaos_cfg(seed), world, &specs(4));
        sheriff.install_fault_plan(chaos_plan(seed));
        // An installed all-zero Byzantine plan must not perturb the
        // chaos schedule: the decide() hook runs on every dispatch and
        // every assertion below must hold exactly as without it.
        sheriff.install_byzantine_plan(sheriff_netsim::ByzantinePlan::new(seed));
        let domains = ["amazon.com", "steampowered.com", "chegg.com", "amazon.com"];
        for (i, domain) in domains.iter().enumerate() {
            sheriff.submit_check(
                SimTime::from_millis(i as u64 * 150),
                100 + i as u64,
                domain,
                ProductId(i as u32 % 4),
            );
        }
        sheriff.run_until(SimTime::from_mins(5));

        // Eventual completion: every submitted check finishes.
        let done = sheriff.completed();
        assert_eq!(done.len(), domains.len(), "seed {seed}: lost checks");

        // No duplicate observations inside any check: transport
        // duplicates must be absorbed by the dedup layers.
        for c in &done {
            let mut seen: HashSet<(VantageKind, u64)> = HashSet::new();
            for o in &c.check.observations {
                assert!(
                    seen.insert((o.vantage, o.vantage_id)),
                    "seed {seed}: duplicate observation {:?}/{} in job {}",
                    o.vantage,
                    o.vantage_id,
                    c.check.job_id
                );
            }
        }

        // Zero leaked jobs in the Coordinator's ledger.
        assert_eq!(
            sheriff.pending_jobs_per_server(),
            vec![0, 0],
            "seed {seed}: leaked jobs"
        );

        // The schedule really did bite.
        let stats = sheriff.fault_stats().expect("plan installed");
        assert!(
            stats.dropped + stats.duplicated + stats.partition_drops > 0,
            "seed {seed}: fault plan never fired: {stats:?}"
        );
        let snap = sheriff.telemetry().snapshot();
        assert_eq!(snap.counters["faults.node_restarts"], 2, "seed {seed}");

        // Zero observation loss across the Database crash/restart: every
        // completed job's check sits in the (recovered) store, exactly
        // once per job. Superset — not equality — is the invariant: the
        // §10.3 requeue path mints a fresh job id for a written-off
        // server's work, so the store may also hold the abandoned
        // original alongside the requeued job that completed.
        let stored = sheriff.database_checks();
        let stored_jobs: std::collections::BTreeSet<u64> =
            stored.iter().map(|c| c.job_id).collect();
        let done_jobs: std::collections::BTreeSet<u64> =
            done.iter().map(|c| c.check.job_id).collect();
        assert!(
            done_jobs.is_subset(&stored_jobs),
            "seed {seed}: observation loss: completed {done_jobs:?} vs stored {stored_jobs:?}"
        );
        assert_eq!(
            stored.len(),
            stored_jobs.len(),
            "seed {seed}: a job was stored twice"
        );
        assert!(
            snap.counters["db.wal_appends"] >= done.len() as u64,
            "seed {seed}: every stored job appends at least one WAL record"
        );

        total_requeued += snap
            .counters
            .get("coordinator.jobs_requeued")
            .copied()
            .unwrap_or(0);
    }
    // Across the soak the crash-recovery path must actually trigger.
    assert!(
        total_requeued >= 1,
        "no seed ever exercised the requeue path"
    );
}

#[test]
fn all_zero_fault_plan_is_a_strict_noop() {
    let run = |plan: Option<FaultPlan>| {
        let world = World::build(&WorldConfig::small(), 101);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(101), world, &specs(3));
        if let Some(plan) = plan {
            sheriff.install_fault_plan(plan);
        }
        for i in 0..3u64 {
            sheriff.submit_check(
                SimTime::from_millis(i * 200),
                100 + i,
                "amazon.com",
                ProductId(i as u32),
            );
        }
        sheriff.run_until(SimTime::from_mins(2));
        (
            format!("{:?}", sheriff.completed()),
            format!("{:?}", sheriff.telemetry().snapshot().counters),
            sheriff.monitoring_panel(),
        )
    };
    let baseline = run(None);
    let with_plan = run(Some(FaultPlan::new(999)));
    assert_eq!(baseline.0, with_plan.0, "completed checks diverged");
    assert_eq!(baseline.1, with_plan.1, "telemetry counters diverged");
    assert_eq!(baseline.2, with_plan.2, "monitoring panel diverged");
}
