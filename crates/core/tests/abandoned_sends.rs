//! Reliable-channel give-ups must release the bookkeeping pinned on the
//! abandoned send — regressions for the two leaks `sheriff-model`'s
//! quiescence invariant flagged in the live tree:
//!
//! * the **Coordinator** pinned a job origin (and the server's
//!   pending-job charge) forever when the `PpcList`/`CoordAssign` for an
//!   admitted job could never be delivered;
//! * a **Measurement server** pinned a job entry forever when its
//!   `StoreCheck` could never reach the Database server (the `DbAck`
//!   that finishes the job can then never arrive).
//!
//! Also the SL006 regression anchor: proptests that `TimerKind::token` /
//! `from_token` round-trip for every variant and that distinct
//! `(kind, scope)` pairs never collide in the u64 token space.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sheriff_core::coordinator::{Coordinator, JobId, PeerId};
use sheriff_core::db::DbCostModel;
use sheriff_core::protocol::{
    Address, CoordinatorProto, DefenseParams, MeasurementParams, MeasurementProto, Output,
    ProtoMsg, TimerKind,
};
use sheriff_core::records::{PriceCheck, PriceObservation, VantageKind};
use sheriff_core::whitelist::Whitelist;
use sheriff_currency::FixedRates;
use sheriff_geo::{Country, IpV4};

fn coordinator_proto() -> CoordinatorProto {
    let mut coordinator = Coordinator::new(Whitelist::with_domains(["amazon.com"]));
    coordinator.register_server("ms-0", 80, 0);
    CoordinatorProto::new(coordinator, 0)
}

#[test]
fn coordinator_releases_origin_when_assignment_is_abandoned() {
    let mut proto = coordinator_proto();
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    proto.on_message(
        0,
        Address::Peer { id: 1 },
        ProtoMsg::CoordRequest {
            url: "https://amazon.com/product/1".into(),
            peer: PeerId(1),
            local_tag: 42,
        },
        &mut rng,
        &mut out,
    );
    let assigned = out.iter().find_map(|o| match o {
        Output::Send {
            msg: ProtoMsg::CoordAssign { job, .. },
            ..
        } => Some(*job),
        _ => None,
    });
    let job = assigned.expect("whitelisted request with an online server is admitted");
    assert_eq!(proto.open_origins(), 1);
    assert_eq!(proto.coordinator.pending_jobs(0), 1);

    // The reliable channel exhausted its retransmit budget for the
    // PpcList: the job can never be worked, so the origin and the
    // server's charge are both released.
    proto.on_send_abandoned(&ProtoMsg::PpcList {
        job,
        ppcs: Vec::new(),
    });
    assert_eq!(
        proto.open_origins(),
        0,
        "abandoned assignment must not leak"
    );
    assert_eq!(proto.coordinator.pending_jobs(0), 0);

    // Irrelevant payloads release nothing (and a second release is a
    // no-op — `job_complete` is idempotent).
    proto.on_send_abandoned(&ProtoMsg::JobComplete { job });
    proto.on_send_abandoned(&ProtoMsg::CoordAssign {
        job,
        server: Address::Server { index: 0 },
        local_tag: 42,
    });
    assert_eq!(proto.open_origins(), 0);
}

fn measurement_proto() -> MeasurementProto {
    MeasurementProto::new(MeasurementParams {
        index: 0,
        ipcs: vec![],
        rates: FixedRates::paper_era(),
        target_currency: "EUR".into(),
        proc_per_reply_ms: 1.0,
        context_switch_alpha: 0.0,
        job_deadline_ms: 2_000,
        db_cost: DbCostModel::dedicated(),
        integrated_db: false,
        heartbeat_every_ms: 60_000,
        ipc_countries: vec![],
        defense: DefenseParams::default(),
    })
}

#[test]
fn measurement_finishes_job_when_store_check_is_abandoned() {
    let mut proto = measurement_proto();
    let (mut out, mut events) = (Vec::new(), Vec::new());
    // Half-open the job (the submit half is irrelevant here: any table
    // entry pins the DbAck wait once its StoreCheck is in flight).
    proto.on_message(
        0,
        Address::Coordinator,
        ProtoMsg::PpcList {
            job: JobId(1),
            ppcs: vec![],
        },
        &mut out,
        &mut events,
    );
    assert_eq!(proto.open_jobs(), 1);

    let check = PriceCheck {
        job_id: 1,
        domain: "amazon.com".into(),
        url: "amazon.com/product/1".into(),
        day: 0,
        observations: vec![PriceObservation {
            vantage: VantageKind::Initiator,
            vantage_id: 9,
            country: Country::ES,
            city: None,
            ip: IpV4(0x0A00_0001),
            raw_text: "EUR 10.00".into(),
            currency: "EUR".into(),
            amount: 10.0,
            amount_eur: 10.0,
            low_confidence: false,
            failed: false,
        }],
    };
    let (mut out, mut events) = (Vec::new(), Vec::new());
    proto.on_send_abandoned(
        5_000,
        &ProtoMsg::StoreCheck {
            job: JobId(1),
            check: Box::new(check),
        },
        &mut out,
        &mut events,
    );
    assert_eq!(proto.open_jobs(), 0, "abandoned StoreCheck must not leak");
    assert!(
        out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: ProtoMsg::JobComplete { job },
                ..
            } if job.0 == 1
        )),
        "the job is still released upstream"
    );

    // A give-up for a job already finished (late duplicate) is a no-op.
    let (mut out2, mut events2) = (Vec::new(), Vec::new());
    proto.on_send_abandoned(
        6_000,
        &ProtoMsg::JobComplete { job: JobId(1) },
        &mut out2,
        &mut events2,
    );
    assert_eq!(proto.open_jobs(), 0);
    assert!(out2.is_empty());
}

// ---------------------------------------------------------------------
// SL006 regression anchor: token packing is injective.
// ---------------------------------------------------------------------

/// Scopes that cannot overflow `scope * 8 + residue`.
const MAX_SCOPE: u64 = (u64::MAX - 7) / 8;

fn arb_kind() -> impl Strategy<Value = TimerKind> {
    (0u8..8u8, 0u64..=MAX_SCOPE).prop_map(|(variant, scope)| match variant {
        0 => TimerKind::JobDeadline(JobId(scope)),
        1 => TimerKind::ProcDone(JobId(scope)),
        2 => TimerKind::DbDone(JobId(scope)),
        3 => TimerKind::Heartbeat,
        4 => TimerKind::Retransmit(scope),
        5 => TimerKind::CoordSweep,
        6 => TimerKind::Quarantine(scope),
        _ => TimerKind::Parole(scope),
    })
}

proptest! {
    /// Every variant survives `token` → `from_token` exactly.
    #[test]
    fn timer_tokens_round_trip(kind in arb_kind()) {
        prop_assert_eq!(TimerKind::from_token(kind.token()), Some(kind));
    }

    /// Distinct `(kind, scope)` pairs never collide in the token space —
    /// in particular no scoped token ever lands on the bare
    /// `Heartbeat`/`CoordSweep` tokens.
    #[test]
    fn distinct_kinds_never_collide(a in arb_kind(), b in arb_kind()) {
        if a != b {
            prop_assert_ne!(a.token(), b.token());
        }
    }
}
