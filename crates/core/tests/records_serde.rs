//! Serialization round-trips: the records the Database server stores (and
//! the experiment binaries dump as JSON) must survive serde exactly — the
//! deployed system persisted everything in MySQL and shipped results to the
//! add-on as JSON.

use sheriff_core::records::{PriceCheck, PriceObservation, VantageKind};
use sheriff_geo::{Country, IpV4};
use sheriff_html::tagspath::{PathStep, TagsPath};

fn sample_check() -> PriceCheck {
    PriceCheck {
        job_id: 42,
        domain: "steampowered.com".into(),
        url: "steampowered.com/product/3".into(),
        day: 7,
        observations: vec![
            PriceObservation {
                vantage: VantageKind::Initiator,
                vantage_id: 100,
                country: Country::ES,
                city: Some("Madrid".into()),
                ip: IpV4(0x0a00_0001),
                raw_text: "€18,59".into(),
                currency: "EUR".into(),
                amount: 18.59,
                amount_eur: 18.59,
                low_confidence: false,
                failed: false,
            },
            PriceObservation {
                vantage: VantageKind::Ipc,
                vantage_id: 6,
                country: Country::US,
                city: Some("Tennessee".into()),
                ip: IpV4(0x0c00_0009),
                raw_text: "$11.99".into(),
                currency: "USD".into(),
                amount: 11.99,
                amount_eur: 10.59,
                low_confidence: true,
                failed: false,
            },
            PriceObservation {
                vantage: VantageKind::Ppc,
                vantage_id: 101,
                country: Country::ES,
                city: None,
                ip: IpV4(0x0a00_0002),
                raw_text: String::new(),
                currency: String::new(),
                amount: 0.0,
                amount_eur: 0.0,
                low_confidence: false,
                failed: true,
            },
        ],
    }
}

#[test]
fn price_check_json_roundtrip_preserves_analysis_results() {
    let check = sample_check();
    let json = serde_json::to_string_pretty(&check).expect("serializes");
    let back: PriceCheck = serde_json::from_str(&json).expect("deserializes");

    assert_eq!(back.job_id, check.job_id);
    assert_eq!(back.domain, check.domain);
    assert_eq!(back.observations.len(), 3);
    // The analysis helpers produce identical answers on the round-tripped
    // record.
    assert_eq!(back.min_eur(), check.min_eur());
    assert_eq!(back.max_eur(), check.max_eur());
    assert_eq!(back.relative_spread(), check.relative_spread());
    assert_eq!(back.cheapest_country(), check.cheapest_country());
    assert_eq!(
        back.within_country_spread(Country::ES),
        check.within_country_spread(Country::ES)
    );
    // Confidence filtering survives: the low-confidence USD row is still
    // excluded from spreads.
    assert_eq!(back.confident().count(), 1);
    assert_eq!(back.valid().count(), 2);
}

#[test]
fn tags_path_json_roundtrip() {
    let path = TagsPath {
        steps: vec![
            PathStep {
                name: "html".into(),
                class: None,
                id_attr: None,
                nth_of_name: 0,
            },
            PathStep {
                name: "body".into(),
                class: None,
                id_attr: None,
                nth_of_name: 0,
            },
            PathStep {
                name: "span".into(),
                class: Some("price".into()),
                id_attr: Some("main-price".into()),
                nth_of_name: 2,
            },
        ],
    };
    let json = serde_json::to_string(&path).expect("serializes");
    let back: TagsPath = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, path);
    assert_eq!(back.depth(), 3);
}

#[test]
fn country_and_ip_serialize_compactly() {
    // These appear in every observation row; encoding must be stable.
    let json = serde_json::to_string(&Country::ES).expect("country");
    let back: Country = serde_json::from_str(&json).expect("country back");
    assert_eq!(back, Country::ES);

    let ip = IpV4(0x0a01_0203);
    let json = serde_json::to_string(&ip).expect("ip");
    let back: IpV4 = serde_json::from_str(&json).expect("ip back");
    assert_eq!(back, ip);
}
