//! Failure injection: the system must degrade gracefully when the world
//! misbehaves — CAPTCHAs, straggler proxies cut by the deadline, unknown
//! products, and rejected domains under load.

use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
use sheriff_geo::Country;
use sheriff_market::bot::BotDetector;
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::SimTime;

fn specs(n: u64) -> Vec<PpcSpec> {
    (0..n)
        .map(|i| PpcSpec {
            peer_id: 100 + i,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: Os::Linux,
                browser: Browser::Firefox,
            },
            affluence: 0.2,
            logged_in_domains: vec![],
        })
        .collect()
}

#[test]
fn captcha_blocked_ipcs_yield_failed_observations_not_hangs() {
    // Arm an aggressive bot detector on the target: the 30 IPC fetches of
    // each check hammer it from fixed IPs, so repeat checks trip CAPTCHAs.
    let mut world = World::build(&WorldConfig::small(), 61);
    world.retailer_mut("steampowered.com").expect("domain").bot =
        Some(BotDetector::new(600_000, 2));

    // Six distinct initiators and no PPC fan-out: every residential IP is
    // hit once, while the 30 fixed-IP IPCs are hit once per check and blow
    // through the threshold from the third check on (§3.2: "The IPCs are
    // more prone to detection").
    let mut cfg = SheriffConfig::fast(61);
    cfg.ppc_per_request = 0;
    let mut sheriff = PriceSheriff::new(cfg, world, &specs(6));
    for i in 0..6u64 {
        sheriff.submit_check(
            SimTime::from_millis(i * 500),
            100 + i,
            "steampowered.com",
            ProductId(0),
        );
    }
    sheriff.run_until(SimTime::from_mins(5));
    let done = sheriff.completed();
    assert_eq!(done.len(), 6, "all checks complete (initiators never trip)");
    // Proxy-side CAPTCHAs surface as failed observations, never as prices.
    let failed_total: usize = done
        .iter()
        .map(|c| c.check.observations.iter().filter(|o| o.failed).count())
        .sum();
    assert!(failed_total > 0, "bot detector never fired on proxies");
    for c in &done {
        for o in c.check.observations.iter().filter(|o| o.failed) {
            assert_eq!(o.amount_eur, 0.0);
        }
    }
    // And — crucially — aborted checks release their jobs: nothing leaks
    // in the Coordinator's pending counters.
    assert_eq!(
        sheriff.pending_jobs_per_server(),
        vec![0; sheriff.pending_jobs_per_server().len()],
        "leaked jobs"
    );
}

#[test]
fn straggler_proxies_are_cut_by_the_deadline() {
    let world = World::build(&WorldConfig::small(), 67);
    let mut cfg = SheriffConfig::fast(67);
    // Overloads dominate and exceed the job deadline → the job must
    // assemble with whatever arrived (§10.3's corrective path).
    cfg.ipc_overload_prob = 0.7;
    cfg.ipc_overload_ms = 60_000;
    cfg.fetch_kill_ms = 60_000;
    cfg.job_deadline_ms = 800;
    let mut sheriff = PriceSheriff::new(cfg, world, &specs(3));
    sheriff.submit_check(SimTime::ZERO, 100, "amazon.com", ProductId(0));
    sheriff.run_until(SimTime::from_mins(3));
    let done = sheriff.completed();
    assert_eq!(done.len(), 1, "deadline assembly failed");
    let obs = done[0].check.observations.len();
    assert!(obs >= 2, "even a degraded check has initiator + fast peers");
    assert!(
        obs < 31,
        "with 70% overload some of the 30 IPCs must miss the deadline (got {obs})"
    );
}

#[test]
fn unknown_product_checks_do_not_wedge_the_system() {
    let world = World::build(&WorldConfig::small(), 71);
    let mut sheriff = PriceSheriff::new(SheriffConfig::fast(71), world, &specs(2));
    // Product 999 does not exist; the check can never complete, but the
    // system must keep serving subsequent valid checks.
    sheriff.submit_check(SimTime::ZERO, 100, "amazon.com", ProductId(999));
    sheriff.submit_check(SimTime::from_secs(1), 101, "amazon.com", ProductId(1));
    sheriff.run_until(SimTime::from_mins(5));
    let done = sheriff.completed();
    assert_eq!(
        done.len(),
        1,
        "valid check must complete despite the poison one"
    );
    assert!(done[0].check.url.ends_with("/1"));
    // The poisoned job must be *reaped*, not merely tolerated: the
    // initiator's abort releases it at the Coordinator, and the
    // Measurement server reaps its half-open entry at the deadline.
    assert_eq!(
        sheriff.pending_jobs_per_server(),
        vec![0, 0],
        "poisoned job leaked in the Coordinator ledger"
    );
    let snap = sheriff.telemetry().snapshot();
    assert!(
        snap.counters["measurement.orphans_reaped"] >= 1,
        "half-open job entry never reaped on the Measurement server"
    );
}

#[test]
fn rejected_domains_under_load_never_leak_jobs() {
    let world = World::build(&WorldConfig::small(), 73);
    let mut sheriff = PriceSheriff::new(SheriffConfig::fast(73), world, &specs(2));
    for i in 0..10u64 {
        sheriff.submit_check(
            SimTime::from_millis(i * 100),
            100,
            "definitely-not-whitelisted.example",
            ProductId(0),
        );
    }
    sheriff.submit_check(SimTime::from_secs(2), 101, "chegg.com", ProductId(0));
    sheriff.run_until(SimTime::from_mins(3));
    let done = sheriff.completed();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].check.domain, "chegg.com");
    // The Coordinator's ledger shows no stuck jobs.
    assert_eq!(
        sheriff.pending_jobs_per_server(),
        vec![0, 0],
        "stuck jobs in the Coordinator ledger"
    );
}

#[test]
fn zero_peer_system_still_answers_with_ipcs_only() {
    // A brand-new deployment with one lonely user and no other peers in
    // their location must still produce the 30-IPC comparison.
    let world = World::build(&WorldConfig::small(), 79);
    let mut sheriff = PriceSheriff::new(SheriffConfig::fast(79), world, &specs(1));
    sheriff.submit_check(SimTime::ZERO, 100, "abercrombie.com", ProductId(0));
    sheriff.run_until(SimTime::from_mins(3));
    let done = sheriff.completed();
    assert_eq!(done.len(), 1);
    let ppc_obs = done[0]
        .check
        .observations
        .iter()
        .filter(|o| o.vantage == sheriff_core::records::VantageKind::Ppc)
        .count();
    assert_eq!(ppc_obs, 0, "no peers exist to ask");
    assert!(
        done[0].check.observations.len() >= 31,
        "initiator + 30 IPCs"
    );
}
