//! Byzantine soak: a seed-deterministic misbehaving peer (price
//! equivocation on every price-bearing send plus a reply flood) runs
//! inside the full DES deployment. Under every seed the defense layer
//! must (a) let every honest check complete, (b) admit **zero**
//! observations from the Byzantine peer (bounded pollution), (c) walk
//! the quarantine → parole → reinstatement ladder, and (d) keep the
//! registry counters and the registry-free ledgers in lockstep — and an
//! all-zero plan must be a strict no-op.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated) when set, matching
//! the chaos soak's convention.

use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
use sheriff_geo::Country;
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::{ByzProfile, ByzantinePlan, FaultPlan, LinkFaults, SimTime};

const DEFAULT_SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

/// Node index of the first PPC under the fast (v2, two-server) layout
/// `[coordinator 0, aggregator 1, db 2, servers 3..5, ipcs 5..35, ppcs…]`.
const FIRST_PPC_NODE: usize = 35;

/// The misbehaving peer (first PPC).
const BYZ_PEER: u64 = 100;

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS: u64 list"))
            .collect(),
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn specs(n: u64) -> Vec<PpcSpec> {
    (0..n)
        .map(|i| PpcSpec {
            peer_id: 100 + i,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: sheriff_market::pricing::Os::Linux,
                browser: sheriff_market::pricing::Browser::Firefox,
            },
            affluence: 0.2,
            logged_in_domains: vec![],
        })
        .collect()
}

/// Fast config with the quarantine threshold lowered so one flooded job
/// (+2 plausibility, +1 +1 quota trips) trips it deterministically.
fn byz_cfg(seed: u64) -> SheriffConfig {
    let mut cfg = SheriffConfig::fast(seed);
    cfg.defense.quarantine_threshold = 4;
    cfg
}

/// Peer 100 equivocates every price-bearing send and floods four junk
/// copies alongside each message.
fn byz_plan(seed: u64) -> ByzantinePlan {
    ByzantinePlan::new(seed).with_profile(
        FIRST_PPC_NODE,
        ByzProfile {
            equivocate: 1.0,
            flood_copies: 4,
            ..ByzProfile::HONEST
        },
    )
}

/// Runs one seeded deployment: three honest checks up front, then the
/// Byzantine peer tries a check of its own once quarantine has landed.
fn run_seed(seed: u64, faults: Option<FaultPlan>) -> PriceSheriff {
    let world = World::build(&WorldConfig::small(), seed);
    let mut sheriff = PriceSheriff::new(byz_cfg(seed), world, &specs(4));
    sheriff.install_byzantine_plan(byz_plan(seed));
    if let Some(plan) = faults {
        sheriff.install_fault_plan(plan);
    }
    let domains = ["amazon.com", "steampowered.com", "chegg.com"];
    for (i, domain) in domains.iter().enumerate() {
        sheriff.submit_check(
            SimTime::from_millis(i as u64 * 150),
            101 + i as u64,
            domain,
            ProductId(i as u32 % 4),
        );
    }
    // By 5s the flood on the first job has tripped quarantine at a
    // Measurement server and the MisbehaviorReport has reached the
    // Coordinator: this request must bounce off the quarantine gate.
    sheriff.submit_check(
        SimTime::from_millis(5_000),
        BYZ_PEER,
        "amazon.com",
        ProductId(0),
    );
    // Long enough for quarantine (30s) + parole (15s) to elapse.
    sheriff.run_until(SimTime::from_mins(2));
    sheriff
}

#[test]
fn byzantine_soak_quarantines_the_liar_and_admits_nothing_from_it() {
    for seed in seeds() {
        let sheriff = run_seed(seed, None);

        // (a) Every honest check completes despite the misbehaving
        // vantage; the Byzantine peer's own request does not.
        let done = sheriff.completed();
        assert_eq!(done.len(), 3, "seed {seed}: honest checks lost");
        assert!(
            done.iter().all(|c| c.check.observations.iter().all(|o| {
                o.vantage != sheriff_core::records::VantageKind::Ppc || o.vantage_id != BYZ_PEER
            })),
            "seed {seed}: a Byzantine observation reached a completed check"
        );
        assert!(
            sheriff
                .rejections()
                .iter()
                .any(|(peer, _, reason)| *peer == BYZ_PEER && reason == "quarantined"),
            "seed {seed}: the quarantined peer's own request was not bounced"
        );

        // (b) Bounded pollution — here exactly zero: every equivocated
        // reply skews the price far beyond the plausibility band.
        assert_eq!(
            sheriff.admitted_from_peer(BYZ_PEER),
            0,
            "seed {seed}: pollution admitted from the Byzantine peer"
        );

        // (c) The defense ladder actually walked: plausibility rejects,
        // quota trips, quarantine at a server *and* at the Coordinator,
        // and — since the misbehavior stops once jobs drain — every
        // quarantine ends in a clean parole.
        let totals = sheriff.defense_totals();
        assert!(totals.validation_rejects >= 1, "seed {seed}: {totals:?}");
        assert!(totals.quota_trips >= 2, "seed {seed}: {totals:?}");
        assert!(totals.quarantines >= 2, "seed {seed}: {totals:?}");
        assert!(totals.quarantine_drops >= 1, "seed {seed}: {totals:?}");
        assert_eq!(
            totals.paroles, totals.quarantines,
            "seed {seed}: a quarantine never resolved to parole"
        );

        // (d) The registry counters mirror the registry-free ledgers.
        let snap = sheriff.telemetry().snapshot();
        for (name, ledger) in [
            ("defense.validation_rejects", totals.validation_rejects),
            ("defense.quota_trips", totals.quota_trips),
            ("defense.quarantines", totals.quarantines),
            ("defense.paroles", totals.paroles),
            ("defense.quarantine_drops", totals.quarantine_drops),
            ("defense.budget_exhaustions", totals.budget_exhaustions),
        ] {
            assert_eq!(
                snap.counters.get(name).copied().unwrap_or(0),
                ledger,
                "seed {seed}: {name} diverged from the book totals"
            );
        }

        // The injection layer really fired, and only the arms we armed.
        let stats = sheriff.byz_stats().expect("plan installed");
        assert!(stats.equivocated >= 1, "seed {seed}: {stats:?}");
        assert!(stats.flooded >= 4, "seed {seed}: {stats:?}");
        assert_eq!(stats.fabricated, 0, "seed {seed}: {stats:?}");
        assert_eq!(stats.codec_attacks, 0, "seed {seed}: {stats:?}");

        // Nothing leaks: the Coordinator's ledger drains to zero.
        assert_eq!(
            sheriff.pending_jobs_per_server(),
            vec![0, 0],
            "seed {seed}: leaked jobs"
        );

        // The §3.4 panel surfaces the incident.
        let panel = sheriff.monitoring_panel();
        assert!(
            panel.contains("Defense:") && !panel.contains(" 0 quarantines"),
            "seed {seed}: panel missing the quarantine: {panel}"
        );
    }
}

/// The Byzantine plan composes with a lossy network: drops, duplicates
/// and delays on every link change *when* the defense trips, never
/// *whether* honest work completes or how much pollution is admitted.
#[test]
fn byzantine_soak_survives_a_lossy_network() {
    for seed in seeds() {
        let faults = FaultPlan::new(seed).with_default_link(LinkFaults {
            drop: 0.03,
            duplicate: 0.05,
            delay: 0.08,
            delay_ms: (50, 400),
            ..LinkFaults::NONE
        });
        let sheriff = run_seed(seed, Some(faults));
        let done = sheriff.completed();
        assert_eq!(done.len(), 3, "seed {seed}: honest checks lost");
        assert_eq!(
            sheriff.admitted_from_peer(BYZ_PEER),
            0,
            "seed {seed}: pollution admitted under faults"
        );
        let stats = sheriff.byz_stats().expect("plan installed");
        assert!(stats.equivocated >= 1, "seed {seed}: injection never fired");
        assert_eq!(
            sheriff.pending_jobs_per_server(),
            vec![0, 0],
            "seed {seed}: leaked jobs"
        );
    }
}

#[test]
fn all_zero_byzantine_plan_is_a_strict_noop() {
    let run = |plan: Option<ByzantinePlan>| {
        let world = World::build(&WorldConfig::small(), 101);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(101), world, &specs(3));
        if let Some(plan) = plan {
            sheriff.install_byzantine_plan(plan);
        }
        for i in 0..3u64 {
            sheriff.submit_check(
                SimTime::from_millis(i * 200),
                100 + i,
                "amazon.com",
                ProductId(i as u32),
            );
        }
        sheriff.run_until(SimTime::from_mins(2));
        (
            format!("{:?}", sheriff.completed()),
            format!("{:?}", sheriff.telemetry().snapshot().counters),
            sheriff.monitoring_panel(),
        )
    };
    let baseline = run(None);
    let with_plan = run(Some(ByzantinePlan::new(999)));
    assert_eq!(baseline.0, with_plan.0, "completed checks diverged");
    assert_eq!(baseline.1, with_plan.1, "telemetry counters diverged");
    assert_eq!(baseline.2, with_plan.2, "monitoring panel diverged");
}
