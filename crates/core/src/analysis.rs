//! Analysis of collected price checks: the classification machinery behind
//! §6 (general findings), §7.3 (case studies), §7.4 (peer bias), and §7.5
//! (A/B-testing confirmation).

use std::collections::BTreeMap;

use sheriff_geo::Country;
use sheriff_stats::{ks_test, mean};

use crate::records::PriceCheck;

/// Per-domain aggregation of price-check outcomes.
#[derive(Clone, Debug)]
pub struct DomainAnalysis {
    /// Domain name.
    pub domain: String,
    /// Total checks against the domain.
    pub requests: usize,
    /// Checks where any two vantage points disagreed (beyond epsilon).
    pub requests_with_difference: usize,
    /// Relative spreads of the differing checks.
    pub spreads: Vec<f64>,
    /// Checks where vantage points disagreed *within one country*.
    pub within_country_events: usize,
    /// The within-country spreads observed.
    pub within_country_spreads: Vec<f64>,
}

impl DomainAnalysis {
    /// Median spread among differing checks (the Fig. 9 box median).
    pub fn median_spread(&self) -> Option<f64> {
        if self.spreads.is_empty() {
            return None;
        }
        Some(sheriff_stats::quantile(&self.spreads, 0.5))
    }

    /// Fraction of requests with a price difference (Table 5's metric).
    pub fn percent_with_difference(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        100.0 * self.requests_with_difference as f64 / self.requests as f64
    }
}

/// The paper's three-way outcome for a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomainVerdict {
    /// No price variation beyond tolerance.
    Uniform,
    /// Varies across locations only — location-based PD.
    LocationBased,
    /// Also varies within a country — candidate PDI-PD or A/B testing,
    /// needs the §7.4/§7.5 follow-up.
    WithinCountry,
}

/// Aggregates checks per domain.
///
/// `epsilon` is the relative tolerance below which two prices count as
/// equal (currency-conversion rounding noise; the paper manually excluded
/// such artifacts).
pub fn analyze_domains(checks: &[PriceCheck], epsilon: f64) -> Vec<DomainAnalysis> {
    let mut map: BTreeMap<&str, DomainAnalysis> = BTreeMap::new();
    for check in checks {
        let entry = map
            .entry(check.domain.as_str())
            .or_insert_with(|| DomainAnalysis {
                domain: check.domain.clone(),
                requests: 0,
                requests_with_difference: 0,
                spreads: Vec::new(),
                within_country_events: 0,
                within_country_spreads: Vec::new(),
            });
        entry.requests += 1;
        if let Some(spread) = check.relative_spread() {
            if spread > epsilon {
                entry.requests_with_difference += 1;
                entry.spreads.push(spread);
            }
        }
        // Within-country differences: any country with ≥2 observations.
        let mut countries: Vec<Country> = check.confident().map(|o| o.country).collect();
        countries.sort_unstable();
        countries.dedup();
        let mut within_event = false;
        for c in countries {
            if let Some(s) = check.within_country_spread(c) {
                if s > epsilon {
                    within_event = true;
                    entry.within_country_spreads.push(s);
                }
            }
        }
        if within_event {
            entry.within_country_events += 1;
        }
    }
    map.into_values().collect()
}

/// Classifies a domain, requiring `min_events` suspicious checks before the
/// within-country verdict (the paper required ≥10, §7.1).
pub fn classify(analysis: &DomainAnalysis, min_events: usize) -> DomainVerdict {
    if analysis.within_country_events >= min_events {
        DomainVerdict::WithinCountry
    } else if analysis.requests_with_difference > 0 {
        DomainVerdict::LocationBased
    } else {
        DomainVerdict::Uniform
    }
}

/// Per-peer price-difference distribution for one domain within one
/// country (Fig. 13's box plots).
#[derive(Clone, Debug)]
pub struct PeerBias {
    /// The peer's vantage id.
    pub peer: u64,
    /// Relative difference to the cheapest same-product observation, one
    /// entry per check the peer participated in.
    pub diffs: Vec<f64>,
}

impl PeerBias {
    /// Median difference — a peer consistently above 0 is "biased high".
    pub fn median(&self) -> f64 {
        if self.diffs.is_empty() {
            return 0.0;
        }
        sheriff_stats::quantile(&self.diffs, 0.5)
    }
}

/// Computes per-peer bias across `checks` of `domain` restricted to
/// `country`. For each check, every peer's price is compared against the
/// cheapest valid observation in that country.
pub fn peer_bias(checks: &[PriceCheck], domain: &str, country: Country) -> Vec<PeerBias> {
    let mut per_peer: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for check in checks.iter().filter(|c| c.domain == domain) {
        let in_country = check.in_country(country);
        if in_country.len() < 2 {
            continue;
        }
        let min = in_country
            .iter()
            .map(|o| o.amount_eur)
            .fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            continue;
        }
        for o in in_country {
            per_peer
                .entry(o.vantage_id)
                .or_default()
                .push((o.amount_eur - min) / min);
        }
    }
    per_peer
        .into_iter()
        .map(|(peer, diffs)| PeerBias { peer, diffs })
        .collect()
}

/// §7.5's distribution test: pairwise K-S over the per-peer difference
/// distributions. If all pairs look drawn from the same distribution, the
/// variation is A/B-style randomization, not peer-targeted.
#[derive(Clone, Copy, Debug)]
pub struct AbVerdict {
    /// Largest pairwise K-S statistic.
    pub max_d: f64,
    /// Smallest pairwise p-value.
    pub min_p: f64,
    /// Number of pairs tested.
    pub pairs: usize,
    /// True when no pair rejects the same-distribution hypothesis at 5%.
    pub same_distribution: bool,
}

/// Runs the pairwise K-S analysis over peers with enough samples.
pub fn ab_test_analysis(bias: &[PeerBias], min_samples: usize) -> AbVerdict {
    let eligible: Vec<&PeerBias> = bias
        .iter()
        .filter(|b| b.diffs.len() >= min_samples)
        .collect();
    let mut max_d: f64 = 0.0;
    let mut min_p: f64 = 1.0;
    let mut pairs = 0;
    for i in 0..eligible.len() {
        for j in i + 1..eligible.len() {
            let r = ks_test(&eligible[i].diffs, &eligible[j].diffs);
            max_d = max_d.max(r.d);
            min_p = min_p.min(r.p_value);
            pairs += 1;
        }
    }
    AbVerdict {
        max_d,
        min_p,
        pairs,
        same_distribution: pairs == 0 || min_p > 0.05,
    }
}

/// Mean fraction of observations strictly above the check minimum — §7.5's
/// "approximately 50% probability to observe a higher price" signature of
/// A/B testing.
pub fn higher_price_probability(checks: &[PriceCheck], domain: &str) -> f64 {
    let mut fractions = Vec::new();
    for check in checks.iter().filter(|c| c.domain == domain) {
        let prices: Vec<f64> = check.confident().map(|o| o.amount_eur).collect();
        if prices.len() < 2 {
            continue;
        }
        let min = prices.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if min <= 0.0 {
            continue;
        }
        let higher = prices.iter().filter(|&&p| p > min * 1.0001).count();
        fractions.push(higher as f64 / prices.len() as f64);
    }
    mean(&fractions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{PriceObservation, VantageKind};
    use sheriff_geo::IpV4;

    fn obs(peer: u64, country: Country, eur: f64) -> PriceObservation {
        PriceObservation {
            vantage: VantageKind::Ppc,
            vantage_id: peer,
            country,
            city: None,
            ip: IpV4(peer as u32),
            raw_text: String::new(),
            currency: "EUR".into(),
            amount: eur,
            amount_eur: eur,
            low_confidence: false,
            failed: false,
        }
    }

    fn check(domain: &str, observations: Vec<PriceObservation>) -> PriceCheck {
        PriceCheck {
            job_id: 0,
            domain: domain.into(),
            url: "/p".into(),
            day: 0,
            observations,
        }
    }

    #[test]
    fn uniform_domain_classified_uniform() {
        let checks = vec![check(
            "flat.com",
            vec![obs(1, Country::ES, 10.0), obs(2, Country::US, 10.0)],
        )];
        let a = analyze_domains(&checks, 0.001);
        assert_eq!(classify(&a[0], 1), DomainVerdict::Uniform);
        assert_eq!(a[0].percent_with_difference(), 0.0);
    }

    #[test]
    fn location_pd_detected() {
        let checks = vec![check(
            "geo.com",
            vec![obs(1, Country::ES, 10.0), obs(2, Country::US, 15.0)],
        )];
        let a = analyze_domains(&checks, 0.001);
        assert_eq!(classify(&a[0], 1), DomainVerdict::LocationBased);
        assert!((a[0].median_spread().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn within_country_detected_with_threshold() {
        let mk = || {
            check(
                "ab.com",
                vec![
                    obs(1, Country::ES, 10.0),
                    obs(2, Country::ES, 10.7),
                    obs(3, Country::US, 10.0),
                ],
            )
        };
        let one = vec![mk()];
        let a = analyze_domains(&one, 0.001);
        // One event, threshold 10 → only location-based.
        assert_eq!(classify(&a[0], 10), DomainVerdict::LocationBased);
        let many: Vec<PriceCheck> = (0..12).map(|_| mk()).collect();
        let a = analyze_domains(&many, 0.001);
        assert_eq!(classify(&a[0], 10), DomainVerdict::WithinCountry);
        assert_eq!(a[0].within_country_events, 12);
    }

    #[test]
    fn epsilon_suppresses_rounding_noise() {
        let checks = vec![check(
            "noise.com",
            vec![obs(1, Country::ES, 100.0), obs(2, Country::US, 100.04)],
        )];
        let a = analyze_domains(&checks, 0.001);
        assert_eq!(a[0].requests_with_difference, 0);
    }

    #[test]
    fn peer_bias_identifies_high_peer() {
        // Peer 9 always sees +7%, everyone else the base price.
        let checks: Vec<PriceCheck> = (0..20)
            .map(|_| {
                check(
                    "jcp.com",
                    vec![
                        obs(1, Country::GB, 100.0),
                        obs(2, Country::GB, 100.0),
                        obs(9, Country::GB, 107.0),
                    ],
                )
            })
            .collect();
        let bias = peer_bias(&checks, "jcp.com", Country::GB);
        let p9 = bias.iter().find(|b| b.peer == 9).unwrap();
        assert!((p9.median() - 0.07).abs() < 1e-9);
        let p1 = bias.iter().find(|b| b.peer == 1).unwrap();
        assert_eq!(p1.median(), 0.0);
    }

    #[test]
    fn ab_analysis_flags_same_distribution() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // All peers draw diffs from the same two-point distribution.
        let bias: Vec<PeerBias> = (0..5)
            .map(|peer| PeerBias {
                peer,
                diffs: (0..60)
                    .map(|_| if rng.gen::<bool>() { 0.0 } else { 0.05 })
                    .collect(),
            })
            .collect();
        let v = ab_test_analysis(&bias, 30);
        assert!(v.same_distribution, "max_d={} min_p={}", v.max_d, v.min_p);
        assert!(v.pairs > 0);
    }

    #[test]
    fn ab_analysis_rejects_biased_peer() {
        // One peer sees only high prices: distribution differs.
        let mut bias: Vec<PeerBias> = (0..4)
            .map(|peer| PeerBias {
                peer,
                diffs: (0..60)
                    .map(|i| if i % 2 == 0 { 0.0 } else { 0.05 })
                    .collect(),
            })
            .collect();
        bias.push(PeerBias {
            peer: 99,
            diffs: vec![0.05; 60],
        });
        let v = ab_test_analysis(&bias, 30);
        assert!(!v.same_distribution);
        assert!(v.max_d >= 0.5);
    }

    #[test]
    fn higher_price_probability_near_half_for_ab() {
        let checks: Vec<PriceCheck> = (0..50)
            .map(|i| {
                let prices: Vec<PriceObservation> = (0..10)
                    .map(|p| {
                        let high = (i + p) % 2 == 0;
                        obs(p as u64, Country::ES, if high { 105.0 } else { 100.0 })
                    })
                    .collect();
                check("ab.com", prices)
            })
            .collect();
        let prob = higher_price_probability(&checks, "ab.com");
        assert!((prob - 0.5).abs() < 0.05, "prob={prob}");
    }
}
