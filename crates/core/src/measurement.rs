//! The Measurement-server pipeline (paper §3.2, §3.3, §3.5, §10.5):
//! Tags-Path price extraction, currency detection/conversion, and
//! DiffStorage, as pure functions the `system` nodes drive.

use serde::{Deserialize, Serialize};
use sheriff_currency::{detect_price_with_hint, Confidence, FixedRates, RateProvider};
use sheriff_geo::{Country, IpV4};
use sheriff_html::tagspath::{extract_text_by_path, TagsPath};
use sheriff_html::{DiffStorage, Document};

use crate::records::{PriceObservation, VantageKind};

/// Metadata of the vantage point that produced an HTML response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VantageMeta {
    /// Vantage kind.
    pub kind: VantageKind,
    /// Stable identifier.
    pub id: u64,
    /// Country.
    pub country: Country,
    /// City when known.
    pub city: Option<String>,
    /// Source IP.
    pub ip: IpV4,
}

/// Processes one proxy response into a [`PriceObservation`].
///
/// `html` is the fetched page (possibly a CAPTCHA page), `path` the
/// initiator's Tags Path, `target` the currency the initiator wants results
/// in (Fig. 2's "Converted Value" column).
pub fn process_response(
    html: &str,
    path: &TagsPath,
    meta: &VantageMeta,
    target: &str,
    rates: &FixedRates,
) -> PriceObservation {
    let failed = |raw: String| PriceObservation {
        vantage: meta.kind,
        vantage_id: meta.id,
        country: meta.country,
        city: meta.city.clone(),
        ip: meta.ip,
        raw_text: raw,
        currency: String::new(),
        amount: 0.0,
        amount_eur: 0.0,
        low_confidence: false,
        failed: true,
    };

    let doc = Document::parse(html);
    let Some((raw_text, _quality)) = extract_text_by_path(&doc, path) else {
        return failed(String::new());
    };
    // Geo-hinting for ambiguous symbols: when `$`/`kr`/`¥` could denote
    // several currencies, prefer the vantage country's own currency (a
    // Canadian proxy seeing `$912` is looking at CAD) — including its
    // decimal convention during parsing. The observation stays flagged
    // low-confidence — the Fig. 2 red asterisk — and the §6/§7 analyses
    // treat it accordingly.
    let Ok(detected) = detect_price_with_hint(&raw_text, meta.country.currency()) else {
        return failed(raw_text);
    };
    let currency_iso = detected.currency.iso;
    let Some(in_target) = rates.convert(detected.amount, currency_iso, target) else {
        return failed(raw_text);
    };
    let amount_eur = rates
        .convert(detected.amount, currency_iso, "EUR")
        .unwrap_or(in_target);

    PriceObservation {
        vantage: meta.kind,
        vantage_id: meta.id,
        country: meta.country,
        city: meta.city.clone(),
        ip: meta.ip,
        raw_text,
        currency: currency_iso.to_string(),
        amount: detected.amount,
        amount_eur,
        low_confidence: detected.confidence == Confidence::Low,
        failed: false,
    }
}

/// Builds the initiator's Tags Path from their own page by locating the
/// highlighted text (the add-on's step-1 price selection, Fig. 4).
///
/// Walks the DOM for the deepest element whose text equals the selection
/// and constructs the path from it.
pub fn tags_path_for_selection(html: &str, selection: &str) -> Option<TagsPath> {
    let doc = Document::parse(html);
    let target = doc
        .descendants(doc.root())
        .into_iter()
        .rev() // deepest-last in DFS order — prefer the innermost element
        .filter(|&id| doc.name(id).is_some())
        .find(|&id| doc.text_content(id).trim() == selection.trim())?;
    TagsPath::from_node(&doc, target)
}

/// Per-job page storage: the initiator's page in full, proxy responses as
/// diffs (§10.5's DiffStorage module).
#[derive(Debug)]
pub struct JobPageStore {
    store: DiffStorage,
}

impl JobPageStore {
    /// Opens storage around the initiator's page.
    pub fn new(initiator_html: &str) -> Self {
        JobPageStore {
            store: DiffStorage::new(initiator_html),
        }
    }

    /// Stores one proxy response; returns its variant index.
    pub fn store_response(&mut self, html: &str) -> usize {
        self.store.store(html)
    }

    /// Reconstructs a stored response.
    pub fn load_response(&self, idx: usize) -> Option<String> {
        self.store.load(idx)
    }

    /// (bytes stored, bytes full copies would need).
    pub fn accounting(&self) -> (usize, usize) {
        self.store.storage_accounting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::{format_price, PriceFormat};

    fn page(price_text: &str) -> String {
        format!(
            "<html><body><div class=\"product\">\
             <span class=\"price\">{price_text}</span></div></body></html>"
        )
    }

    fn meta() -> VantageMeta {
        VantageMeta {
            kind: VantageKind::Ipc,
            id: 3,
            country: Country::US,
            city: Some("Tennessee".into()),
            ip: IpV4(1),
        }
    }

    fn path_for(html: &str, selection: &str) -> TagsPath {
        tags_path_for_selection(html, selection).expect("path")
    }

    #[test]
    fn full_pipeline_fig2_row() {
        // $699 seen in the US converts to €617.65 (Fig. 2).
        let rates = FixedRates::paper_era();
        let html = page("$699");
        let path = path_for(&html, "$699");
        let obs = process_response(&html, &path, &meta(), "EUR", &rates);
        assert!(!obs.failed);
        assert_eq!(obs.currency, "USD");
        assert!((obs.amount - 699.0).abs() < 1e-9);
        assert!((obs.amount_eur - 617.65).abs() < 0.01);
        assert!(obs.low_confidence, "bare $ is ambiguous");
    }

    #[test]
    fn remote_page_with_different_price_extracts() {
        let rates = FixedRates::paper_era();
        let local = page("EUR100.00");
        let path = path_for(&local, "EUR100.00");
        let remote = page("CAD912.00");
        let obs = process_response(&remote, &path, &meta(), "EUR", &rates);
        assert!(!obs.failed);
        assert_eq!(obs.currency, "CAD");
        assert!((obs.amount_eur - 646.26).abs() < 0.01);
    }

    #[test]
    fn captcha_page_fails_gracefully() {
        let rates = FixedRates::paper_era();
        let local = page("EUR5.00");
        let path = path_for(&local, "EUR5.00");
        let captcha = sheriff_market::page::render_captcha("shop.example");
        let obs = process_response(&captcha, &path, &meta(), "EUR", &rates);
        assert!(obs.failed);
    }

    #[test]
    fn all_market_formats_pipeline_cleanly() {
        let rates = FixedRates::paper_era();
        for (fmt, cur) in [
            (PriceFormat::CodeConcat, "EUR"),
            (PriceFormat::CodeSuffix, "SEK"),
            (PriceFormat::SymbolPrefix, "USD"),
            (PriceFormat::SymbolSuffixEu, "EUR"),
            (PriceFormat::CodeConcat, "JPY"),
        ] {
            let text = format_price(1234.5, cur, fmt);
            let html = page(&text);
            let path = path_for(&html, &text);
            let obs = process_response(&html, &path, &meta(), "EUR", &rates);
            assert!(!obs.failed, "{fmt:?} {cur}: {text}");
            assert_eq!(obs.currency, cur, "{text}");
        }
    }

    #[test]
    fn selection_finds_innermost_element() {
        let html = r#"<html><body><div class="wrap"><span class="price">EUR9.99</span></div></body></html>"#;
        let path = tags_path_for_selection(html, "EUR9.99").unwrap();
        assert_eq!(path.steps.last().unwrap().name, "span");
    }

    #[test]
    fn missing_selection_yields_no_path() {
        assert!(tags_path_for_selection("<p>hello</p>", "EUR1.00").is_none());
    }

    #[test]
    fn job_page_store_roundtrips() {
        let base = page("EUR100.00");
        let mut store = JobPageStore::new(&base);
        let variant = page("EUR200.00");
        let idx = store.store_response(&variant);
        assert_eq!(store.load_response(idx).unwrap(), variant);
        let (stored, full) = store.accounting();
        // Tiny synthetic pages carry more op overhead than savings; just
        // sanity-check the accounting (DiffStorage's own tests cover the
        // compression win on realistic page sizes).
        assert!(full >= base.len());
        assert!(stored >= base.len());
    }
}
