//! Pollution accounting (paper §3.6.2).
//!
//! A PPC serving remote price checks with its own client-side state alters
//! the server-side state retailers keep about it. The paper bounds this:
//! "we allow one new product page request for every 4 product pages that
//! the real user of the PPC has visited on the given domain" (25% tolerable
//! pollution). Past the budget, the PPC swaps in its doppelganger. The same
//! rule (and a 50% saturation trigger for regeneration) governs
//! doppelgangers themselves.

use std::collections::BTreeMap;

/// How a remote fetch should be executed, per the §3.6.2 decision tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchMode {
    /// The user never visited the domain: fetch sandboxed with own state;
    /// all resulting client-side state is deleted, no budget is consumed.
    CleanOwnState,
    /// The user visits this domain and budget remains: fetch with own
    /// (real) state — the valuable PDI-PD vantage — consuming budget.
    RealOwnState,
    /// Budget exhausted: fetch with the doppelganger's client-side state.
    Doppelganger,
}

/// Per-domain visit/remote-fetch ledger for one browser profile.
#[derive(Clone, Debug, Default)]
pub struct PollutionLedger {
    /// domain → (real user product-page visits, remote fetches charged).
    counts: BTreeMap<String, (u64, u64)>,
    /// Remote fetches per 4 real visits (paper: 1).
    per_four: u64,
}

impl PollutionLedger {
    /// Ledger with the paper's 25% tolerance (1 remote per 4 real visits).
    pub fn new() -> Self {
        PollutionLedger {
            counts: BTreeMap::new(),
            per_four: 1,
        }
    }

    /// Records real user product-page visits on `domain`.
    pub fn record_real_visits(&mut self, domain: &str, n: u64) {
        self.counts.entry(domain.to_string()).or_default().0 += n;
    }

    /// Real visits recorded for `domain`.
    pub fn real_visits(&self, domain: &str) -> u64 {
        self.counts.get(domain).map_or(0, |c| c.0)
    }

    /// Remote fetches charged against `domain`.
    pub fn remote_fetches(&self, domain: &str) -> u64 {
        self.counts.get(domain).map_or(0, |c| c.1)
    }

    /// Remote-fetch budget for `domain`: ⌊visits / 4⌋ · per_four.
    pub fn budget(&self, domain: &str) -> u64 {
        self.real_visits(domain) / 4 * self.per_four
    }

    /// Decides how a remote fetch towards `domain` must execute, charging
    /// the budget when real state is used.
    pub fn decide_and_charge(&mut self, domain: &str) -> FetchMode {
        let visits = self.real_visits(domain);
        if visits == 0 {
            // Never visited: no server-side state to protect; fetch clean.
            return FetchMode::CleanOwnState;
        }
        let budget = self.budget(domain);
        let entry = self.counts.entry(domain.to_string()).or_default();
        if entry.1 < budget {
            entry.1 += 1;
            FetchMode::RealOwnState
        } else {
            FetchMode::Doppelganger
        }
    }

    /// Fraction of visited domains whose budget is exhausted — the
    /// saturation measure that triggers doppelganger regeneration at 50%.
    pub fn saturation(&self) -> f64 {
        let visited: Vec<_> = self.counts.iter().filter(|(_, (v, _))| *v > 0).collect();
        if visited.is_empty() {
            return 0.0;
        }
        let saturated = visited
            .iter()
            .filter(|(d, (_, r))| *r >= self.budget(d))
            .count();
        saturated as f64 / visited.len() as f64
    }

    /// Domains with any recorded activity.
    pub fn domains(&self) -> impl Iterator<Item = &str> {
        self.counts.keys().map(String::as_str)
    }
}

/// Server-side influence budget for robust aggregation: the same ¼
/// tolerance the per-domain ledger enforces client-side, applied to the
/// total observations one peer may contribute across `expected_serves`
/// fan-out slots. Exceeding it is a pollution signal the defense layer
/// scores (see `protocol::defense`), bounding any single Byzantine
/// peer's influence on the stored record.
pub fn influence_budget(expected_serves: u64) -> u64 {
    (expected_serves / 4).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unvisited_domain_fetches_clean() {
        let mut l = PollutionLedger::new();
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::CleanOwnState);
        // Clean fetches never consume budget.
        assert_eq!(l.remote_fetches("shop.com"), 0);
    }

    #[test]
    fn one_remote_per_four_visits() {
        let mut l = PollutionLedger::new();
        l.record_real_visits("shop.com", 8);
        assert_eq!(l.budget("shop.com"), 2);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::RealOwnState);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::RealOwnState);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::Doppelganger);
        assert_eq!(
            l.remote_fetches("shop.com"),
            2,
            "doppelganger fetches not charged"
        );
    }

    #[test]
    fn three_visits_grant_no_budget() {
        let mut l = PollutionLedger::new();
        l.record_real_visits("shop.com", 3);
        assert_eq!(l.budget("shop.com"), 0);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::Doppelganger);
    }

    #[test]
    fn new_visits_replenish_budget() {
        let mut l = PollutionLedger::new();
        l.record_real_visits("shop.com", 4);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::RealOwnState);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::Doppelganger);
        l.record_real_visits("shop.com", 4);
        assert_eq!(l.decide_and_charge("shop.com"), FetchMode::RealOwnState);
    }

    #[test]
    fn saturation_counts_exhausted_domains() {
        let mut l = PollutionLedger::new();
        l.record_real_visits("a.com", 4);
        l.record_real_visits("b.com", 40);
        // a.com: budget 1, exhaust it.
        let _ = l.decide_and_charge("a.com");
        assert!((l.saturation() - 0.5).abs() < 1e-9, "a saturated, b not");
        assert!(l.saturation() >= 0.5, "regeneration threshold reached");
    }

    #[test]
    fn empty_ledger_zero_saturation() {
        assert_eq!(PollutionLedger::new().saturation(), 0.0);
    }
}
