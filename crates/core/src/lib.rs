//! The Price $heriff — the paper's primary contribution.
//!
//! A hybrid infrastructure / peer-to-peer watchdog for online price
//! discrimination (SIGCOMM'17). A user highlights a price; the system
//! re-fetches the same product page from ~30 dedicated vantage points
//! (IPCs) and a handful of peer browsers in the user's own location (PPCs),
//! extracts and converts every price, and reports the differences — all
//! without polluting the peers' browsing state or leaking their profiles.
//!
//! Architecture (paper Fig. 1), one module per component:
//!
//! * [`whitelist`] — sanctioned e-commerce domains and PII URL blacklist
//!   (§2.3);
//! * [`browser`] — the add-on's browser model: history, cookie jar, and the
//!   sandbox that leaves no trace of remote fetches (§3.6.1);
//! * [`pollution`] — the 1-remote-per-4-real-visits budget that bounds
//!   server-side state pollution (§3.6.2);
//! * [`doppelganger`] — cluster-trained fake profiles that shield peers
//!   past their pollution budget (§3.6.2, §3.7);
//! * [`coordinator`] — job IDs, whitelisting, the least-pending-jobs
//!   request distribution protocol (§3.4), peer tracking by location, and
//!   doppelganger state distribution behind 256-bit bearer tokens;
//! * [`measurement`] — the Measurement server pipeline: Tags Path
//!   extraction, currency conversion, DiffStorage (§3.3, §3.5, §10.5);
//! * [`db`] — the Database server with the integrated-vs-dedicated cost
//!   model behind Table 1;
//! * [`durability`] — the Database server's WAL + snapshot persistence
//!   and deterministic crash recovery;
//! * [`proxy`] — IPC and PPC fetch engines against the synthetic web;
//! * [`system`] — the whole distributed system wired over the
//!   discrete-event simulator, in both the v1 ($heriff, single server,
//!   integrated DB) and v2 (Price $heriff) configurations;
//! * [`records`] + [`analysis`] — observation records and the
//!   location-based / within-country / PDI-PD / A-B classification used by
//!   §6–§7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod browser;
pub mod byzantine;
pub mod coordinator;
pub mod db;
pub mod doppelganger;
pub mod durability;
pub mod latency;
pub mod measurement;
pub mod pollution;
pub mod protocol;
pub mod proxy;
pub mod records;
pub mod system;
pub mod whitelist;

pub use browser::{BrowserProfile, SandboxReport};
pub use coordinator::{Coordinator, JobId, PeerId};
pub use records::{PriceCheck, PriceObservation, VantageKind};
pub use system::{PriceSheriff, SheriffConfig, SystemVersion};
pub use whitelist::Whitelist;
