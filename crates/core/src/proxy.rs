//! Proxy clients: IPC and PPC fetch engines (paper §3.1.3, §3.6).
//!
//! An IPC is a cleanly installed browser on an infrastructure node: no
//! history, no cookies, fixed IP. A PPC is a real user's browser serving a
//! remote page request: it must expose its *real* state (that is the whole
//! point — PDI-PD needs realistic client-side state) while keeping its
//! local state clean (sandbox) and its server-side pollution bounded
//! (ledger + doppelganger swap-in).

use sheriff_geo::{Country, IpV4};
use sheriff_market::{CookieJar, FetchContext, FetchResult, ProductId, UserAgent, World};

use crate::browser::{BrowserProfile, SandboxReport};
use crate::pollution::{FetchMode, PollutionLedger};

/// What a proxy fetch produced.
#[derive(Clone, Debug)]
pub struct ProxyFetch {
    /// The fetched HTML (page or CAPTCHA).
    pub html: String,
    /// True when the retailer served a CAPTCHA.
    pub captcha: bool,
    /// Ground-truth EUR price of what was shown (None for CAPTCHA).
    pub truth_eur: Option<f64>,
    /// Which state the fetch exposed.
    pub mode: FetchMode,
    /// Sandbox validation for PPC fetches.
    pub sandbox: Option<SandboxReport>,
}

/// Infrastructure Proxy Client: clean browser, fixed vantage.
#[derive(Debug)]
pub struct IpcEngine {
    /// Stable identifier (the paper deployed 30).
    pub id: u64,
    /// Host country.
    pub country: Country,
    /// City index inside the country.
    pub city_idx: usize,
    /// Fixed IP address (what makes IPCs detectable, §3.2).
    pub ip: IpV4,
    /// Browser platform.
    pub user_agent: UserAgent,
}

impl IpcEngine {
    /// Fetches a product page with a pristine browser state.
    #[allow(clippy::too_many_arguments)] // mirrors the FetchOrder message
    pub fn fetch(
        &self,
        world: &mut World,
        domain: &str,
        product: ProductId,
        day: u32,
        time_quarter: u8,
        now_ms: u64,
        request_seq: u64,
    ) -> Option<ProxyFetch> {
        let clean = CookieJar::new();
        let ctx = FetchContext {
            ip: self.ip,
            country: self.country,
            cookies: &clean,
            user_agent: self.user_agent,
            logged_in: false,
            day,
            time_quarter,
            request_seq,
            client_id: 0xffff_0000 | self.id, // infrastructure namespace
        };
        let rates = world.rates.clone();
        let retailer = world.retailer_mut(domain)?;
        let result = retailer.fetch(product, &ctx, now_ms, &rates, 0.0, ctx.client_id)?;
        Some(match result {
            FetchResult::Page {
                html, price_eur, ..
            } => ProxyFetch {
                html,
                captcha: false,
                truth_eur: Some(price_eur),
                mode: FetchMode::CleanOwnState,
                sandbox: None,
            },
            FetchResult::Captcha { html } => ProxyFetch {
                html,
                captcha: true,
                truth_eur: None,
                mode: FetchMode::CleanOwnState,
                sandbox: None,
            },
        })
    }
}

/// Peer Proxy Client: a real user's browser.
#[derive(Debug)]
pub struct PpcEngine {
    /// Peer identifier.
    pub peer_id: u64,
    /// The user's browser (history + cookies).
    pub browser: BrowserProfile,
    /// Server-side pollution ledger.
    pub ledger: PollutionLedger,
    /// Current IP (churns).
    pub ip: IpV4,
    /// Country.
    pub country: Country,
    /// City index.
    pub city_idx: usize,
    /// Browser platform.
    pub user_agent: UserAgent,
    /// The user's affluence score (drives tracker profiles).
    pub affluence: f64,
    /// Domains where the user has an account and stays signed in.
    pub logged_in_domains: Vec<String>,
}

impl PpcEngine {
    /// The user browses a product page *for themselves*: history, ledger,
    /// cookies all update — this is what builds pollution budget.
    pub fn user_visit(
        &mut self,
        world: &mut World,
        domain: &str,
        product: ProductId,
        day: u32,
        now_ms: u64,
        request_seq: u64,
    ) {
        let rates = world.rates.clone();
        let logged_in = self.logged_in_domains.iter().any(|d| d == domain);
        let jar = self.browser.cookies.snapshot();
        let ctx = FetchContext {
            ip: self.ip,
            country: self.country,
            cookies: &jar,
            user_agent: self.user_agent,
            logged_in,
            day,
            time_quarter: 0,
            request_seq,
            client_id: self.peer_id,
        };
        let Some(retailer) = world.retailer_mut(domain) else {
            return;
        };
        let Some(result) =
            retailer.fetch(product, &ctx, now_ms, &rates, self.affluence, self.peer_id)
        else {
            return;
        };
        if let FetchResult::Page { set_cookies, .. } = result {
            self.browser.apply_cookies(&set_cookies);
        }
        self.browser
            .visit(domain, &format!("{domain}/product/{}", product.0));
        self.ledger.record_real_visits(domain, 1);
    }

    /// Like [`PpcEngine::user_visit`] but returns the fetched page: the
    /// initiator of a price check is literally browsing the product page,
    /// so their own fetch is a real visit whose HTML seeds the Tags Path.
    #[allow(clippy::too_many_arguments)]
    pub fn initiator_fetch(
        &mut self,
        world: &mut World,
        domain: &str,
        product: ProductId,
        day: u32,
        time_quarter: u8,
        now_ms: u64,
        request_seq: u64,
    ) -> Option<String> {
        let rates = world.rates.clone();
        let logged_in = self.logged_in_domains.iter().any(|d| d == domain);
        let jar = self.browser.cookies.snapshot();
        let ctx = FetchContext {
            ip: self.ip,
            country: self.country,
            cookies: &jar,
            user_agent: self.user_agent,
            logged_in,
            day,
            time_quarter,
            request_seq,
            client_id: self.peer_id,
        };
        let retailer = world.retailer_mut(domain)?;
        let result = retailer.fetch(product, &ctx, now_ms, &rates, self.affluence, self.peer_id)?;
        match result {
            FetchResult::Page {
                html, set_cookies, ..
            } => {
                self.browser.apply_cookies(&set_cookies);
                self.browser
                    .visit(domain, &format!("{domain}/product/{}", product.0));
                self.ledger.record_real_visits(domain, 1);
                Some(html)
            }
            FetchResult::Captcha { html } => Some(html),
        }
    }

    /// Predicts (without charging) which [`FetchMode`] a remote fetch
    /// towards `domain` would use — the add-on needs this *before* the
    /// doppelganger round-trip (Fig. 1 steps 3.3/3.4).
    pub fn peek_mode(&self, domain: &str) -> FetchMode {
        let visits = self.ledger.real_visits(domain);
        if visits == 0 {
            FetchMode::CleanOwnState
        } else if self.ledger.remote_fetches(domain) < self.ledger.budget(domain) {
            FetchMode::RealOwnState
        } else {
            FetchMode::Doppelganger
        }
    }

    /// Serves a *remote* price-check fetch (Fig. 1 step 3.2), applying the
    /// §3.6 decision tree. `doppelganger_state` must be provided when the
    /// ledger demands doppelganger mode; without it the fetch falls back to
    /// a clean-state fetch (still sandboxed).
    #[allow(clippy::too_many_arguments)] // mirrors the FetchOrder message
    pub fn remote_fetch(
        &mut self,
        world: &mut World,
        domain: &str,
        product: ProductId,
        day: u32,
        time_quarter: u8,
        now_ms: u64,
        request_seq: u64,
        doppelganger_state: Option<&CookieJar>,
    ) -> Option<ProxyFetch> {
        let mode = self.ledger.decide_and_charge(domain);
        let rates = world.rates.clone();
        let logged_in =
            mode == FetchMode::RealOwnState && self.logged_in_domains.iter().any(|d| d == domain);

        // Select the jar the fetch will expose.
        let empty = CookieJar::new();
        let dopp_jar;
        let jar_for_fetch: &CookieJar = match mode {
            FetchMode::RealOwnState | FetchMode::CleanOwnState => &self.browser.cookies,
            FetchMode::Doppelganger => match doppelganger_state {
                Some(j) => {
                    dopp_jar = j.clone();
                    &dopp_jar
                }
                None => &empty,
            },
        };

        let client_id = match mode {
            FetchMode::Doppelganger => {
                // The doppelganger's stable identity, not the user's.
                sheriff_market::hash_str(
                    jar_for_fetch
                        .value(domain, "session_id")
                        .unwrap_or("doppelganger"),
                )
            }
            _ => self.peer_id,
        };

        let ctx = FetchContext {
            ip: self.ip,
            country: self.country,
            cookies: jar_for_fetch,
            user_agent: self.user_agent,
            logged_in,
            day,
            time_quarter,
            request_seq,
            client_id,
        };

        let retailer = world.retailer_mut(domain)?;
        let affluence = if mode == FetchMode::Doppelganger {
            0.5 // the doppelganger's own (cluster-average) persona
        } else {
            self.affluence
        };
        let result = retailer.fetch(product, &ctx, now_ms, &rates, affluence, client_id)?;

        let (html, captcha, truth_eur, set_cookies) = match result {
            FetchResult::Page {
                html,
                price_eur,
                set_cookies,
                ..
            } => (html, false, Some(price_eur), set_cookies),
            FetchResult::Captcha { html } => (html, true, None, Vec::new()),
        };

        // Sandbox the local state: replay the cookie installs through the
        // sandbox so they are intercepted and the URL trace removed.
        let url = format!("{domain}/product/{}", product.0);
        let report = self.browser.sandboxed_fetch(move |_| (set_cookies, url));

        Some(ProxyFetch {
            html,
            captcha,
            truth_eur,
            mode,
            sandbox: Some(report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_geo::IpAllocator;
    use sheriff_market::pricing::{Browser, Os};
    use sheriff_market::world::WorldConfig;

    fn world() -> World {
        World::build(&WorldConfig::small(), 5)
    }

    fn ua() -> UserAgent {
        UserAgent {
            os: Os::Linux,
            browser: Browser::Firefox,
        }
    }

    fn ppc(country: Country) -> PpcEngine {
        let mut alloc = IpAllocator::new();
        PpcEngine {
            peer_id: 7,
            browser: BrowserProfile::new(),
            ledger: PollutionLedger::new(),
            ip: alloc.allocate(country, 0),
            country,
            city_idx: 0,
            user_agent: ua(),
            affluence: 0.4,
            logged_in_domains: vec![],
        }
    }

    #[test]
    fn ipc_fetch_is_clean_and_priced() {
        let mut w = world();
        let mut alloc = IpAllocator::new();
        let ipc = IpcEngine {
            id: 1,
            country: Country::US,
            city_idx: 0,
            ip: alloc.allocate(Country::US, 0),
            user_agent: ua(),
        };
        let f = ipc
            .fetch(&mut w, "steampowered.com", ProductId(0), 0, 0, 0, 1)
            .unwrap();
        assert!(!f.captcha);
        assert!(f.truth_eur.unwrap() > 0.0);
        assert!(f.html.contains("price") || f.html.contains("prc"));
    }

    #[test]
    fn ppc_user_visits_build_budget_then_remote_uses_real_state() {
        let mut w = world();
        let mut p = ppc(Country::ES);
        for i in 0..4 {
            p.user_visit(&mut w, "jcpenney.com", ProductId(i), 0, 0, i as u64);
        }
        assert_eq!(p.ledger.budget("jcpenney.com"), 1);
        assert!(!p.browser.cookies.get("jcpenney.com").is_empty());

        let f = p
            .remote_fetch(&mut w, "jcpenney.com", ProductId(9), 0, 0, 100, 50, None)
            .unwrap();
        assert_eq!(f.mode, FetchMode::RealOwnState);
        assert!(f.sandbox.unwrap().is_clean());
        // Second remote fetch: budget exhausted → doppelganger mode.
        let f2 = p
            .remote_fetch(&mut w, "jcpenney.com", ProductId(9), 0, 0, 200, 51, None)
            .unwrap();
        assert_eq!(f2.mode, FetchMode::Doppelganger);
    }

    #[test]
    fn unvisited_domain_remote_fetch_is_clean_mode() {
        let mut w = world();
        let mut p = ppc(Country::ES);
        let f = p
            .remote_fetch(&mut w, "amazon.com", ProductId(0), 0, 0, 0, 1, None)
            .unwrap();
        assert_eq!(f.mode, FetchMode::CleanOwnState);
        assert!(f.sandbox.unwrap().is_clean());
        assert!(p.browser.cookies.is_empty(), "no state left behind");
        assert_eq!(p.browser.history.count("amazon.com"), 0);
    }

    #[test]
    fn doppelganger_state_is_used_when_provided() {
        let mut w = world();
        let mut p = ppc(Country::GB);
        // Saturate the domain: 4 visits → budget 1 → consume it.
        for i in 0..4 {
            p.user_visit(&mut w, "jcpenney.com", ProductId(i), 0, 0, i as u64);
        }
        let _ = p.remote_fetch(&mut w, "jcpenney.com", ProductId(5), 0, 0, 10, 10, None);

        let mut dopp_state = CookieJar::new();
        dopp_state.set(
            "jcpenney.com",
            sheriff_market::Cookie {
                name: "session_id".into(),
                value: "dopp123".into(),
                third_party: false,
            },
        );
        let f = p
            .remote_fetch(
                &mut w,
                "jcpenney.com",
                ProductId(5),
                0,
                0,
                20,
                11,
                Some(&dopp_state),
            )
            .unwrap();
        assert_eq!(f.mode, FetchMode::Doppelganger);
        assert!(f.sandbox.unwrap().is_clean());
        // The user's own jar must be untouched by the doppelganger fetch.
        assert!(p
            .browser
            .cookies
            .value("jcpenney.com", "session_id")
            .is_some());
    }

    #[test]
    fn remote_fetches_leave_history_clean_always() {
        let mut w = world();
        let mut p = ppc(Country::FR);
        for i in 0..30 {
            let f = p
                .remote_fetch(
                    &mut w,
                    "chegg.com",
                    ProductId(i % 8),
                    0,
                    0,
                    i as u64,
                    i as u64,
                    None,
                )
                .unwrap();
            assert!(f.sandbox.unwrap().is_clean(), "fetch {i}");
        }
        assert_eq!(p.browser.history.count("chegg.com"), 0);
        assert!(p.browser.cookies.is_empty());
    }
}
