//! The Coordinator (paper §3.1.1, §3.4, Fig. 6/7).
//!
//! Pure state-machine logic, independent of transport: job-ID issuance,
//! whitelist filtering, the least-pending-jobs request-distribution
//! protocol over the Measurement-server list (an online heuristic for a
//! job-shop variant, §3.4), heartbeat liveness, and the peer registry
//! grouped by geolocation. The `system` module drives this over the
//! discrete-event network; unit tests drive it directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use sheriff_geo::{IpV4, Location};
use sheriff_telemetry::{panel, Counter, FieldValue, Gauge, Registry};

use crate::whitelist::{Whitelist, WhitelistRejection};

/// Globally unique price-check job identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Peer (PPC / browser add-on instance) identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeerId(pub u64);

/// One row of the Measurement-server list (Fig. 6 bottom / Fig. 7 panel).
#[derive(Clone, Debug)]
pub struct ServerEntry {
    /// Server address (URL or IP).
    pub addr: String,
    /// Port.
    pub port: u16,
    /// Marked online (heartbeats fresh)?
    pub online: bool,
    /// Pending jobs currently assigned.
    pub pending_jobs: u32,
    /// Last heartbeat timestamp (virtual ms).
    pub last_heartbeat: u64,
}

/// A registered peer.
#[derive(Clone, Debug)]
pub struct PeerEntry {
    /// Current IP.
    pub ip: IpV4,
    /// Geolocated position.
    pub location: Location,
    /// Still connected?
    pub online: bool,
}

// ---------------------------------------------------------------------
// Sharded job table (job-tag hash → shard, read-mostly snapshots)
// ---------------------------------------------------------------------

/// Number of job-table shards a fresh Coordinator starts with.
const INITIAL_JOB_SHARDS: usize = 4;
/// Mean in-flight jobs per shard beyond which the table doubles its
/// shard count (a rebalance).
const REBALANCE_LOAD: usize = 8;
/// Upper bound on shard growth.
const MAX_JOB_SHARDS: usize = 256;

/// FNV-1a placement hash: which shard of an `n_shards`-wide table owns
/// `job`. Pure function of the job tag and the shard count, so a
/// snapshot taken before a rebalance keeps resolving every tag it
/// captured — it hashes against its *own* width, not the live one.
fn job_shard(job: JobId, n_shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in job.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_shards.max(1) as u64) as usize
}

/// An immutable, self-consistent view of the sharded job ledger at one
/// publication instant. Cheap to hold: shards are shared `Arc`s, so a
/// snapshot costs one small `Vec` of pointers, and a reader keeping an
/// old snapshot across a rebalance still resolves every job tag that
/// was in flight when it was taken.
#[derive(Clone, Debug, Default)]
pub struct JobSnapshot {
    shards: Vec<Arc<BTreeMap<JobId, usize>>>,
    rebalances: u64,
}

impl JobSnapshot {
    /// The server index `job` is charged to, if it was in flight when
    /// this snapshot was published.
    pub fn resolve(&self, job: JobId) -> Option<usize> {
        self.shards
            .get(job_shard(job, self.shards.len()))?
            .get(&job)
            .copied()
    }

    /// Shard count at publication time.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard in-flight job counts, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Total in-flight jobs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no job is in flight.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// How many rebalances the table had performed when this snapshot
    /// was published.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Every `(job, server)` pair, in job-id order (shards partition by
    /// hash, so a cross-shard sort restores the global order).
    pub fn jobs_ordered(&self) -> Vec<(JobId, usize)> {
        let mut all: Vec<(JobId, usize)> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(&j, &srv)| (j, srv)))
            .collect();
        all.sort_unstable();
        all
    }
}

/// Cheap-to-clone read handle onto the job table's published snapshot:
/// the read-mostly hot path. `load` takes one brief read lock to clone
/// an `Arc` (the arc-swap idiom, hand-rolled on the vendored
/// `parking_lot`), so readers never contend with admission, sweeps or
/// requeues beyond that pointer exchange.
#[derive(Clone)]
pub struct JobTableReader {
    inner: Arc<RwLock<Arc<JobSnapshot>>>,
}

impl JobTableReader {
    /// The most recently published snapshot.
    pub fn load(&self) -> Arc<JobSnapshot> {
        Arc::clone(&self.inner.read())
    }
}

impl std::fmt::Debug for JobTableReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.load();
        f.debug_struct("JobTableReader")
            .field("shards", &snap.shard_count())
            .field("jobs", &snap.len())
            .finish()
    }
}

/// The writer side of the sharded job ledger. All mutation goes through
/// the owning Coordinator; every mutation republishes the snapshot
/// (copy-on-write per shard, so a publish is a `Vec<Arc>` clone).
struct JobTable {
    shards: Vec<Arc<BTreeMap<JobId, usize>>>,
    published: JobTableReader,
    rebalances: u64,
    shard_rebalances: Arc<Counter>,
}

impl JobTable {
    fn new(shard_rebalances: Arc<Counter>) -> Self {
        let shards: Vec<Arc<BTreeMap<JobId, usize>>> = (0..INITIAL_JOB_SHARDS)
            .map(|_| Arc::new(BTreeMap::new()))
            .collect();
        let snapshot = Arc::new(JobSnapshot {
            shards: shards.clone(),
            rebalances: 0,
        });
        JobTable {
            shards,
            published: JobTableReader {
                inner: Arc::new(RwLock::new(snapshot)),
            },
            rebalances: 0,
            shard_rebalances,
        }
    }

    fn publish(&self) {
        let snapshot = Arc::new(JobSnapshot {
            shards: self.shards.clone(),
            rebalances: self.rebalances,
        });
        *self.published.inner.write() = snapshot;
    }

    /// Doubles the shard count while the mean load exceeds
    /// [`REBALANCE_LOAD`]. Driven purely by the in-flight count, so the
    /// growth sequence is deterministic for a given admission schedule
    /// (and therefore for a given seed).
    fn maybe_rebalance(&mut self, upcoming_len: usize) {
        while self.shards.len() < MAX_JOB_SHARDS
            && upcoming_len > self.shards.len() * REBALANCE_LOAD
        {
            let wider = self.shards.len() * 2;
            let mut next: Vec<BTreeMap<JobId, usize>> = vec![BTreeMap::new(); wider];
            for shard in &self.shards {
                for (&job, &srv) in shard.iter() {
                    if let Some(s) = next.get_mut(job_shard(job, wider)) {
                        s.insert(job, srv);
                    }
                }
            }
            self.shards = next.into_iter().map(Arc::new).collect();
            self.rebalances += 1;
            self.shard_rebalances.inc();
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn insert(&mut self, job: JobId, server: usize) {
        self.maybe_rebalance(self.len() + 1);
        let width = self.shards.len();
        if let Some(shard) = self.shards.get_mut(job_shard(job, width)) {
            Arc::make_mut(shard).insert(job, server);
        }
        self.publish();
    }

    fn remove(&mut self, job: JobId) -> Option<usize> {
        let width = self.shards.len();
        let shard = self.shards.get_mut(job_shard(job, width))?;
        let removed = Arc::make_mut(shard).remove(&job);
        if removed.is_some() {
            self.publish();
        }
        removed
    }

    fn reader(&self) -> JobTableReader {
        self.published.clone()
    }

    /// Every `(job, server)` pair in job-id order — the same order the
    /// old single-map ledger iterated in, so requeue sequencing (an
    /// observable event order) is unchanged by the sharding.
    fn ordered(&self) -> Vec<(JobId, usize)> {
        let mut all: Vec<(JobId, usize)> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(&j, &srv)| (j, srv)))
            .collect();
        all.sort_unstable();
        all
    }
}

impl std::fmt::Debug for JobTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTable")
            .field("shards", &self.shards.len())
            .field("jobs", &self.len())
            .field("rebalances", &self.rebalances)
            .finish()
    }
}

/// Why a price-check request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Whitelist refused the URL.
    Rejected(WhitelistRejection),
    /// No Measurement server is online.
    NoServerAvailable,
}

/// Per-server panel gauges, parallel to the `servers` list.
#[derive(Debug)]
struct ServerGauges {
    online: Arc<Gauge>,
    pending: Arc<Gauge>,
}

/// The Coordinator's state.
#[derive(Debug)]
pub struct Coordinator {
    whitelist: Whitelist,
    servers: Vec<ServerEntry>,
    // `BTreeMap` so every iteration below (orphan sweep, peers_near) is
    // key-ordered by construction — no sort step can be forgotten.
    peers: BTreeMap<PeerId, PeerEntry>,
    /// In-flight job → server ledger, sharded by job-tag hash with
    /// read-mostly published snapshots (see [`JobSnapshot`]).
    jobs: JobTable,
    next_job: u64,
    /// Heartbeat staleness threshold (ms) before a server goes offline.
    pub heartbeat_timeout_ms: u64,
    telemetry: Arc<Registry>,
    server_gauges: Vec<ServerGauges>,
    requests_total: Arc<Counter>,
    requests_rejected: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    heartbeats_expired: Arc<Counter>,
    jobs_requeued: Arc<Counter>,
    peers_online: Arc<Gauge>,
}

impl Coordinator {
    /// New Coordinator over a whitelist, with a private telemetry registry.
    pub fn new(whitelist: Whitelist) -> Self {
        Self::with_telemetry(whitelist, Arc::new(Registry::new()))
    }

    /// New Coordinator publishing its metrics into a shared registry.
    pub fn with_telemetry(whitelist: Whitelist, telemetry: Arc<Registry>) -> Self {
        Coordinator {
            whitelist,
            servers: Vec::new(),
            peers: BTreeMap::new(),
            jobs: JobTable::new(telemetry.counter("coordinator.shard_rebalances")),
            next_job: 1,
            heartbeat_timeout_ms: 30_000,
            requests_total: telemetry.counter("coordinator.requests_total"),
            requests_rejected: telemetry.counter("coordinator.requests_rejected"),
            jobs_completed: telemetry.counter("coordinator.jobs_completed"),
            heartbeats_expired: telemetry.counter("coordinator.heartbeats_expired"),
            jobs_requeued: telemetry.counter("coordinator.jobs_requeued"),
            peers_online: telemetry.gauge("coordinator.peers_online"),
            server_gauges: Vec::new(),
            telemetry,
        }
    }

    /// The registry this coordinator publishes into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Mutable whitelist access (manual curation).
    pub fn whitelist_mut(&mut self) -> &mut Whitelist {
        &mut self.whitelist
    }

    // ----- Measurement-server management (§3.4, §10.2.1) -----

    /// Registers a Measurement server (the admin web-interface flow).
    /// Returns its index in the server list.
    pub fn register_server(&mut self, addr: &str, port: u16, now: u64) -> usize {
        self.servers.push(ServerEntry {
            addr: addr.to_string(),
            port,
            online: true,
            pending_jobs: 0,
            last_heartbeat: now,
        });
        let index = self.servers.len() - 1;
        let online = self
            .telemetry
            .gauge(&panel::server_metric(index, addr, port, "online"));
        let pending =
            self.telemetry
                .gauge(&panel::server_metric(index, addr, port, "pending_jobs"));
        online.set(1);
        pending.set(0);
        self.server_gauges.push(ServerGauges { online, pending });
        self.telemetry.event(
            now,
            "coordinator.server_registered",
            vec![
                ("index", FieldValue::U64(index as u64)),
                ("addr", FieldValue::from(addr)),
            ],
        );
        index
    }

    /// Detaches a server. Only allowed once it has no pending jobs
    /// (§10.2.1); returns false otherwise.
    pub fn remove_server(&mut self, index: usize) -> bool {
        match self.servers.get_mut(index) {
            Some(s) if s.pending_jobs == 0 => {
                s.online = false;
                if let Some(g) = self.server_gauges.get(index) {
                    g.online.set(0);
                }
                true
            }
            _ => false,
        }
    }

    /// Records a heartbeat from server `index`.
    pub fn heartbeat(&mut self, index: usize, now: u64) {
        if let Some(s) = self.servers.get_mut(index) {
            s.last_heartbeat = now;
            s.online = true;
            if let Some(g) = self.server_gauges.get(index) {
                g.online.set(1);
            }
        }
    }

    /// Marks servers with stale heartbeats offline (§10.3).
    pub fn expire_heartbeats(&mut self, now: u64) {
        for (index, s) in self.servers.iter_mut().enumerate() {
            if s.online && now.saturating_sub(s.last_heartbeat) > self.heartbeat_timeout_ms {
                s.online = false;
                if let Some(g) = self.server_gauges.get(index) {
                    g.online.set(0);
                }
                self.heartbeats_expired.inc();
                self.telemetry.event(
                    now,
                    "coordinator.heartbeat_expired",
                    vec![
                        ("index", FieldValue::U64(index as u64)),
                        (
                            "stale_ms",
                            FieldValue::U64(now.saturating_sub(s.last_heartbeat)),
                        ),
                    ],
                );
            }
        }
    }

    /// The server list (monitoring panel data, Fig. 7).
    pub fn servers(&self) -> &[ServerEntry] {
        &self.servers
    }

    /// Step 1–2 of the request-distribution protocol: whitelist the URL,
    /// mint a job ID, pick the online server with the fewest pending jobs,
    /// and charge it.
    pub fn new_request(&mut self, url: &str, now: u64) -> Result<(JobId, usize), RequestError> {
        self.expire_heartbeats(now);
        self.requests_total.inc();
        let checked = self.whitelist.check(url).map_err(RequestError::Rejected);
        let chosen = checked.and_then(|_domain| {
            self.servers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.online)
                .min_by_key(|(_, s)| s.pending_jobs)
                .map(|(i, _)| i)
                .ok_or(RequestError::NoServerAvailable)
        });
        let chosen = match chosen {
            Ok(i) => i,
            Err(e) => {
                self.requests_rejected.inc();
                return Err(e);
            }
        };
        let job = JobId(self.next_job);
        self.next_job += 1;
        let pending = match self.servers.get_mut(chosen) {
            Some(s) => {
                s.pending_jobs += 1;
                s.pending_jobs
            }
            None => 0,
        };
        self.jobs.insert(job, chosen);
        if let Some(g) = self.server_gauges.get(chosen) {
            g.pending.set(pending as i64);
        }
        self.telemetry.event(
            now,
            "coordinator.job_assigned",
            vec![
                ("job", FieldValue::U64(job.0)),
                ("server", FieldValue::U64(chosen as u64)),
                ("pending", FieldValue::U64(pending as u64)),
            ],
        );
        Ok((job, chosen))
    }

    /// Step 4: a Measurement server reports job completion; its counter
    /// decreases. Unknown/duplicate job IDs are ignored (the network-issue
    /// corrective case of §10.3 re-sends completions).
    pub fn job_complete(&mut self, job: JobId) {
        if let Some(server) = self.jobs.remove(job) {
            if let Some(s) = self.servers.get_mut(server) {
                s.pending_jobs = s.pending_jobs.saturating_sub(1);
                self.jobs_completed.inc();
                let pending = s.pending_jobs;
                if let Some(g) = self.server_gauges.get(server) {
                    g.pending.set(pending as i64);
                }
            }
        }
    }

    /// A cloneable handle onto the read-mostly job-ledger snapshots.
    /// Readers resolve job tags against the snapshot they loaded without
    /// touching the Coordinator's write path; a rebalance publishes a new
    /// snapshot but never invalidates one already held.
    pub fn jobs_reader(&self) -> JobTableReader {
        self.jobs.reader()
    }

    /// Pending jobs on a server.
    pub fn pending_jobs(&self, index: usize) -> u32 {
        self.servers.get(index).map_or(0, |s| s.pending_jobs)
    }

    /// Pending-job counts for every registered server, in registration
    /// order (structured Fig. 7 data; the text panel renders the same).
    pub fn pending_jobs_per_server(&self) -> Vec<u32> {
        self.servers.iter().map(|s| s.pending_jobs).collect()
    }

    /// Folds the bookkeeping core's logical state into `d` for
    /// model-checker state canonicalization. Heartbeat stamps are
    /// absolute time and excluded; online/offline flags (their derived
    /// effect) are folded instead.
    pub fn state_digest(&self, d: &mut crate::protocol::Digest) {
        d.write_u64(self.next_job);
        d.write_u64(self.servers.len() as u64);
        for s in &self.servers {
            d.write_bool(s.online);
            d.write_u64(u64::from(s.pending_jobs));
        }
        for (job, server) in self.jobs.ordered() {
            d.write_u64(job.0);
            d.write_u64(server as u64);
        }
        d.write_u64(self.peers.len() as u64);
        for (id, p) in &self.peers {
            d.write_u64(id.0);
            d.write_bool(p.online);
        }
    }

    /// §10.3 recovery: takes back every job charged to an offline server
    /// so the caller can re-admit it elsewhere. Only acts when at least
    /// one *online* server exists — a job on the sole (offline) server is
    /// left in place, since it may still complete once the server
    /// recovers and there is nowhere better to move it.
    pub fn take_orphaned_jobs(&mut self, now: u64) -> Vec<JobId> {
        if !self.servers.iter().any(|s| s.online) {
            return Vec::new();
        }
        // `ordered()` restores global job-id order across the hash
        // shards, so the requeue order matches the old single-map
        // ledger exactly.
        let orphaned: Vec<JobId> = self
            .jobs
            .ordered()
            .into_iter()
            .filter(|&(_, idx)| self.servers.get(idx).is_none_or(|s| !s.online))
            .map(|(job, _)| job)
            .collect();
        for &job in &orphaned {
            let Some(idx) = self.jobs.remove(job) else {
                continue;
            };
            if let Some(s) = self.servers.get_mut(idx) {
                s.pending_jobs = s.pending_jobs.saturating_sub(1);
                let pending = s.pending_jobs;
                if let Some(g) = self.server_gauges.get(idx) {
                    g.pending.set(pending as i64);
                }
            }
            self.jobs_requeued.inc();
            self.telemetry.event(
                now,
                "coordinator.job_requeued",
                vec![
                    ("job", FieldValue::U64(job.0)),
                    ("server", FieldValue::U64(idx as u64)),
                ],
            );
        }
        orphaned
    }

    // ----- Peer registry (§3.2) -----

    /// A browser with the add-on came online.
    pub fn peer_online(&mut self, peer: PeerId, ip: IpV4, location: Location) {
        self.peers.insert(
            peer,
            PeerEntry {
                ip,
                location,
                online: true,
            },
        );
        self.peers_online.set(self.online_peers() as i64);
    }

    /// Peer disconnected.
    pub fn peer_offline(&mut self, peer: PeerId) {
        if let Some(p) = self.peers.get_mut(&peer) {
            p.online = false;
        }
        self.peers_online.set(self.online_peers() as i64);
    }

    /// Online peers in the same area as `location`, excluding the
    /// initiator, capped at `max` (the ~3 PPCs per request of §6.1).
    pub fn peers_near(&self, location: &Location, exclude: PeerId, max: usize) -> Vec<PeerId> {
        // BTreeMap iteration is peer-id order, so the list is already
        // deterministic without a sort.
        let mut out: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|(&id, p)| id != exclude && p.online && p.location.same_area(location))
            .map(|(&id, _)| id)
            .collect();
        out.truncate(max);
        out
    }

    /// Number of online peers.
    pub fn online_peers(&self) -> usize {
        self.peers.values().filter(|p| p.online).count()
    }

    /// Registered peer info.
    pub fn peer(&self, id: PeerId) -> Option<&PeerEntry> {
        self.peers.get(&id)
    }

    /// Renders the Fig. 7 monitoring panel as text. Rendering reads only
    /// the telemetry registry — the panel is a view over the same snapshot
    /// the run reports export, with no hand-maintained counters.
    pub fn monitoring_panel(&self) -> String {
        panel::coordinator_panel(&self.telemetry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_geo::{Country, GeoLocator, Granularity, IpAllocator};

    fn coordinator() -> Coordinator {
        Coordinator::new(Whitelist::with_domains(["shop.com", "other.com"]))
    }

    fn loc(country: Country, city_idx: usize) -> (IpV4, Location) {
        let mut alloc = IpAllocator::new();
        let ip = alloc.allocate(country, city_idx);
        let l = GeoLocator::new(Granularity::City).locate(ip).unwrap();
        (ip, l)
    }

    #[test]
    fn requests_balance_to_least_loaded() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        c.register_server("s1", 80, 0);
        let (_, a) = c.new_request("shop.com/p/1", 1).unwrap();
        let (_, b) = c.new_request("shop.com/p/2", 2).unwrap();
        assert_ne!(a, b, "second request goes to the idle server");
        // Load: 1 and 1; complete one job, the freed server gets the next.
        let (job3, s3) = c.new_request("shop.com/p/3", 3).unwrap();
        assert_eq!(c.pending_jobs(s3), 2);
        c.job_complete(job3);
        let (_, s4) = c.new_request("shop.com/p/4", 4).unwrap();
        assert_eq!(s4, s3, "completion freed capacity");
    }

    #[test]
    fn slow_server_accumulates_fewer_jobs() {
        // "the response time of the system improves as 'slower' servers are
        // assigned fewer requests" — completions free the fast server.
        let mut c = coordinator();
        let slow = c.register_server("slow", 80, 0);
        let fast = c.register_server("fast", 80, 0);
        let mut fast_jobs = 0;
        for i in 0..20 {
            let (job, s) = c.new_request("shop.com/p", i).unwrap();
            if s == fast {
                fast_jobs += 1;
                c.job_complete(job); // fast server finishes immediately
            }
        }
        assert!(fast_jobs >= 15, "fast server got only {fast_jobs}/20");
        assert!(c.pending_jobs(slow) > 0);
    }

    #[test]
    fn rejected_urls_do_not_mint_jobs() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        let err = c.new_request("evil.example/x", 0).unwrap_err();
        assert!(matches!(err, RequestError::Rejected(_)));
        let err = c.new_request("shop.com/account/me", 0).unwrap_err();
        assert!(matches!(
            err,
            RequestError::Rejected(WhitelistRejection::PiiUrl)
        ));
        assert_eq!(c.pending_jobs(0), 0);
    }

    #[test]
    fn no_online_server_is_an_error() {
        let mut c = coordinator();
        assert_eq!(
            c.new_request("shop.com/p", 0).unwrap_err(),
            RequestError::NoServerAvailable
        );
    }

    #[test]
    fn heartbeat_expiry_takes_servers_offline() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        c.register_server("s1", 80, 0);
        c.heartbeat(1, 50_000);
        // s0's last heartbeat is 0; at t=40k it is stale (>30s timeout).
        let (_, s) = c.new_request("shop.com/p", 40_000).unwrap();
        assert_eq!(s, 1, "stale server skipped");
        assert!(!c.servers()[0].online);
        // Heartbeat revives it.
        c.heartbeat(0, 41_000);
        assert!(c.servers()[0].online);
    }

    #[test]
    fn server_removal_requires_drained_queue() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        let (job, _) = c.new_request("shop.com/p", 0).unwrap();
        assert!(!c.remove_server(0), "pending job blocks removal");
        c.job_complete(job);
        assert!(c.remove_server(0));
        assert!(!c.servers()[0].online);
    }

    #[test]
    fn job_ids_unique_and_completion_idempotent() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        let (a, _) = c.new_request("shop.com/p", 0).unwrap();
        let (b, _) = c.new_request("shop.com/p", 1).unwrap();
        assert_ne!(a, b);
        c.job_complete(a);
        c.job_complete(a); // duplicate completion ignored
        assert_eq!(c.pending_jobs(0), 1);
    }

    #[test]
    fn peer_registry_matches_by_area() {
        let mut c = coordinator();
        let (ip1, l1) = loc(Country::ES, 0);
        let (ip2, l2) = loc(Country::ES, 0);
        let (ip3, l3) = loc(Country::ES, 1);
        let (ip4, l4) = loc(Country::FR, 0);
        c.peer_online(PeerId(1), ip1, l1.clone());
        c.peer_online(PeerId(2), ip2, l2);
        c.peer_online(PeerId(3), ip3, l3);
        c.peer_online(PeerId(4), ip4, l4);
        let near = c.peers_near(&l1, PeerId(1), 10);
        assert_eq!(near, vec![PeerId(2)], "same city only, initiator excluded");
        assert_eq!(c.online_peers(), 4);
        c.peer_offline(PeerId(2));
        assert!(c.peers_near(&l1, PeerId(1), 10).is_empty());
    }

    #[test]
    fn peers_near_caps_at_max() {
        let mut c = coordinator();
        let (_, l) = loc(Country::ES, 0);
        for i in 0..10 {
            let (ip, pl) = loc(Country::ES, 0);
            let _ = ip;
            c.peer_online(PeerId(i), IpV4(i as u32), pl);
        }
        assert_eq!(c.peers_near(&l, PeerId(99), 3).len(), 3);
    }

    #[test]
    fn monitoring_panel_renders() {
        let mut c = coordinator();
        c.register_server("192.168.1.11", 80, 0);
        let panel = c.monitoring_panel();
        assert!(panel.contains("192.168.1.11"));
        assert!(panel.contains("online"));
    }

    #[test]
    fn monitoring_panel_golden() {
        // Fixed state -> exact panel text, rendered purely from the
        // telemetry registry.
        let mut c = coordinator();
        c.register_server("192.168.1.11", 80, 0);
        c.register_server("ms.example.org", 9000, 0);
        let (ip, l) = loc(Country::ES, 0);
        c.peer_online(PeerId(1), ip, l);
        let (_job, s) = c.new_request("shop.com/p/1", 1).unwrap();
        assert_eq!(s, 0);
        let (job2, _) = c.new_request("shop.com/p/2", 2).unwrap();
        c.job_complete(job2);
        assert!(c.new_request("evil.example/x", 3).is_err());
        assert_eq!(
            c.monitoring_panel(),
            "Worker            Port  Status   Jobs\n\
             192.168.1.11      80    online   1\n\
             ms.example.org    9000  online   0\n\
             \nRequests: 3 total, 1 rejected   Jobs completed: 1   Peers online: 1\n\
             Recovery: 0 retransmits, 0 dups absorbed, 0 jobs requeued, 0 restarts\n\
             Durability: 0 wal appends, 0 snapshots, 0 records recovered\n\
             Defense: 0 rejects, 0 quota trips, 0 quarantines, 0 paroles, 0 dropped\n"
        );
    }

    #[test]
    fn telemetry_tracks_request_lifecycle() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        let (job, _) = c.new_request("shop.com/p", 0).unwrap();
        c.job_complete(job);
        let _ = c.new_request("evil.example/x", 1);
        let snap = c.telemetry().snapshot();
        assert_eq!(snap.counters["coordinator.requests_total"], 2);
        assert_eq!(snap.counters["coordinator.requests_rejected"], 1);
        assert_eq!(snap.counters["coordinator.jobs_completed"], 1);
        let assigned: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "coordinator.job_assigned")
            .collect();
        assert_eq!(assigned.len(), 1);
        assert_eq!(
            assigned[0].field("job"),
            Some(&sheriff_telemetry::FieldValue::U64(job.0))
        );
    }

    #[test]
    fn orphaned_jobs_are_taken_back_only_when_somewhere_else_exists() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        c.register_server("s1", 80, 0);
        let (job, s) = c.new_request("shop.com/p", 0).unwrap();
        assert_eq!(s, 0);
        // Nothing is orphaned while everyone is online.
        assert!(c.take_orphaned_jobs(1).is_empty());
        // s0 goes stale; its job comes back for reassignment.
        c.heartbeat(1, 50_000);
        c.expire_heartbeats(50_000);
        assert_eq!(c.take_orphaned_jobs(50_000), vec![job]);
        assert_eq!(c.pending_jobs_per_server(), vec![0, 0]);
        assert_eq!(
            c.telemetry().snapshot().counters["coordinator.jobs_requeued"],
            1
        );
        // Idempotent: the job is no longer charged anywhere.
        assert!(c.take_orphaned_jobs(50_001).is_empty());
    }

    #[test]
    fn orphaned_jobs_stay_put_when_no_server_is_online() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        let (_job, _) = c.new_request("shop.com/p", 0).unwrap();
        c.expire_heartbeats(50_000);
        assert!(!c.servers()[0].online);
        assert!(
            c.take_orphaned_jobs(50_000).is_empty(),
            "nowhere to move it; the server may still recover"
        );
        assert_eq!(c.pending_jobs(0), 1);
    }

    #[test]
    fn heartbeat_expiry_is_counted() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        c.register_server("s1", 80, 0);
        c.heartbeat(1, 50_000);
        let _ = c.new_request("shop.com/p", 40_000);
        let snap = c.telemetry().snapshot();
        assert_eq!(snap.counters["coordinator.heartbeats_expired"], 1);
        assert!(snap
            .events
            .iter()
            .any(|e| e.name == "coordinator.heartbeat_expired"));
    }

    #[test]
    fn pre_rebalance_snapshot_still_resolves_every_in_flight_tag() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        // Pin a snapshot at the initial width, then admit enough jobs to
        // force at least one shard doubling behind the reader's back.
        let reader = c.jobs_reader();
        let mut admitted = Vec::new();
        let (first, s) = c.new_request("shop.com/p", 0).unwrap();
        admitted.push(first);
        let held = reader.load();
        assert_eq!(held.shard_count(), INITIAL_JOB_SHARDS);
        for i in 1..200u64 {
            let (job, _) = c.new_request("shop.com/p", i).unwrap();
            admitted.push(job);
        }
        let fresh = reader.load();
        assert!(
            fresh.shard_count() > held.shard_count(),
            "admission never forced a rebalance"
        );
        // The stale snapshot keeps resolving the tag it was taken with,
        // and the fresh one resolves every in-flight tag — a rebalance
        // republishes, it never invalidates a held snapshot.
        assert_eq!(held.resolve(first), Some(s));
        for &job in &admitted {
            assert_eq!(fresh.resolve(job), Some(s), "lost tag {job:?}");
        }
        assert_eq!(fresh.len(), admitted.len());
        assert_eq!(fresh.jobs_ordered().len(), admitted.len());
    }

    #[test]
    fn shard_counts_rebalance_deterministically_from_the_seed() {
        let grow = |n: u64| {
            let mut c = coordinator();
            c.register_server("s0", 80, 0);
            let mut trail = Vec::new();
            for i in 0..n {
                let _ = c.new_request("shop.com/p", i).unwrap();
                trail.push((
                    c.jobs_reader().load().shard_count(),
                    c.jobs_reader().load().len(),
                ));
            }
            trail
        };
        let a = grow(150);
        let b = grow(150);
        assert_eq!(a, b, "shard growth diverged across identical runs");
        // Doubling kicks in exactly when mean load crosses REBALANCE_LOAD.
        let widths: Vec<usize> = a.iter().map(|&(w, _)| w).collect();
        assert_eq!(widths[0], INITIAL_JOB_SHARDS);
        assert!(widths.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] * 2));
        let final_width = *widths.last().unwrap();
        assert!(
            final_width >= 16,
            "150 in-flight jobs over load 8 must widen past 16 shards, got {final_width}"
        );
        let c = {
            let mut c = coordinator();
            c.register_server("s0", 80, 0);
            for i in 0..150 {
                let _ = c.new_request("shop.com/p", i).unwrap();
            }
            c
        };
        let snap = c.jobs_reader().load();
        assert_eq!(snap.shard_count(), final_width);
        assert_eq!(
            c.telemetry().snapshot().counters["coordinator.shard_rebalances"],
            snap.rebalances()
        );
        // No shard is pathologically hot: FNV spreads 150 tags so every
        // occupied shard stays under 4x the mean.
        let lens = snap.shard_lens();
        let mean = 150.0 / lens.len() as f64;
        assert!(lens.iter().all(|&l| (l as f64) < mean * 4.0 + 4.0));
    }

    #[test]
    fn completion_and_requeue_update_the_published_snapshot() {
        let mut c = coordinator();
        c.register_server("s0", 80, 0);
        c.register_server("s1", 80, 0);
        let reader = c.jobs_reader();
        let (job, srv) = c.new_request("shop.com/p", 0).unwrap();
        assert_eq!(reader.load().resolve(job), Some(srv));
        c.job_complete(job);
        assert_eq!(reader.load().resolve(job), None);
        assert!(reader.load().is_empty());
        // A requeue also drops the tag from the ledger: keep the *other*
        // server alive, lapse the one holding job2, reclaim.
        let (job2, srv2) = c.new_request("shop.com/p", 1).unwrap();
        c.heartbeat(1 - srv2, 49_999);
        c.expire_heartbeats(50_000);
        assert_eq!(c.take_orphaned_jobs(50_000), vec![job2]);
        assert_eq!(reader.load().resolve(job2), None);
    }
}
