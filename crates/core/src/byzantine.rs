//! Typed Byzantine message mutation.
//!
//! [`sheriff_netsim::ByzantinePlan`] only *decides* — it knows nothing
//! about [`ProtoMsg`]. This module turns a [`ByzDecision`] into concrete
//! protocol-level misbehavior: price equivocation (recipient-dependent
//! digit skew), fabricated vantage identities, stale replays, and
//! request/ack flood junk. Both backends call [`apply`] at the sender's
//! delivery edge — the DES in `system::dispatch`, the TCP reactor in
//! `send_from` — so a given `(seed, edge, occurrence)` yields the same
//! adversarial traffic on either transport and chaos parity stays
//! pinned.
//!
//! Codec-boundary attacks (garbage, oversized length fields,
//! slow-loris) are *not* handled here: they are byte-level, so the TCP
//! backend emits raw attack frames and the DES — whose messages never
//! pass through the codec — drops the message at dispatch. [`apply`]
//! treats a codec decision as "primary consumed" for both.

use sheriff_netsim::ByzDecision;

use crate::protocol::ProtoMsg;

/// Offset a fabricating peer adds to its vantage id: the forged
/// identity no longer matches the sending address, which is exactly
/// what the measurement server's envelope check rejects.
pub const FABRICATED_ID_OFFSET: u64 = 1000;

/// Tag bit marking flood-generated junk request tags so legitimate
/// initiator tags (small integers) can never collide with them.
pub const JUNK_TAG_BIT: u64 = 1 << 63;

/// Whether a message carries price evidence worth corrupting — the
/// content arms (equivocate / fabricate / stale-replay) only fire on
/// these; floods and codec attacks apply to any traffic.
pub fn price_bearing(msg: &ProtoMsg) -> bool {
    matches!(
        msg,
        ProtoMsg::FetchReply { .. } | ProtoMsg::DoppStateRequest { .. }
    )
}

/// Inserts `zeros` zeros after the first digit of every digit run in
/// `html`. The DOM structure (tags, attributes) is untouched, so the
/// initiator's Tags Path still extracts a price — just one skewed by
/// 10^zeros — which is what the defense layer's plausibility band is
/// built to catch.
pub fn skew_html_prices(html: &str, zeros: usize) -> String {
    let mut out = String::with_capacity(html.len() + 16);
    let mut in_run = false;
    for ch in html.chars() {
        out.push(ch);
        if ch.is_ascii_digit() {
            if !in_run {
                for _ in 0..zeros {
                    out.push('0');
                }
                in_run = true;
            }
        } else {
            in_run = false;
        }
    }
    out
}

/// Result of applying a Byzantine decision to an outbound message.
#[derive(Debug)]
pub struct ByzApplied {
    /// The (possibly mutated) original message; `None` when the
    /// decision consumed it (codec attack — bytes on TCP, a drop on
    /// the DES).
    pub primary: Option<ProtoMsg>,
    /// Flood junk emitted alongside the primary, in deterministic
    /// order.
    pub junk: Vec<ProtoMsg>,
}

/// Applies `decision` to `msg`. Pure: the same `(decision, msg)` pair
/// yields the same traffic on every backend.
pub fn apply(decision: &ByzDecision, msg: ProtoMsg) -> ByzApplied {
    if decision.codec.is_some() {
        // Byte-level attack replaces the message entirely; the
        // transport edge owns what (if anything) goes on the wire.
        return ByzApplied {
            primary: None,
            junk: Vec::new(),
        };
    }

    let mutated = mutate(decision, msg);
    let junk = flood_junk(decision, &mutated);
    ByzApplied {
        primary: Some(mutated),
        junk,
    }
}

/// Content arms: equivocation, fabrication, stale replay.
fn mutate(decision: &ByzDecision, msg: ProtoMsg) -> ProtoMsg {
    match msg {
        ProtoMsg::FetchReply {
            job,
            mut meta,
            html,
        } => {
            let mut html = html;
            if let Some(salt) = decision.equivocate_salt {
                // Recipient-dependent salt → different zeros for
                // different recipients: classic equivocation.
                html = skew_html_prices(&html, 2 + (salt % 3) as usize);
            }
            if decision.stale_replay {
                // A replayed old page: fixed three-zero skew, as if an
                // ancient (pre-redenomination) capture were re-served.
                html = skew_html_prices(&html, 3);
            }
            if decision.fabricate {
                // Forge the vantage identity outside the sender's
                // envelope; the country/id no longer match the
                // transport-level source address.
                meta.id = meta.id.wrapping_add(FABRICATED_ID_OFFSET);
            }
            ProtoMsg::FetchReply { job, meta, html }
        }
        ProtoMsg::DoppStateRequest {
            job,
            mut token,
            domain,
        } => {
            if decision.stale_replay {
                // Replay with a stale/corrupted bearer token: the
                // coordinator no longer knows it and scores the
                // doppelganger mismatch.
                for b in token.0.iter_mut().take(8) {
                    *b ^= 0xA5;
                }
            }
            ProtoMsg::DoppStateRequest { job, token, domain }
        }
        other => other,
    }
}

/// Flood arm: junk shaped like the primary so it lands on the same
/// server-side quota.
fn flood_junk(decision: &ByzDecision, primary: &ProtoMsg) -> Vec<ProtoMsg> {
    let copies = decision.flood_copies as u64;
    if copies == 0 {
        return Vec::new();
    }
    let mut junk = Vec::with_capacity(copies as usize);
    for i in 0..copies {
        let nonce = mix(decision.occurrence * 64 + i);
        junk.push(match primary {
            ProtoMsg::CoordRequest { url, peer, .. } => ProtoMsg::CoordRequest {
                url: url.clone(),
                peer: *peer,
                local_tag: JUNK_TAG_BIT | nonce,
            },
            reply @ ProtoMsg::FetchReply { .. } => reply.clone(),
            // Anything else: spurious-ack flood, absorbed (and
            // counted) by the receiver's reliable channel.
            _ => ProtoMsg::Ack {
                seq: JUNK_TAG_BIT | nonce,
            },
        });
    }
    junk
}

/// splitmix64 finalizer — local copy (netsim keeps its own private);
/// only used to derive collision-free junk nonces.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & !JUNK_TAG_BIT
}

#[cfg(test)]
mod tests {
    use sheriff_netsim::{ByzDecision, CodecAttack};

    use super::*;
    use crate::coordinator::PeerId;
    use crate::doppelganger::DoppelgangerId;
    use crate::measurement::VantageMeta;
    use crate::records::VantageKind;
    use sheriff_geo::{Country, IpV4};

    fn reply() -> ProtoMsg {
        ProtoMsg::FetchReply {
            job: crate::coordinator::JobId(9),
            meta: VantageMeta {
                kind: VantageKind::Ppc,
                id: 104,
                country: Country::DE,
                city: None,
                ip: IpV4(0x0A00_0001),
            },
            html: "<span class=\"price\">EUR 1299.49</span>".into(),
        }
    }

    fn honest() -> ByzDecision {
        ByzDecision::HONEST
    }

    #[test]
    fn honest_decision_is_identity() {
        let applied = apply(&honest(), reply());
        assert_eq!(applied.primary, Some(reply()));
        assert!(applied.junk.is_empty());
    }

    #[test]
    fn skew_inserts_zeros_once_per_digit_run() {
        assert_eq!(skew_html_prices("EUR 12.49", 2), "EUR 1002.4009");
        assert_eq!(skew_html_prices("no digits", 3), "no digits");
        // DOM structure survives: tags keep their names.
        let skewed = skew_html_prices("<span>9</span>", 1);
        assert_eq!(skewed, "<span>90</span>");
    }

    #[test]
    fn equivocation_salt_varies_the_skew() {
        let mut d0 = honest();
        d0.equivocate_salt = Some(0); // 2 zeros
        let mut d2 = honest();
        d2.equivocate_salt = Some(2); // 4 zeros
        let a = apply(&d0, reply()).primary.unwrap();
        let b = apply(&d2, reply()).primary.unwrap();
        assert_ne!(a, b, "different recipients see different prices");
    }

    #[test]
    fn fabrication_forges_the_vantage_id() {
        let mut d = honest();
        d.fabricate = true;
        let ProtoMsg::FetchReply { meta, .. } = apply(&d, reply()).primary.unwrap() else {
            panic!("kind preserved");
        };
        assert_eq!(meta.id, 104 + FABRICATED_ID_OFFSET);
    }

    #[test]
    fn stale_replay_corrupts_dopp_tokens() {
        let mut d = honest();
        d.stale_replay = true;
        let msg = ProtoMsg::DoppStateRequest {
            job: crate::coordinator::JobId(1),
            token: DoppelgangerId([7u8; 32]),
            domain: "shop.com".into(),
        };
        let ProtoMsg::DoppStateRequest { token, .. } = apply(&d, msg).primary.unwrap() else {
            panic!("kind preserved");
        };
        assert_ne!(token, DoppelgangerId([7u8; 32]));
    }

    #[test]
    fn flood_shapes_junk_like_the_primary() {
        let mut d = honest();
        d.flood_copies = 3;
        let req = ProtoMsg::CoordRequest {
            url: "https://shop.com/p/1".into(),
            peer: PeerId(104),
            local_tag: 5,
        };
        let applied = apply(&d, req);
        assert_eq!(applied.junk.len(), 3);
        for j in &applied.junk {
            let ProtoMsg::CoordRequest { local_tag, .. } = j else {
                panic!("junk mirrors the request kind");
            };
            assert!(local_tag & JUNK_TAG_BIT != 0, "junk tags are marked");
        }
        // Non-request, non-reply primaries flood as spurious acks.
        let mut d2 = honest();
        d2.flood_copies = 2;
        let applied = apply(&d2, ProtoMsg::Heartbeat { server_index: 0 });
        assert!(applied
            .junk
            .iter()
            .all(|j| matches!(j, ProtoMsg::Ack { .. })));
    }

    #[test]
    fn codec_attack_consumes_the_primary() {
        let mut d = honest();
        d.codec = Some(CodecAttack::Garbage);
        d.flood_copies = 4; // decide() suppresses this; apply must too
        let applied = apply(&d, reply());
        assert!(applied.primary.is_none());
        assert!(applied.junk.is_empty());
    }

    #[test]
    fn junk_nonces_are_distinct_and_deterministic() {
        let mut d = honest();
        d.flood_copies = 4;
        d.occurrence = 11;
        let a = apply(&d, ProtoMsg::Shutdown);
        let b = apply(&d, ProtoMsg::Shutdown);
        let seqs: Vec<u64> = a
            .junk
            .iter()
            .map(|j| match j {
                ProtoMsg::Ack { seq } => *seq,
                _ => unreachable!(),
            })
            .collect();
        let mut uniq = seqs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "nonces distinct");
        assert_eq!(format!("{:?}", a.junk), format!("{:?}", b.junk));
    }
}
