//! Durable storage for the Database server: WAL + snapshot + recovery.
//!
//! The paper's Database server is the system of record for every price
//! observation (§3.2, Table 1); losing it loses the longitudinal history
//! the §6–§7 analyses need — a lost observation is indistinguishable
//! from "no fiddling". This module gives the [`crate::protocol::DbProto`]
//! machine a crash-consistent persistence model:
//!
//! * a **write-ahead log** of [`WalRecord`]s in a hand-rolled,
//!   deterministic byte format (same virtual schedule → identical WAL
//!   bytes, so DES replays are byte-comparable);
//! * periodic **snapshots** that fold the log into one durable image and
//!   truncate it;
//! * a [`Storage`] trait separating the *discipline* (append, barrier,
//!   install, recover) from the *medium*: the DES backend runs against
//!   the in-memory [`MemStorage`], `wire::deploy` against real files.
//!
//! The crash-consistency contract: bytes appended to the WAL are
//! *volatile* until a [`Storage::barrier`] (the fsync-equivalent); a
//! crash discards the un-barriered tail, deterministically. Recovery
//! replays the snapshot plus every *whole, checksummed* log record and
//! cleanly ignores a truncated or corrupted tail — never panics, so the
//! workspace's transitive panic-freedom invariant holds through the
//! protocol entry points that call into this module.

use std::collections::BTreeSet;

use crate::records::{PriceCheck, PriceObservation, VantageKind};
use sheriff_geo::{Country, IpV4};

/// First byte of every WAL record frame.
pub const RECORD_MAGIC: u8 = 0xA5;

/// Leading bytes of a snapshot image.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SNP1";

/// One durable log entry: a stored check stamped with the virtual time
/// of the store.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Virtual time of the store (DES: simulated ms; TCP: ms since the
    /// deployment epoch).
    pub vt_ms: u64,
    /// The job the check settles.
    pub job: u64,
    /// The stored check itself.
    pub check: PriceCheck,
}

// ---------------------------------------------------------------------
// Byte store abstraction
// ---------------------------------------------------------------------

/// The durable byte store behind the Database server.
///
/// Two append-only regions — a snapshot image and a WAL — with an
/// explicit durability barrier. Implementations must make
/// [`Storage::lose_unflushed`] discard exactly the bytes appended since
/// the last barrier (or snapshot install), so crash truncation is
/// deterministic for a deterministic append/barrier schedule.
pub trait Storage: Send {
    /// The durable snapshot image (empty when none was ever installed).
    fn read_snapshot(&self) -> Vec<u8>;
    /// The durable (barrier-flushed) WAL bytes.
    fn read_wal(&self) -> Vec<u8>;
    /// Appends bytes at the WAL tail; volatile until [`Storage::barrier`].
    fn append_wal(&mut self, bytes: &[u8]);
    /// Fsync-equivalent: every byte appended so far becomes durable.
    fn barrier(&mut self);
    /// Atomically replaces the snapshot and truncates the WAL to empty.
    fn install_snapshot(&mut self, bytes: &[u8]);
    /// Power-loss: the un-barriered WAL tail is gone. Returns how many
    /// bytes were discarded.
    fn lose_unflushed(&mut self) -> usize;
    /// `(durable, buffered)` WAL byte counts, for telemetry and tests.
    fn wal_len(&self) -> (usize, usize);
}

/// In-memory [`Storage`] for the discrete-event backend: a byte vector
/// per region plus a flushed watermark. Same schedule → same bytes.
#[derive(Debug, Default)]
pub struct MemStorage {
    snapshot: Vec<u8>,
    wal: Vec<u8>,
    flushed: usize,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-loaded with a durable image, for recovery tests.
    pub fn with_contents(snapshot: Vec<u8>, wal: Vec<u8>) -> Self {
        let flushed = wal.len();
        MemStorage {
            snapshot,
            wal,
            flushed,
        }
    }
}

impl Storage for MemStorage {
    fn read_snapshot(&self) -> Vec<u8> {
        self.snapshot.clone()
    }

    fn read_wal(&self) -> Vec<u8> {
        self.wal.get(..self.flushed).unwrap_or(&self.wal).to_vec()
    }

    fn append_wal(&mut self, bytes: &[u8]) {
        self.wal.extend_from_slice(bytes);
    }

    fn barrier(&mut self) {
        self.flushed = self.wal.len();
    }

    fn install_snapshot(&mut self, bytes: &[u8]) {
        self.snapshot = bytes.to_vec();
        self.wal.clear();
        self.flushed = 0;
    }

    fn lose_unflushed(&mut self) -> usize {
        let lost = self.wal.len().saturating_sub(self.flushed);
        self.wal.truncate(self.flushed);
        lost
    }

    fn wal_len(&self) -> (usize, usize) {
        (self.flushed, self.wal.len())
    }
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// FNV-1a over `bytes`, the per-record integrity check. 32 bits is
/// plenty against torn writes (the only corruption model here); this is
/// not a cryptographic seal.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_check(out: &mut Vec<u8>, check: &PriceCheck) {
    put_u64(out, check.job_id);
    put_str(out, &check.domain);
    put_str(out, &check.url);
    put_u32(out, check.day);
    put_u32(out, check.observations.len() as u32);
    for o in &check.observations {
        out.push(match o.vantage {
            VantageKind::Initiator => 0,
            VantageKind::Ipc => 1,
            VantageKind::Ppc => 2,
        });
        put_u64(out, o.vantage_id);
        put_str(out, o.country.code());
        match &o.city {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                put_str(out, c);
            }
        }
        put_u32(out, o.ip.0);
        put_str(out, &o.raw_text);
        put_str(out, &o.currency);
        put_u64(out, o.amount.to_bits());
        put_u64(out, o.amount_eur.to_bits());
        out.push(u8::from(o.low_confidence));
        out.push(u8::from(o.failed));
    }
}

/// Encodes one WAL record frame:
/// `[magic u8][payload_len u32 LE][checksum u32 LE][payload]`, where the
/// payload is `vt_ms · job · check` in the fixed field order above. All
/// integers little-endian, strings length-prefixed — no map iteration,
/// no float formatting, nothing schedule-dependent: the bytes are a pure
/// function of the record.
pub fn encode_record(vt_ms: u64, job: u64, check: &PriceCheck) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + 96 * check.observations.len());
    put_u64(&mut payload, vt_ms);
    put_u64(&mut payload, job);
    put_check(&mut payload, check);
    let mut out = Vec::with_capacity(9 + payload.len());
    out.push(RECORD_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, checksum(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Cursor over a byte slice; every read is bounds-checked and returns
/// `None` past the end, which recovery treats as "truncated tail".
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        })
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).ok()
    }
}

fn read_observation(r: &mut Reader<'_>) -> Option<PriceObservation> {
    let vantage = match r.u8()? {
        0 => VantageKind::Initiator,
        1 => VantageKind::Ipc,
        2 => VantageKind::Ppc,
        _ => return None,
    };
    let vantage_id = r.u64()?;
    let country = Country::from_code(&r.str()?)?;
    let city = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        _ => return None,
    };
    Some(PriceObservation {
        vantage,
        vantage_id,
        country,
        city,
        ip: IpV4(r.u32()?),
        raw_text: r.str()?,
        currency: r.str()?,
        amount: f64::from_bits(r.u64()?),
        amount_eur: f64::from_bits(r.u64()?),
        low_confidence: r.u8()? != 0,
        failed: r.u8()? != 0,
    })
}

fn read_check(r: &mut Reader<'_>) -> Option<PriceCheck> {
    let job_id = r.u64()?;
    let domain = r.str()?;
    let url = r.str()?;
    let day = r.u32()?;
    let n = r.u32()? as usize;
    // A length claim beyond the remaining bytes is corruption, not an
    // allocation request.
    if n > r.buf.len().saturating_sub(r.pos) {
        return None;
    }
    let mut observations = Vec::with_capacity(n);
    for _ in 0..n {
        observations.push(read_observation(r)?);
    }
    Some(PriceCheck {
        job_id,
        domain,
        url,
        day,
        observations,
    })
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let vt_ms = r.u64()?;
    let job = r.u64()?;
    let check = read_check(&mut r)?;
    // Trailing garbage inside a checksummed frame is corruption too.
    if r.pos != payload.len() {
        return None;
    }
    Some(WalRecord { vt_ms, job, check })
}

/// Decodes a stream of WAL record frames. Returns every whole, intact
/// record plus the byte offset of the end of that valid prefix; the
/// first truncated, magic-less, or checksum-failing frame ends the
/// stream cleanly (the crash-recovery contract — never a panic).
pub fn decode_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut r = Reader { buf: bytes, pos: 0 };
    loop {
        let start = r.pos;
        let frame = (|| {
            if r.u8()? != RECORD_MAGIC {
                return None;
            }
            let len = r.u32()? as usize;
            let sum = r.u32()?;
            let payload = r.take(len)?;
            if checksum(payload) != sum {
                return None;
            }
            decode_payload(payload)
        })();
        match frame {
            Some(rec) => records.push(rec),
            None => return (records, start),
        }
        if r.pos >= bytes.len() {
            return (records, r.pos);
        }
    }
}

/// Offsets of every record boundary in a valid WAL byte stream,
/// including 0 and the total length — the crash points the recovery
/// matrix replays from.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = vec![0];
    let mut r = Reader { buf: bytes, pos: 0 };
    while r.u8() == Some(RECORD_MAGIC) {
        let Some(len) = r.u32() else { break };
        if r.take(4).is_none() || r.take(len as usize).is_none() {
            break;
        }
        out.push(r.pos);
    }
    out
}

/// Encodes a snapshot image: the magic header followed by every record
/// in store order, each in the WAL frame format (so a snapshot is
/// self-checking the same way the log is).
pub fn encode_snapshot(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    for rec in records {
        out.extend_from_slice(&encode_record(rec.vt_ms, rec.job, &rec.check));
    }
    out
}

/// Decodes a snapshot image; a missing or corrupt header yields an
/// empty store (durability cannot invent data, and must not panic).
pub fn decode_snapshot(bytes: &[u8]) -> Vec<WalRecord> {
    match bytes.strip_prefix(&SNAPSHOT_MAGIC) {
        Some(rest) => decode_records(rest).0,
        None => Vec::new(),
    }
}

/// What recovery reconstructed from a [`Storage`].
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every durable record, snapshot first then log tail, deduplicated
    /// by job id (first store wins — the same at-least-once rule the
    /// live path applies).
    pub records: Vec<WalRecord>,
    /// Records contributed by the snapshot image.
    pub snapshot_records: usize,
    /// Records contributed by the log tail (also the live machine's
    /// "records since last snapshot" counter after recovery).
    pub wal_records: usize,
}

/// Replays `storage`: snapshot image first, then the durable log tail,
/// keeping the first record per job. Corrupt or truncated tails are
/// ignored; the result is exactly the durable prefix.
pub fn recover(storage: &dyn Storage) -> Recovered {
    let mut out = Recovered::default();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for rec in decode_snapshot(&storage.read_snapshot()) {
        if seen.insert(rec.job) {
            out.records.push(rec);
            out.snapshot_records += 1;
        }
    }
    let (tail, _) = decode_records(&storage.read_wal());
    for rec in tail {
        out.wal_records += 1;
        if seen.insert(rec.job) {
            out.records.push(rec);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(i: u64) -> PriceObservation {
        PriceObservation {
            vantage: VantageKind::Ipc,
            vantage_id: i,
            country: Country::ES,
            city: i.is_multiple_of(2).then(|| format!("city-{i}")),
            ip: IpV4(i as u32),
            raw_text: format!("EUR {i}.99"),
            currency: "EUR".into(),
            amount: i as f64 + 0.99,
            amount_eur: i as f64 + 0.99,
            low_confidence: false,
            failed: i % 7 == 3,
        }
    }

    fn check(job: u64, n: usize) -> PriceCheck {
        PriceCheck {
            job_id: job,
            domain: "amazon.com".into(),
            url: format!("/p/{job}"),
            day: 3,
            observations: (0..n as u64).map(obs).collect(),
        }
    }

    #[test]
    fn record_roundtrip_is_exact() {
        let c = check(7, 5);
        let bytes = encode_record(1234, 7, &c);
        let (records, consumed) = decode_records(&bytes);
        assert_eq!(consumed, bytes.len());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].vt_ms, 1234);
        assert_eq!(records[0].job, 7);
        assert_eq!(records[0].check, c);
    }

    #[test]
    fn encoding_is_deterministic() {
        let c = check(9, 8);
        assert_eq!(encode_record(55, 9, &c), encode_record(55, 9, &c));
    }

    #[test]
    fn truncated_tail_yields_the_prefix() {
        let mut bytes = encode_record(1, 1, &check(1, 3));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_record(2, 2, &check(2, 3)));
        for cut in first..bytes.len() {
            let (records, consumed) = decode_records(&bytes[..cut]);
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(consumed, first, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_ends_the_stream_at_the_previous_boundary() {
        let mut bytes = encode_record(1, 1, &check(1, 2));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_record(2, 2, &check(2, 2)));
        for flip in first..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[flip] ^= 0xFF;
            let (records, _) = decode_records(&corrupt);
            assert_eq!(records.len(), 1, "flip at {flip}");
            assert_eq!(records[0].job, 1);
        }
    }

    #[test]
    fn boundaries_cover_every_record() {
        let mut bytes = Vec::new();
        for j in 0..4 {
            bytes.extend_from_slice(&encode_record(j, j, &check(j, 2)));
        }
        let bounds = record_boundaries(&bytes);
        assert_eq!(bounds.len(), 5);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), bytes.len());
        for (i, &b) in bounds.iter().enumerate() {
            assert_eq!(decode_records(&bytes[..b]).0.len(), i);
        }
    }

    #[test]
    fn snapshot_roundtrip_and_corrupt_header() {
        let records: Vec<WalRecord> = (0..3)
            .map(|j| WalRecord {
                vt_ms: 10 * j,
                job: j,
                check: check(j, 2),
            })
            .collect();
        let img = encode_snapshot(&records);
        assert_eq!(decode_snapshot(&img), records);
        assert!(decode_snapshot(b"junk").is_empty());
        assert!(decode_snapshot(&[]).is_empty());
    }

    #[test]
    fn mem_storage_loses_exactly_the_unflushed_tail() {
        let mut s = MemStorage::new();
        s.append_wal(b"abc");
        s.barrier();
        s.append_wal(b"defg");
        assert_eq!(s.wal_len(), (3, 7));
        assert_eq!(s.lose_unflushed(), 4);
        assert_eq!(s.read_wal(), b"abc");
        s.install_snapshot(b"img");
        assert_eq!(s.read_snapshot(), b"img");
        assert_eq!(s.wal_len(), (0, 0));
    }

    #[test]
    fn recover_dedups_by_job_keeping_the_first_store() {
        let snap = encode_snapshot(&[WalRecord {
            vt_ms: 5,
            job: 1,
            check: check(1, 2),
        }]);
        let mut wal = encode_record(9, 1, &check(1, 5)); // redelivered job 1
        wal.extend_from_slice(&encode_record(11, 2, &check(2, 1)));
        let storage = MemStorage::with_contents(snap, wal);
        let rec = recover(&storage);
        assert_eq!(rec.snapshot_records, 1);
        assert_eq!(rec.wal_records, 2);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].check.observations.len(), 2, "first wins");
    }
}
