//! Observation records — the rows the Database server stores and the
//! measurement study analyzes (paper §6–§7).

use serde::{Deserialize, Serialize};

use sheriff_geo::{Country, IpV4};

/// Which kind of vantage point produced an observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VantageKind {
    /// The user who initiated the price check.
    Initiator,
    /// Infrastructure Proxy Client — clean browser, fixed location.
    Ipc,
    /// Peer Proxy Client — real user's browser near the initiator.
    Ppc,
}

/// One price observation from one vantage point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PriceObservation {
    /// Vantage kind.
    pub vantage: VantageKind,
    /// Stable vantage identifier (IPC index or peer id).
    pub vantage_id: u64,
    /// Country of the vantage point.
    pub country: Country,
    /// City of the vantage point, when known.
    pub city: Option<String>,
    /// Source address.
    pub ip: IpV4,
    /// Raw selected/extracted price text (e.g. `"CAD912"`).
    pub raw_text: String,
    /// Detected source currency.
    pub currency: String,
    /// Amount in the source currency.
    pub amount: f64,
    /// Amount converted to EUR.
    pub amount_eur: f64,
    /// Low detection confidence (red asterisk on the result page)?
    pub low_confidence: bool,
    /// Fetch was CAPTCHA-blocked or extraction failed.
    pub failed: bool,
}

/// One complete price check request: the initiator's selection plus every
/// proxy response (paper Fig. 1 / Fig. 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PriceCheck {
    /// Globally unique job id assigned by the Coordinator.
    pub job_id: u64,
    /// Retailer domain.
    pub domain: String,
    /// Product URL path.
    pub url: String,
    /// Day index of the study.
    pub day: u32,
    /// All successful + failed observations (initiator first).
    pub observations: Vec<PriceObservation>,
}

impl PriceCheck {
    /// Successful observations only.
    pub fn valid(&self) -> impl Iterator<Item = &PriceObservation> {
        self.observations.iter().filter(|o| !o.failed)
    }

    /// Observations whose currency detection is trustworthy. The paper's
    /// analyses "excluded to the best of our ability the effects of …
    /// currency" (§1); low-confidence conversions (the Fig. 2 asterisk)
    /// stay on the result page but are excluded from spread statistics.
    pub fn confident(&self) -> impl Iterator<Item = &PriceObservation> {
        self.observations
            .iter()
            .filter(|o| !o.failed && !o.low_confidence)
    }

    /// Minimum observed EUR price among confident observations.
    pub fn min_eur(&self) -> Option<f64> {
        self.confident()
            .map(|o| o.amount_eur)
            .min_by(|a, b| a.partial_cmp(b).expect("NaN price"))
    }

    /// Maximum observed EUR price among confident observations.
    pub fn max_eur(&self) -> Option<f64> {
        self.confident()
            .map(|o| o.amount_eur)
            .max_by(|a, b| a.partial_cmp(b).expect("NaN price"))
    }

    /// Relative spread `(max - min) / min` over confident observations;
    /// `None` without ≥2 of them.
    pub fn relative_spread(&self) -> Option<f64> {
        let n = self.confident().count();
        if n < 2 {
            return None;
        }
        let min = self.min_eur()?;
        let max = self.max_eur()?;
        if min <= 0.0 {
            return None;
        }
        Some((max - min) / min)
    }

    /// True when any two valid observations differ by more than `epsilon`
    /// relative — the paper's "price check that resulted in some
    /// difference of price".
    pub fn has_difference(&self, epsilon: f64) -> bool {
        self.relative_spread().is_some_and(|s| s > epsilon)
    }

    /// Confident observations restricted to one country.
    pub fn in_country(&self, country: Country) -> Vec<&PriceObservation> {
        self.confident().filter(|o| o.country == country).collect()
    }

    /// Relative spread among observations *within* `country` — the
    /// within-country difference that flags candidate PDI-PD (§6.3).
    pub fn within_country_spread(&self, country: Country) -> Option<f64> {
        let obs = self.in_country(country);
        if obs.len() < 2 {
            return None;
        }
        let min = obs
            .iter()
            .map(|o| o.amount_eur)
            .min_by(|a, b| a.partial_cmp(b).expect("NaN"))?;
        let max = obs
            .iter()
            .map(|o| o.amount_eur)
            .max_by(|a, b| a.partial_cmp(b).expect("NaN"))?;
        if min <= 0.0 {
            return None;
        }
        Some((max - min) / min)
    }

    /// Country where the cheapest confident observation sits.
    pub fn cheapest_country(&self) -> Option<Country> {
        self.confident()
            .min_by(|a, b| a.amount_eur.partial_cmp(&b.amount_eur).expect("NaN"))
            .map(|o| o.country)
    }

    /// Country where the most expensive confident observation sits.
    pub fn most_expensive_country(&self) -> Option<Country> {
        self.confident()
            .max_by(|a, b| a.amount_eur.partial_cmp(&b.amount_eur).expect("NaN"))
            .map(|o| o.country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_geo::IpV4;

    fn obs(country: Country, eur: f64, failed: bool) -> PriceObservation {
        PriceObservation {
            vantage: VantageKind::Ipc,
            vantage_id: 0,
            country,
            city: None,
            ip: IpV4(0),
            raw_text: format!("EUR{eur}"),
            currency: "EUR".into(),
            amount: eur,
            amount_eur: eur,
            low_confidence: false,
            failed,
        }
    }

    fn check(observations: Vec<PriceObservation>) -> PriceCheck {
        PriceCheck {
            job_id: 1,
            domain: "shop.com".into(),
            url: "/p/1".into(),
            day: 0,
            observations,
        }
    }

    #[test]
    fn spread_and_difference() {
        let c = check(vec![
            obs(Country::ES, 100.0, false),
            obs(Country::US, 150.0, false),
            obs(Country::JP, 120.0, false),
        ]);
        assert_eq!(c.min_eur(), Some(100.0));
        assert_eq!(c.max_eur(), Some(150.0));
        assert!((c.relative_spread().unwrap() - 0.5).abs() < 1e-12);
        assert!(c.has_difference(0.01));
        assert!(!c.has_difference(0.6));
        assert_eq!(c.cheapest_country(), Some(Country::ES));
        assert_eq!(c.most_expensive_country(), Some(Country::US));
    }

    #[test]
    fn failed_observations_ignored() {
        let c = check(vec![
            obs(Country::ES, 100.0, false),
            obs(Country::US, 900.0, true),
        ]);
        assert_eq!(c.max_eur(), Some(100.0));
        assert_eq!(c.relative_spread(), None, "single valid observation");
        assert!(!c.has_difference(0.0));
    }

    #[test]
    fn within_country_spread_needs_two_points() {
        let c = check(vec![
            obs(Country::ES, 100.0, false),
            obs(Country::ES, 103.0, false),
            obs(Country::US, 170.0, false),
        ]);
        let s = c.within_country_spread(Country::ES).unwrap();
        assert!((s - 0.03).abs() < 1e-12);
        assert_eq!(c.within_country_spread(Country::US), None);
        assert_eq!(c.within_country_spread(Country::JP), None);
    }

    #[test]
    fn identical_prices_no_difference() {
        let c = check(vec![
            obs(Country::ES, 50.0, false),
            obs(Country::FR, 50.0, false),
        ]);
        assert_eq!(c.relative_spread(), Some(0.0));
        assert!(!c.has_difference(0.001));
    }

    #[test]
    fn empty_check_is_benign() {
        let c = check(vec![]);
        assert_eq!(c.min_eur(), None);
        assert_eq!(c.relative_spread(), None);
        assert!(!c.has_difference(0.0));
        assert_eq!(c.cheapest_country(), None);
    }
}
