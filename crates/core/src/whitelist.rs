//! Domain whitelisting and PII URL blacklisting (paper §2.3, §3.2).
//!
//! Every price check is filtered against a manually curated whitelist of
//! e-commerce domains "to make sure that we only allow requests towards
//! sanctioned e-commerce websites"; rejected requests are logged for manual
//! inspection. Additionally, account/profile-management URLs are
//! blacklisted because they are likely to contain PII — even a whitelisted
//! domain's `/account` page must never be fetched.

use std::collections::BTreeSet;

/// The Coordinator's request filter.
#[derive(Clone, Debug, Default)]
pub struct Whitelist {
    domains: BTreeSet<String>,
    /// URL path fragments that indicate PII-bearing pages.
    pii_fragments: Vec<String>,
    /// Rejected (domain, url) pairs kept for manual inspection.
    rejected_log: Vec<(String, String)>,
}

impl Whitelist {
    /// Empty whitelist with the default PII fragment list.
    pub fn new() -> Self {
        Whitelist {
            domains: BTreeSet::new(),
            pii_fragments: [
                "/account",
                "/profile",
                "/settings",
                "/login",
                "/signin",
                "/checkout",
                "/order-history",
                "/wishlist",
                "/address",
            ]
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
            rejected_log: Vec::new(),
        }
    }

    /// Builds from an initial domain set.
    pub fn with_domains<I: IntoIterator<Item = S>, S: Into<String>>(domains: I) -> Self {
        let mut w = Self::new();
        for d in domains {
            w.allow(&d.into());
        }
        w
    }

    /// Adds a sanctioned domain (the manual curation step).
    pub fn allow(&mut self, domain: &str) {
        self.domains.insert(domain.to_ascii_lowercase());
    }

    /// Number of sanctioned domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when no domain is sanctioned.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Checks a price-check request URL. `Ok(domain)` when permitted;
    /// rejected requests are recorded for later whitelist curation.
    pub fn check(&mut self, url: &str) -> Result<String, WhitelistRejection> {
        let (domain, path) = split_url(url);
        let domain = domain.to_ascii_lowercase();
        if !self.domains.contains(&domain) {
            self.rejected_log.push((domain.clone(), url.to_string()));
            return Err(WhitelistRejection::UnknownDomain);
        }
        let path_lc = path.to_ascii_lowercase();
        if self.pii_fragments.iter().any(|f| path_lc.contains(f)) {
            self.rejected_log.push((domain, url.to_string()));
            return Err(WhitelistRejection::PiiUrl);
        }
        Ok(domain)
    }

    /// The rejected-request log (manual inspection queue).
    pub fn rejected(&self) -> &[(String, String)] {
        &self.rejected_log
    }
}

/// Why a request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WhitelistRejection {
    /// Domain not in the sanctioned set.
    UnknownDomain,
    /// URL looks like a PII-bearing page (account, checkout, …).
    PiiUrl,
}

impl std::fmt::Display for WhitelistRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhitelistRejection::UnknownDomain => write!(f, "domain is not whitelisted"),
            WhitelistRejection::PiiUrl => write!(f, "URL is blacklisted as PII-bearing"),
        }
    }
}

impl std::error::Error for WhitelistRejection {}

/// Splits `"shop.com/product/1"` or `"https://shop.com/product/1"` into
/// (domain, path).
pub fn split_url(url: &str) -> (&str, &str) {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    match rest.find('/') {
        Some(i) => rest.split_at(i),
        None => (rest, "/"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_whitelisted_product_pages() {
        let mut w = Whitelist::with_domains(["shop.com"]);
        assert_eq!(w.check("https://shop.com/product/1").unwrap(), "shop.com");
        assert_eq!(w.check("shop.com/product/2").unwrap(), "shop.com");
        assert!(w.rejected().is_empty());
    }

    #[test]
    fn rejects_unknown_domains_and_logs() {
        let mut w = Whitelist::with_domains(["shop.com"]);
        assert_eq!(
            w.check("https://evil.example/x").unwrap_err(),
            WhitelistRejection::UnknownDomain
        );
        assert_eq!(w.rejected().len(), 1);
        assert_eq!(w.rejected()[0].0, "evil.example");
    }

    #[test]
    fn rejects_pii_pages_on_whitelisted_domains() {
        let mut w = Whitelist::with_domains(["shop.com"]);
        for url in [
            "shop.com/account/details",
            "shop.com/user/PROFILE",
            "https://shop.com/checkout/step1",
        ] {
            assert_eq!(
                w.check(url).unwrap_err(),
                WhitelistRejection::PiiUrl,
                "{url}"
            );
        }
        assert_eq!(w.rejected().len(), 3);
    }

    #[test]
    fn case_insensitive_domains() {
        let mut w = Whitelist::with_domains(["Shop.COM"]);
        assert!(w.check("SHOP.com/p/1").is_ok());
    }

    #[test]
    fn bare_domain_gets_root_path() {
        assert_eq!(split_url("shop.com"), ("shop.com", "/"));
        assert_eq!(split_url("https://a.b/c/d"), ("a.b", "/c/d"));
    }
}
