//! Doppelgangers: cluster-trained fake browsing profiles (paper §3.6.2,
//! §3.7).
//!
//! A doppelganger is "a browser instance built to closely represent the
//! browsing profiles of a cluster of real users". The Coordinator trains
//! one per k-means centroid by visiting the centroid's domains and
//! accumulating client-side state; PPCs past their pollution budget fetch
//! with the doppelganger's cookies instead of their own.
//!
//! Identifiers are 256-bit random bearer tokens: the PPC fetches the
//! client-side state from the Coordinator through an anonymity network,
//! and the token is the *only* credential — "the Coordinator grants the
//! doppelganger client-side state only to those who submit the correct
//! token" (§3.7).

use std::collections::{HashMap, HashSet};

use rand::Rng;

use sheriff_market::{Cookie, CookieJar};

use crate::pollution::{FetchMode, PollutionLedger};

/// 256-bit bearer token identifying a doppelganger.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DoppelgangerId(pub [u8; 32]);

impl DoppelgangerId {
    /// Fresh random token.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut id = [0u8; 32];
        rng.fill(&mut id);
        DoppelgangerId(id)
    }

    /// Hex rendering (token display in the monitoring panel).
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for DoppelgangerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Doppelganger({}…)", &self.to_hex()[..8])
    }
}

// Bearer tokens travel inside protocol messages as 64-char hex strings
// (the vendored serde has no `Deserialize for [u8; 32]`).
impl serde::Serialize for DoppelgangerId {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_hex())
    }
}

impl serde::Deserialize for DoppelgangerId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::String(s) = v else {
            return Err(serde::DeError::new("DoppelgangerId: expected hex string"));
        };
        if s.len() != 64 {
            return Err(serde::DeError::new("DoppelgangerId: expected 64 hex chars"));
        }
        let mut id = [0u8; 32];
        for (i, byte) in id.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| serde::DeError::new("DoppelgangerId: bad hex"))?;
        }
        Ok(DoppelgangerId(id))
    }
}

/// One trained doppelganger.
#[derive(Clone, Debug)]
pub struct Doppelganger {
    /// Bearer token.
    pub id: DoppelgangerId,
    /// The centroid profile vector it was trained from.
    pub profile_vector: Vec<u64>,
    /// Accumulated client-side state.
    pub client_state: CookieJar,
    /// Pollution ledger: 1 serve per 4 training visits per domain.
    ledger: PollutionLedger,
    /// Regeneration count.
    pub generation: u32,
}

impl Doppelganger {
    /// Trains a doppelganger from a centroid over `universe` domains: each
    /// domain is "visited" `4 × centroid value` times, accumulating a
    /// first-party cookie per visited domain (so the budget rule
    /// "one request per 4 training visits" falls straight out of the
    /// ledger).
    pub fn train<R: Rng + ?Sized>(
        centroid: &[u64],
        universe: &[String],
        rng: &mut R,
    ) -> Doppelganger {
        assert_eq!(centroid.len(), universe.len(), "centroid/universe mismatch");
        let id = DoppelgangerId::random(rng);
        let mut client_state = CookieJar::new();
        let mut ledger = PollutionLedger::new();
        for (domain, &weight) in universe.iter().zip(centroid) {
            if weight == 0 {
                continue;
            }
            let visits = weight * 4;
            ledger.record_real_visits(domain, visits);
            client_state.set(
                domain,
                Cookie {
                    name: "session_id".into(),
                    value: format!("{:08x}", rng.gen::<u32>()),
                    third_party: false,
                },
            );
            client_state.set(
                domain,
                Cookie {
                    name: "visit_count".into(),
                    value: visits.to_string(),
                    third_party: false,
                },
            );
        }
        Doppelganger {
            id,
            profile_vector: centroid.to_vec(),
            client_state,
            ledger,
            generation: 0,
        }
    }

    /// Decides whether this doppelganger can serve a fetch towards
    /// `domain`, charging its budget. Domains it never "visited" are served
    /// clean (state deleted afterwards, nothing charged), matching §3.6.2.
    pub fn serve(&mut self, domain: &str) -> FetchMode {
        self.ledger.decide_and_charge(domain)
    }

    /// True when ≥50% of its visited domains are saturated — the paper's
    /// regeneration trigger.
    pub fn is_saturated(&self) -> bool {
        self.ledger.saturation() >= 0.5
    }

    /// Regenerates in place: new token, fresh client state, reset budgets.
    pub fn regenerate<R: Rng + ?Sized>(&mut self, universe: &[String], rng: &mut R) {
        let fresh = Doppelganger::train(&self.profile_vector, universe, rng);
        self.id = fresh.id;
        self.client_state = fresh.client_state;
        self.ledger = fresh.ledger;
        self.generation += 1;
    }
}

/// Coordinator-side store: token → doppelganger. The Coordinator never
/// learns which peer asks for which token (requests arrive anonymized).
#[derive(Debug, Default)]
pub struct DoppelgangerStore {
    by_token: HashMap<DoppelgangerId, Doppelganger>,
    /// Tokens rotated out by regeneration. An honest peer can race a
    /// rotation and present one of these; that must *not* score as a
    /// mismatch (only never-issued tokens are forgeries).
    retired: HashSet<DoppelgangerId>,
}

impl DoppelgangerStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trains one doppelganger per centroid; returns tokens in centroid
    /// order (these go to the Aggregator for cluster→token mapping).
    pub fn train_all<R: Rng + ?Sized>(
        &mut self,
        centroids: &[Vec<u64>],
        universe: &[String],
        rng: &mut R,
    ) -> Vec<DoppelgangerId> {
        centroids
            .iter()
            .map(|c| {
                let d = Doppelganger::train(c, universe, rng);
                let id = d.id;
                self.by_token.insert(id, d);
                id
            })
            .collect()
    }

    /// Bearer-token lookup of the client-side state.
    pub fn client_state(&self, token: &DoppelgangerId) -> Option<&CookieJar> {
        self.by_token.get(token).map(|d| &d.client_state)
    }

    /// Whether `token` names a live doppelganger. A request bearing an
    /// unknown token is a *doppelganger mismatch* — either a stale replay
    /// of a rotated token or an outright forgery — and the defense layer
    /// scores it (see `protocol::defense`).
    pub fn is_known(&self, token: &DoppelgangerId) -> bool {
        self.by_token.contains_key(token)
    }

    /// Charges a serve and regenerates on saturation. Returns the (possibly
    /// new) token and the fetch mode — callers must switch to the returned
    /// token, mirroring how a regenerated doppelganger gets a new identity.
    pub fn serve<R: Rng + ?Sized>(
        &mut self,
        token: &DoppelgangerId,
        domain: &str,
        universe: &[String],
        rng: &mut R,
    ) -> Option<(DoppelgangerId, FetchMode)> {
        let mut d = self.by_token.remove(token)?;
        let mode = d.serve(domain);
        if d.is_saturated() {
            d.regenerate(universe, rng);
        }
        let new_token = d.id;
        if new_token != *token {
            self.retired.insert(*token);
        }
        self.by_token.insert(new_token, d);
        Some((new_token, mode))
    }

    /// Whether `token` once named a doppelganger that has since been
    /// regenerated under a new identity.
    pub fn is_retired(&self, token: &DoppelgangerId) -> bool {
        self.retired.contains(token)
    }

    /// Number of live doppelgangers.
    pub fn len(&self) -> usize {
        self.by_token.len()
    }

    /// True when no doppelgangers are trained.
    pub fn is_empty(&self) -> bool {
        self.by_token.is_empty()
    }
}

/// Aggregator-side directory: peer → cluster → token. The Aggregator knows
/// the mapping but never the profiles (paper §3.7's trust split).
#[derive(Debug, Default)]
pub struct AggregatorDirectory {
    peer_cluster: HashMap<u64, usize>,
    cluster_tokens: Vec<DoppelgangerId>,
}

impl AggregatorDirectory {
    /// Builds from k-means assignments and the Coordinator-issued tokens.
    pub fn new(assignments: &[(u64, usize)], cluster_tokens: Vec<DoppelgangerId>) -> Self {
        AggregatorDirectory {
            peer_cluster: assignments.iter().copied().collect(),
            cluster_tokens,
        }
    }

    /// Answers a peer's "Doppelganger ID request" (Fig. 1 step 3.3).
    pub fn token_for(&self, peer: u64) -> Option<DoppelgangerId> {
        let cluster = *self.peer_cluster.get(&peer)?;
        self.cluster_tokens.get(cluster).copied()
    }

    /// Updates a cluster's token after regeneration.
    pub fn update_token(&mut self, cluster: usize, token: DoppelgangerId) {
        if let Some(t) = self.cluster_tokens.get_mut(cluster) {
            *t = token;
        }
    }

    /// Cluster of a peer.
    pub fn cluster_of(&self, peer: u64) -> Option<usize> {
        self.peer_cluster.get(&peer).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe() -> Vec<String> {
        vec!["a.com".into(), "b.com".into(), "c.com".into()]
    }

    #[test]
    fn training_builds_state_proportional_to_centroid() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Doppelganger::train(&[2, 0, 5], &universe(), &mut rng);
        assert!(!d.client_state.get("a.com").is_empty());
        assert!(
            d.client_state.get("b.com").is_empty(),
            "zero-weight domain untouched"
        );
        assert_eq!(d.client_state.value("c.com", "visit_count"), Some("20"));
    }

    #[test]
    fn budget_is_centroid_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Doppelganger::train(&[2], &["a.com".to_string()], &mut rng);
        // 8 training visits → budget 2.
        assert_eq!(d.serve("a.com"), FetchMode::RealOwnState);
        assert_eq!(d.serve("a.com"), FetchMode::RealOwnState);
        assert_eq!(
            d.serve("a.com"),
            FetchMode::Doppelganger,
            "budget exhausted"
        );
    }

    #[test]
    fn unvisited_domain_serves_clean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Doppelganger::train(&[1, 0], &universe()[..2], &mut rng);
        assert_eq!(d.serve("b.com"), FetchMode::CleanOwnState);
    }

    #[test]
    fn saturation_triggers_regeneration_with_new_token() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = DoppelgangerStore::new();
        let uni = vec!["a.com".to_string()];
        let tokens = store.train_all(&[vec![1]], &uni, &mut rng);
        let t0 = tokens[0];
        // Budget is 1: first serve consumes it and saturates (1 of 1
        // domains saturated ≥ 50%) → regeneration.
        let (t1, mode) = store.serve(&t0, "a.com", &uni, &mut rng).unwrap();
        assert_eq!(mode, FetchMode::RealOwnState);
        assert_ne!(t0, t1, "regeneration must rotate the bearer token");
        assert!(store.client_state(&t0).is_none(), "old token revoked");
        assert!(store.client_state(&t1).is_some());
        // Generation bumped.
        let d = store.by_token.get(&t1).unwrap();
        assert_eq!(d.generation, 1);
    }

    #[test]
    fn bearer_token_is_required() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = DoppelgangerStore::new();
        store.train_all(&[vec![1, 1, 1]], &universe(), &mut rng);
        let forged = DoppelgangerId::random(&mut rng);
        assert!(store.client_state(&forged).is_none());
        assert!(store
            .serve(&forged, "a.com", &universe(), &mut rng)
            .is_none());
    }

    #[test]
    fn directory_maps_peer_to_cluster_token() {
        let mut rng = StdRng::seed_from_u64(6);
        let t0 = DoppelgangerId::random(&mut rng);
        let t1 = DoppelgangerId::random(&mut rng);
        let dir = AggregatorDirectory::new(&[(100, 0), (200, 1), (300, 0)], vec![t0, t1]);
        assert_eq!(dir.token_for(100), Some(t0));
        assert_eq!(dir.token_for(200), Some(t1));
        assert_eq!(dir.token_for(300), Some(t0));
        assert_eq!(dir.token_for(999), None);
        assert_eq!(dir.cluster_of(200), Some(1));
    }

    #[test]
    fn token_hex_is_64_chars() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = DoppelgangerId::random(&mut rng);
        assert_eq!(t.to_hex().len(), 64);
    }
}
