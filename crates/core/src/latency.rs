//! Geography-aware latency for the simulated deployment.
//!
//! Control messages between the add-ons, the Coordinator, and the
//! Measurement servers cross the real Internet; their delay depends on
//! where the endpoints sit. [`GeoLatency`] prices each edge from the two
//! nodes' countries: same country < same region < cross-region, each with
//! lognormal jitter — the classic wide-area RTT shape. (Page-fetch delays
//! are modeled separately and dominate; this matters for protocol chatter
//! like the doppelganger round-trip of Fig. 1 steps 3.3–3.4.)

use rand::rngs::StdRng;

use sheriff_geo::country::Region;
use sheriff_geo::Country;
use sheriff_netsim::latency::sample_standard_normal;
use sheriff_netsim::{LatencyModel, NodeId, SimTime};

/// One-way base latencies in milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct GeoLatencyConfig {
    /// Same country.
    pub intra_country_ms: u64,
    /// Same region, different country.
    pub intra_region_ms: u64,
    /// Different region.
    pub cross_region_ms: u64,
    /// Lognormal sigma applied to the base.
    pub sigma: f64,
}

impl Default for GeoLatencyConfig {
    fn default() -> Self {
        GeoLatencyConfig {
            intra_country_ms: 15,
            intra_region_ms: 35,
            cross_region_ms: 110,
            sigma: 0.25,
        }
    }
}

/// A [`LatencyModel`] that knows which country each node lives in.
/// Nodes without a registered country (infrastructure in "the cloud") use
/// the intra-region base.
#[derive(Debug)]
pub struct GeoLatency {
    cfg: GeoLatencyConfig,
    countries: Vec<Option<Country>>,
}

impl GeoLatency {
    /// Builds from a per-node country table indexed by [`NodeId`].
    pub fn new(cfg: GeoLatencyConfig, countries: Vec<Option<Country>>) -> Self {
        GeoLatency { cfg, countries }
    }

    fn country(&self, n: NodeId) -> Option<Country> {
        self.countries.get(n.0).copied().flatten()
    }

    fn base_ms(&self, from: NodeId, to: NodeId) -> u64 {
        match (self.country(from), self.country(to)) {
            (Some(a), Some(b)) if a == b => self.cfg.intra_country_ms,
            (Some(a), Some(b)) if region_of(a) == region_of(b) => self.cfg.intra_region_ms,
            (Some(_), Some(_)) => self.cfg.cross_region_ms,
            // One endpoint is cloud infrastructure: regional hop.
            _ => self.cfg.intra_region_ms,
        }
    }
}

fn region_of(c: Country) -> Region {
    c.region()
}

impl LatencyModel for GeoLatency {
    fn latency(&mut self, from: NodeId, to: NodeId, rng: &mut StdRng) -> SimTime {
        let base = self.base_ms(from, to) as f64;
        let z = sample_standard_normal(rng);
        let ms = (base * (self.cfg.sigma * z).exp()).round().max(1.0) as u64;
        SimTime::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> GeoLatency {
        GeoLatency::new(
            GeoLatencyConfig::default(),
            vec![
                Some(Country::ES), // 0
                Some(Country::ES), // 1
                Some(Country::FR), // 2
                Some(Country::JP), // 3
                None,              // 4: cloud
            ],
        )
    }

    fn median_ms(m: &mut GeoLatency, a: usize, b: usize) -> u64 {
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<u64> = (0..401)
            .map(|_| m.latency(NodeId(a), NodeId(b), &mut rng).as_millis())
            .collect();
        samples.sort_unstable();
        samples[200]
    }

    #[test]
    fn latency_orders_by_distance() {
        let mut m = model();
        let same_country = median_ms(&mut m, 0, 1);
        let same_region = median_ms(&mut m, 0, 2);
        let cross_region = median_ms(&mut m, 0, 3);
        assert!(
            same_country < same_region,
            "{same_country} vs {same_region}"
        );
        assert!(
            same_region < cross_region,
            "{same_region} vs {cross_region}"
        );
    }

    #[test]
    fn cloud_nodes_price_as_regional() {
        let mut m = model();
        let cloud = median_ms(&mut m, 0, 4);
        let regional = median_ms(&mut m, 0, 2);
        // Within jitter of each other.
        assert!(
            (cloud as i64 - regional as i64).abs() < 15,
            "{cloud} vs {regional}"
        );
    }

    #[test]
    fn latency_is_always_positive() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(m.latency(NodeId(0), NodeId(3), &mut rng).as_millis() >= 1);
        }
    }

    #[test]
    fn unknown_node_ids_fall_back_gracefully() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let t = m.latency(NodeId(99), NodeId(100), &mut rng);
        assert!(t.as_millis() > 0);
    }
}
