//! The add-on's browser model: history, cookies, and the sandbox
//! (paper §3.1.2, §3.6.1).
//!
//! The sandbox is the mechanism that lets a peer fetch product pages on
//! behalf of strangers without keeping any local trace: cookies set during
//! the fetch are intercepted and deleted (whether set via HTTP headers or
//! JavaScript — in this model, whatever the retailer's response carries),
//! and the history/cache records of the fetched URL are removed. §3.6.1
//! validated exactly this with beta testers and clean VMs; the
//! [`SandboxReport`] type is this build's equivalent of that validation.

use sheriff_kmeans::RawHistory;
use sheriff_market::{Cookie, CookieJar};

/// One user's browser state as the add-on sees it.
#[derive(Clone, Debug, Default)]
pub struct BrowserProfile {
    /// Domain-level history (full URLs are never stored — §2.2 req. 3).
    pub history: RawHistory,
    /// Cookie jar (first- and third-party).
    pub cookies: CookieJar,
    /// Ordered log of visited URLs for cache-trace modelling; cleared per
    /// sandboxed fetch.
    url_trace: Vec<String>,
}

impl BrowserProfile {
    /// Fresh profile (a clean VM).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a real user visit: history + trace.
    pub fn visit(&mut self, domain: &str, url: &str) {
        self.history.record(domain, 1);
        self.url_trace.push(url.to_string());
    }

    /// The URL trace (models browser cache + history entries).
    pub fn url_trace(&self) -> &[String] {
        &self.url_trace
    }

    /// Applies response cookies from a normal (non-sandboxed) fetch.
    pub fn apply_cookies(&mut self, set_cookies: &[(String, Cookie)]) {
        for (domain, cookie) in set_cookies {
            self.cookies.set(domain, cookie.clone());
        }
    }

    /// Runs `fetch` inside a sandbox: the closure receives the jar to send
    /// (the real one — PDI-PD detection requires exposing real state,
    /// §3.6) and returns the response's set-cookies plus the fetched URL.
    /// After the closure, every trace of the fetch is removed and a
    /// [`SandboxReport`] proves it.
    pub fn sandboxed_fetch<F>(&mut self, fetch: F) -> SandboxReport
    where
        F: FnOnce(&CookieJar) -> (Vec<(String, Cookie)>, String),
    {
        let jar_before = self.cookies.snapshot();
        let trace_before = self.url_trace.len();
        let history_total_before = self.history.total_visits();

        let (set_cookies, fetched_url) = fetch(&self.cookies);

        // Apply what the browser would have stored…
        for (domain, cookie) in &set_cookies {
            self.cookies.set(domain, cookie.clone());
        }
        self.url_trace.push(fetched_url.clone());

        // …then clean it all (cookie interception + history/cache service).
        let added = self.cookies.added_since(&jar_before);
        self.cookies = jar_before.clone();
        let trace_added = self
            .url_trace
            .get(trace_before..)
            .is_some_and(|tail| !tail.is_empty() && tail.contains(&fetched_url));
        self.url_trace.truncate(trace_before);

        SandboxReport {
            cookies_intercepted: added.len(),
            cookies_clean: self.cookies == jar_before,
            history_clean: self.history.total_visits() == history_total_before,
            // The fetch's trace entry must be gone; entries from the user's
            // own earlier visits to the same URL legitimately remain.
            trace_clean: self.url_trace.len() == trace_before && trace_added,
        }
    }
}

/// Post-fetch validation: the §3.6.1 beta-test checks as a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SandboxReport {
    /// Cookies the fetch tried to install (all intercepted).
    pub cookies_intercepted: usize,
    /// Jar identical to the pre-fetch snapshot.
    pub cookies_clean: bool,
    /// History untouched.
    pub history_clean: bool,
    /// No URL trace (cache/history record) left behind.
    pub trace_clean: bool,
}

impl SandboxReport {
    /// True when no trace of the remote fetch remains.
    pub fn is_clean(&self) -> bool {
        self.cookies_clean && self.history_clean && self.trace_clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cookie(name: &str) -> Cookie {
        Cookie {
            name: name.into(),
            value: "v".into(),
            third_party: false,
        }
    }

    #[test]
    fn normal_visits_accumulate() {
        let mut b = BrowserProfile::new();
        b.visit("shop.com", "shop.com/p/1");
        b.visit("shop.com", "shop.com/p/2");
        b.visit("news.com", "news.com/");
        assert_eq!(b.history.count("shop.com"), 2);
        assert_eq!(b.url_trace().len(), 3);
    }

    #[test]
    fn sandbox_removes_cookies_and_trace() {
        let mut b = BrowserProfile::new();
        b.visit("other.com", "other.com/");
        b.apply_cookies(&[("other.com".into(), cookie("mine"))]);

        let report = b.sandboxed_fetch(|_jar| {
            (
                vec![
                    ("shop.com".into(), cookie("session")),
                    (
                        "tracker.example".into(),
                        Cookie {
                            name: "uid".into(),
                            value: "1".into(),
                            third_party: true,
                        },
                    ),
                ],
                "shop.com/product/9".to_string(),
            )
        });

        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.cookies_intercepted, 2);
        assert!(b.cookies.get("shop.com").is_empty());
        assert!(b.cookies.get("tracker.example").is_empty());
        assert_eq!(b.cookies.value("other.com", "mine"), Some("v"));
        assert!(!b.url_trace().iter().any(|u| u.contains("shop.com")));
        assert_eq!(b.history.count("shop.com"), 0);
    }

    #[test]
    fn sandbox_sends_real_state() {
        let mut b = BrowserProfile::new();
        b.apply_cookies(&[("shop.com".into(), cookie("loyal_customer"))]);
        let mut sent = None;
        let _ = b.sandboxed_fetch(|jar| {
            sent = Some(jar.value("shop.com", "loyal_customer").map(str::to_string));
            (vec![], "shop.com/p/1".to_string())
        });
        assert_eq!(
            sent.unwrap().as_deref(),
            Some("v"),
            "real state exposed to fetch"
        );
    }

    #[test]
    fn sandbox_preserves_preexisting_cookie_values() {
        // The retailer overwrites an existing cookie during the fetch; the
        // sandbox must restore the original value.
        let mut b = BrowserProfile::new();
        b.apply_cookies(&[("shop.com".into(), cookie("session"))]);
        let report = b.sandboxed_fetch(|_| {
            (
                vec![(
                    "shop.com".into(),
                    Cookie {
                        name: "session".into(),
                        value: "POLLUTED".into(),
                        third_party: false,
                    },
                )],
                "shop.com/p/2".to_string(),
            )
        });
        assert!(report.is_clean());
        assert_eq!(b.cookies.value("shop.com", "session"), Some("v"));
    }

    #[test]
    fn repeated_sandboxed_fetches_stay_clean() {
        let mut b = BrowserProfile::new();
        for i in 0..50 {
            let report = b.sandboxed_fetch(|_| {
                (
                    vec![("shop.com".into(), cookie(&format!("c{i}")))],
                    format!("shop.com/p/{i}"),
                )
            });
            assert!(report.is_clean(), "iteration {i}");
        }
        assert!(b.cookies.is_empty());
        assert!(b.url_trace().is_empty());
    }
}
