//! The whole Price $heriff as a distributed system over the discrete-event
//! simulator (paper Fig. 1 / Fig. 3 / Fig. 6).
//!
//! Node roster: one Coordinator, one Aggregator, N Measurement servers, an
//! optional dedicated Database server (v2) — v1 integrates the DB into the
//! Measurement server, the bottleneck Table 1 quantifies — plus 30 IPCs and
//! any number of PPC/add-on nodes. The synthetic web ([`World`]) sits
//! behind an `Arc<Mutex<_>>`: fetch *timing* is simulated explicitly (the
//! heavy-tailed proxy delays of §5), only content generation is immediate.
//!
//! The §3.2 protocol itself lives in [`crate::protocol`] as sans-IO state
//! machines; this module is the *discrete-event adapter*. Each netsim node
//! wraps one role machine, translates deliveries into protocol events,
//! maps the emitted `(Address, ProtoMsg)` commands back onto `NodeId`s,
//! samples fetch latency for `SendFetched` outputs, and turns the
//! machines' observable outcomes into telemetry. The TCP deployment in
//! `sheriff-wire` drives the *same* machines, so both backends execute
//! one protocol implementation.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;
use rand::SeedableRng;

use sheriff_geo::{Country, GeoLocator, Granularity, IpAllocator};
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::{
    latency::sample_standard_normal, ByzStats, ByzantinePlan, Ctx, FaultPlan, FaultStats, Node,
    NodeId, SimTime, Simulator,
};
use sheriff_telemetry::{Counter, FieldValue, Gauge, Histogram, Registry};

use crate::latency::{GeoLatency, GeoLatencyConfig};

use crate::browser::BrowserProfile;
use crate::byzantine;
use crate::coordinator::{Coordinator, PeerId};
use crate::db::DbCostModel;
use crate::durability::MemStorage;
use crate::pollution::PollutionLedger;
use crate::protocol::{
    Address, AggregatorProto, Channel, CoordinatorProto, DbEvent, DbProto, DefenseBook,
    DefenseParams, DefenseTotals, IpcProto, MeasEvent, MeasurementParams, MeasurementProto, Output,
    PeerProto, ProtoMsg, ReliableConfig, TimerKind,
};
use crate::proxy::{IpcEngine, PpcEngine};
use crate::records::PriceCheck;
use crate::whitelist::Whitelist;

/// Which architecture generation runs (Table 1's "Old" vs "New").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemVersion {
    /// $heriff v1: single Measurement server with an integrated RDBMS.
    V1,
    /// Price $heriff: Coordinator load balancing, slim Measurement servers,
    /// one dedicated Database server.
    V2,
}

/// All system knobs. Timing defaults are calibrated so the Table 1 shape
/// reproduces (see `sheriff-experiments`, `table1_performance`).
#[derive(Clone, Debug)]
pub struct SheriffConfig {
    /// Architecture generation.
    pub version: SystemVersion,
    /// Measurement servers (v1 forces 1).
    pub n_measurement_servers: usize,
    /// IPC vantage points as (country, city index). The paper ran 30.
    pub ipc_locations: Vec<(Country, usize)>,
    /// PPCs asked per request (§6.1: "approximately 3").
    pub ppc_per_request: usize,
    /// Currency of the result page.
    pub target_currency: String,
    /// RNG seed for the simulation.
    pub seed: u64,
    /// Median IPC page-fetch time, ms (PlanetLab vantage).
    pub ipc_fetch_median_ms: u64,
    /// Lognormal sigma of fetch times.
    pub fetch_sigma: f64,
    /// Probability an IPC fetch lands on an overloaded node (§5).
    pub ipc_overload_prob: f64,
    /// Overloaded-node fetch time, ms.
    pub ipc_overload_ms: u64,
    /// The production kill bound per proxy request (2 minutes, §5).
    pub fetch_kill_ms: u64,
    /// Median PPC page-fetch time, ms (residential browser).
    pub ppc_fetch_median_ms: u64,
    /// Measurement-server CPU per response processed, ms.
    pub proc_per_reply_ms: f64,
    /// Context-switch degradation per concurrent job.
    pub context_switch_alpha: f64,
    /// Give-up deadline for a job's outstanding fetches, ms.
    pub job_deadline_ms: u64,
    /// Database cost model.
    pub db_cost: DbCostModel,
    /// Database snapshot cadence: fold the WAL into a snapshot every
    /// this many stored records.
    pub db_snapshot_every: usize,
    /// Serve doppelganger state to over-budget PPCs.
    pub enable_doppelgangers: bool,
    /// Measurement-server liveness beacon period, ms.
    pub heartbeat_every_ms: u64,
    /// Coordinator: take a server offline after this long without a beacon.
    pub heartbeat_timeout_ms: u64,
    /// First retransmission delay for at-least-once control messages, ms.
    pub retransmit_base_ms: u64,
    /// Coordinator recovery-sweep period (heartbeat expiry + job requeue).
    pub coord_sweep_every_ms: u64,
    /// Misbehavior-defense tuning shared by the Coordinator and every
    /// Measurement server (see [`crate::protocol::DefenseBook`]).
    pub defense: DefenseParams,
}

impl SheriffConfig {
    /// The v1 $heriff configuration (Table 1 "Old Version").
    pub fn v1(seed: u64) -> Self {
        SheriffConfig {
            version: SystemVersion::V1,
            n_measurement_servers: 1,
            ipc_locations: default_ipc_locations(),
            ppc_per_request: 3,
            target_currency: "EUR".into(),
            seed,
            ipc_fetch_median_ms: 18_000,
            fetch_sigma: 0.45,
            ipc_overload_prob: 0.005,
            ipc_overload_ms: 300_000,
            fetch_kill_ms: 120_000,
            ppc_fetch_median_ms: 2_500,
            proc_per_reply_ms: 380.0,
            context_switch_alpha: 0.15,
            job_deadline_ms: 130_000,
            db_cost: DbCostModel::integrated(),
            db_snapshot_every: 64,
            enable_doppelgangers: false,
            heartbeat_every_ms: 10_000,
            heartbeat_timeout_ms: 30_000,
            retransmit_base_ms: 2_000,
            coord_sweep_every_ms: 5_000,
            defense: DefenseParams::default(),
        }
    }

    /// The v2 Price $heriff configuration (Table 1 "New Version").
    pub fn v2(seed: u64, n_servers: usize) -> Self {
        SheriffConfig {
            version: SystemVersion::V2,
            n_measurement_servers: n_servers.max(1),
            ipc_locations: default_ipc_locations(),
            ppc_per_request: 3,
            target_currency: "EUR".into(),
            seed,
            ipc_fetch_median_ms: 18_000,
            fetch_sigma: 0.45,
            ipc_overload_prob: 0.005,
            ipc_overload_ms: 300_000,
            fetch_kill_ms: 120_000,
            ppc_fetch_median_ms: 2_500,
            proc_per_reply_ms: 60.0,
            context_switch_alpha: 0.05,
            job_deadline_ms: 130_000,
            db_cost: DbCostModel::dedicated(),
            db_snapshot_every: 64,
            enable_doppelgangers: true,
            heartbeat_every_ms: 10_000,
            heartbeat_timeout_ms: 30_000,
            retransmit_base_ms: 2_000,
            coord_sweep_every_ms: 5_000,
            defense: DefenseParams::default(),
        }
    }

    /// Fast-fetch variant for functional tests (timings shrunk 100×).
    pub fn fast(seed: u64) -> Self {
        let mut cfg = SheriffConfig::v2(seed, 2);
        cfg.ipc_fetch_median_ms = 220;
        cfg.ipc_overload_ms = 3_000;
        cfg.fetch_kill_ms = 1_200;
        cfg.ppc_fetch_median_ms = 25;
        cfg.job_deadline_ms = 2_000;
        cfg.retransmit_base_ms = 250;
        cfg.coord_sweep_every_ms = 500;
        // Snapshots fire within functional-test workloads (a handful of
        // checks), so the fold/truncate path is routinely exercised.
        cfg.db_snapshot_every = 2;
        cfg
    }
}

/// The paper's 30 IPC deployment, spread over its measurement countries.
pub fn default_ipc_locations() -> Vec<(Country, usize)> {
    let mut out = vec![
        (Country::ES, 0),
        (Country::ES, 1),
        (Country::ES, 2),
        (Country::FR, 0),
        (Country::DE, 0),
        (Country::GB, 0),
        (Country::US, 0),
        (Country::US, 1),
        (Country::US, 2),
        (Country::CA, 0),
        (Country::CA, 1),
        (Country::JP, 0),
        (Country::JP, 1),
        (Country::KR, 0),
        (Country::CZ, 0),
        (Country::SE, 0),
        (Country::IL, 0),
        (Country::NZ, 0),
        (Country::BR, 0),
        (Country::AU, 0),
        (Country::NL, 0),
        (Country::BE, 0),
        (Country::CH, 0),
        (Country::IT, 0),
        (Country::PT, 0),
        (Country::IE, 0),
        (Country::HK, 0),
        (Country::SG, 0),
        (Country::TH, 0),
        (Country::PL, 0),
    ];
    debug_assert_eq!(out.len(), 30);
    out.shrink_to_fit();
    out
}

/// Lognormal sample around `median_ms`, clipped at `kill_ms`.
fn fetch_delay<R: Rng + ?Sized>(
    rng: &mut R,
    median_ms: u64,
    sigma: f64,
    overload_prob: f64,
    overload_ms: u64,
    kill_ms: u64,
) -> SimTime {
    let raw = if rng.gen::<f64>() < overload_prob {
        overload_ms
    } else {
        let mut srng = rand::rngs::StdRng::seed_from_u64(rng.gen());
        let z = sample_standard_normal(&mut srng);
        (median_ms as f64 * (sigma * z).exp()).round() as u64
    };
    SimTime::from_millis(raw.min(kill_ms))
}

// ---------------------------------------------------------------------
// Address ↔ NodeId directory
// ---------------------------------------------------------------------

/// Immutable logical-address ↔ `NodeId` directory, shared by every
/// adapter node. NodeIds are sequential: `[coordinator, aggregator, db?,
/// servers…, ipcs…, ppcs…]`.
struct AddrMap {
    db: Option<NodeId>,
    first_server: usize,
    first_ipc: usize,
    peer_nodes: BTreeMap<u64, NodeId>,
    addr_of: Vec<Address>,
    /// Deployment-wide Byzantine plan, consulted at every node's send
    /// edge (the DES twin of the TCP reactor's shim). `None` until a
    /// plan is installed; the simulation is single-threaded, so the
    /// lock is never contended.
    byz: Mutex<Option<ByzantinePlan>>,
}

impl AddrMap {
    fn node(&self, addr: Address) -> Option<NodeId> {
        match addr {
            Address::Coordinator => Some(NodeId(0)),
            Address::Aggregator => Some(NodeId(1)),
            Address::Database => self.db,
            Address::Server { index } => Some(NodeId(self.first_server + index)),
            Address::Ipc { index } => Some(NodeId(self.first_ipc + index)),
            Address::Peer { id } => self.peer_nodes.get(&id).copied(),
        }
    }

    fn addr(&self, node: NodeId) -> Address {
        self.addr_of[node.0]
    }
}

/// Per-role proxy fetch timing, applied to `SendFetched` outputs.
#[derive(Clone, Copy)]
struct FetchTiming {
    median_ms: u64,
    sigma: f64,
    overload_prob: f64,
    overload_ms: u64,
    kill_ms: u64,
}

/// Maps protocol outputs onto the simulator: sends become deliveries,
/// `SendFetched` samples the proxy delay first, timers pack their kind
/// into the u64 token space.
fn dispatch(
    map: &AddrMap,
    ctx: &mut Ctx<'_, ProtoMsg>,
    out: Vec<Output>,
    fetch: Option<FetchTiming>,
) {
    for o in out {
        match o {
            Output::Send { to, msg } => {
                if let Some(node) = map.node(to) {
                    byz_send(map, ctx, node, msg, None);
                }
            }
            Output::SendFetched { to, msg } => {
                let t = fetch.expect("role without fetch timing emitted SendFetched");
                // The single proxy-fetch latency is drawn *before* the
                // Byzantine consult and shared by every emitted copy, so
                // an installed-but-all-zero plan perturbs no RNG draws.
                let delay = fetch_delay(
                    ctx.rng(),
                    t.median_ms,
                    t.sigma,
                    t.overload_prob,
                    t.overload_ms,
                    t.kill_ms,
                );
                if let Some(node) = map.node(to) {
                    byz_send(map, ctx, node, msg, Some(delay));
                }
            }
            Output::Timer { delay_ms, kind } => {
                ctx.set_timer(SimTime::from_millis(delay_ms), kind.token());
            }
        }
    }
}

/// One send through the Byzantine edge: consult the plan (same decision
/// function as the TCP reactor's shim), mutate/flood/drop accordingly.
/// Codec-boundary attacks have no DES analogue — the bytes never decode
/// on TCP, so here the message simply vanishes; either way nothing
/// reaches the receiving machine and `defense.*` parity is preserved.
fn byz_send(
    map: &AddrMap,
    ctx: &mut Ctx<'_, ProtoMsg>,
    to: NodeId,
    msg: ProtoMsg,
    fetched_delay: Option<SimTime>,
) {
    let send = |ctx: &mut Ctx<'_, ProtoMsg>, m: ProtoMsg| match fetched_delay {
        Some(d) => ctx.send_after(d, to, m),
        None => ctx.send(to, m),
    };
    let decision = {
        let mut guard = map.byz.lock();
        match guard.as_mut() {
            Some(plan) => plan.decide(ctx.self_id.0, to.0, byzantine::price_bearing(&msg)),
            None => {
                drop(guard);
                send(ctx, msg);
                return;
            }
        }
    };
    if decision.is_honest() {
        send(ctx, msg);
        return;
    }
    let applied = byzantine::apply(&decision, msg);
    if let Some(primary) = applied.primary {
        send(ctx, primary);
    }
    for junk in applied.junk {
        send(ctx, junk);
    }
}

// ---------------------------------------------------------------------
// Adapter nodes
// ---------------------------------------------------------------------

struct CoordinatorNode {
    proto: CoordinatorProto,
    map: Arc<AddrMap>,
    chan: Channel,
    unknown_timers: Arc<Counter>,
}

impl Node<ProtoMsg> for CoordinatorNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        let from = self.map.addr(from);
        let mut out = Vec::new();
        if let Some(msg) = self.chan.accept(from, msg, &mut out) {
            self.proto
                .on_message(ctx.now.as_millis(), from, msg, ctx.rng(), &mut out);
        }
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, token: u64) {
        let mut out = Vec::new();
        match TimerKind::from_token(token) {
            None => {
                self.unknown_timers.inc();
                return;
            }
            Some(TimerKind::Retransmit(seq)) => {
                // A give-up means the admitted job can never be worked:
                // let the machine release its origin/ledger bookkeeping.
                if let Some((_, abandoned)) = self.chan.on_retransmit(seq, &mut out) {
                    self.proto.on_send_abandoned(&abandoned);
                }
            }
            Some(kind) => self
                .proto
                .on_timer(ctx.now.as_millis(), kind, ctx.rng(), &mut out),
        }
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }
}

struct AggregatorNode {
    proto: AggregatorProto,
    map: Arc<AddrMap>,
    chan: Channel,
    unknown_timers: Arc<Counter>,
}

impl Node<ProtoMsg> for AggregatorNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        let from = self.map.addr(from);
        let mut out = Vec::new();
        if let Some(msg) = self.chan.accept(from, msg, &mut out) {
            self.proto.on_message(from, msg, &mut out);
        }
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, token: u64) {
        let mut out = Vec::new();
        match TimerKind::from_token(token) {
            None => {
                self.unknown_timers.inc();
                return;
            }
            Some(TimerKind::Retransmit(seq)) => {
                // This machine keeps no per-send bookkeeping; the channel
                // already counted the give-up.
                let _ = self.chan.on_retransmit(seq, &mut out);
            }
            Some(_) => {}
        }
        dispatch(&self.map, ctx, out, None);
    }
}

// ---------------------------------------------------------------------
// Measurement server node
// ---------------------------------------------------------------------

/// Fan-out latency buckets (virtual ms): proxy fetches are heavy-tailed
/// (§5), so the grid spans two decades up to the job-deadline scale.
const FANOUT_LATENCY_EDGES: &[f64] = &[
    100.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0,
];

/// Modeled CPU cost buckets (ms) for extraction/assembly and DB stores.
const CPU_COST_EDGES: &[f64] = &[
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 5_000.0,
];

/// Cached handles for the Measurement-server hot path. Histograms are
/// shared across servers (same metric name); the active-jobs gauge is
/// per server.
struct MeasurementTelemetry {
    registry: Arc<Registry>,
    fanout_latency: Arc<Histogram>,
    assembly_cpu: Arc<Histogram>,
    replies: Arc<Counter>,
    late_replies: Arc<Counter>,
    bytes_stored: Arc<Counter>,
    bytes_full: Arc<Counter>,
    jobs_finished: Arc<Counter>,
    active_jobs: Arc<Gauge>,
    /// v1 integrated-RDBMS cost, published under the same names as the
    /// dedicated Database server so v1/v2 run reports line up.
    db_query_cost: Arc<Histogram>,
    db_queries: Arc<Counter>,
    /// Duplicate `FetchReply` deliveries suppressed by the per-job
    /// vantage dedup (same counter as the reliable channel's dedup — both
    /// mean "a transport duplicate was absorbed").
    dedup_hits: Arc<Counter>,
    /// Half-open jobs reaped at the deadline (partner message lost).
    orphans_reaped: Arc<Counter>,
}

impl MeasurementTelemetry {
    fn new(registry: &Arc<Registry>, index: usize) -> Self {
        MeasurementTelemetry {
            db_query_cost: registry.histogram("db.query_cost_ms", CPU_COST_EDGES),
            db_queries: registry.counter("db.queries_total"),
            dedup_hits: registry.counter("protocol.dedup_hits"),
            orphans_reaped: registry.counter("measurement.orphans_reaped"),
            fanout_latency: registry
                .histogram("measurement.fanout_latency_ms", FANOUT_LATENCY_EDGES),
            assembly_cpu: registry.histogram("measurement.assembly_cpu_ms", CPU_COST_EDGES),
            replies: registry.counter("measurement.replies_total"),
            late_replies: registry.counter("measurement.late_replies"),
            bytes_stored: registry.counter("measurement.diff_bytes_stored"),
            bytes_full: registry.counter("measurement.diff_bytes_full"),
            jobs_finished: registry.counter("measurement.jobs_finished"),
            active_jobs: registry.gauge(&format!("measurement.{index:03}.active_jobs")),
            registry: Arc::clone(registry),
        }
    }

    /// Folds the machine's observable outcomes into the registry.
    fn apply(&self, index: usize, now_ms: u64, events: Vec<MeasEvent>) {
        for e in events {
            match e {
                MeasEvent::ReplyAccepted { since_fanout_ms } => {
                    self.replies.inc();
                    self.fanout_latency.observe(since_fanout_ms as f64);
                }
                MeasEvent::ReplyLate => self.late_replies.inc(),
                MeasEvent::ReplyDuplicate => self.dedup_hits.inc(),
                MeasEvent::OrphanReaped { job } => {
                    self.orphans_reaped.inc();
                    self.registry.event(
                        now_ms,
                        "measurement.orphan_reaped",
                        vec![
                            ("job", FieldValue::U64(job.0)),
                            ("server", FieldValue::U64(index as u64)),
                        ],
                    );
                }
                MeasEvent::AssemblyScheduled {
                    proc_ms,
                    db_ms,
                    active_jobs,
                } => {
                    if let Some(db_ms) = db_ms {
                        self.db_queries.inc();
                        self.db_query_cost.observe(db_ms);
                    }
                    self.assembly_cpu.observe(proc_ms);
                    self.active_jobs.set(active_jobs as i64);
                }
                MeasEvent::JobFinished {
                    job,
                    stored,
                    full,
                    received,
                    fanout_at_ms,
                    active_jobs,
                } => {
                    self.bytes_stored.add(stored as u64);
                    self.bytes_full.add(full as u64);
                    self.jobs_finished.inc();
                    self.active_jobs.set(active_jobs as i64);
                    self.registry.span(
                        fanout_at_ms,
                        now_ms,
                        "measurement.job",
                        vec![
                            ("job", FieldValue::U64(job.0)),
                            ("server", FieldValue::U64(index as u64)),
                            ("replies", FieldValue::U64(received as u64)),
                        ],
                    );
                }
            }
        }
    }
}

struct MeasurementNode {
    index: usize,
    proto: MeasurementProto,
    map: Arc<AddrMap>,
    telemetry: MeasurementTelemetry,
    chan: Channel,
    unknown_timers: Arc<Counter>,
}

impl Node<ProtoMsg> for MeasurementNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        let from = self.map.addr(from);
        let now = ctx.now.as_millis();
        let (mut out, mut events) = (Vec::new(), Vec::new());
        if let Some(msg) = self.chan.accept(from, msg, &mut out) {
            self.proto.on_message(now, from, msg, &mut out, &mut events);
        }
        self.telemetry.apply(self.index, now, events);
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, token: u64) {
        let now = ctx.now.as_millis();
        let (mut out, mut events) = (Vec::new(), Vec::new());
        match TimerKind::from_token(token) {
            None => {
                self.unknown_timers.inc();
                return;
            }
            Some(TimerKind::Retransmit(seq)) => {
                // A give-up on a StoreCheck means the DbAck can never
                // arrive: let the machine finish the job locally.
                if let Some((_, abandoned)) = self.chan.on_retransmit(seq, &mut out) {
                    self.proto
                        .on_send_abandoned(now, &abandoned, &mut out, &mut events);
                }
            }
            Some(kind) => self.proto.on_timer(now, kind, &mut out, &mut events),
        }
        self.telemetry.apply(self.index, now, events);
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        // Crash recovery (§10.3): re-announce liveness immediately so the
        // Coordinator puts the server back in rotation without waiting a
        // full beacon period.
        let now = ctx.now.as_millis();
        let mut out = Vec::new();
        self.proto.on_restart(now, &mut out);
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }
}

// ---------------------------------------------------------------------
// Database server node (v2)
// ---------------------------------------------------------------------

/// Cached handles for the Database-server hot path.
struct DbTelemetry {
    query_cost: Arc<Histogram>,
    queries: Arc<Counter>,
    active: Arc<Gauge>,
    max_active: Arc<Gauge>,
    wal_appends: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    snapshots: Arc<Counter>,
    recovered: Arc<Counter>,
    dup_stores: Arc<Counter>,
    ack_loss_window: Arc<Counter>,
}

impl DbTelemetry {
    fn new(registry: &Arc<Registry>) -> Self {
        DbTelemetry {
            query_cost: registry.histogram("db.query_cost_ms", CPU_COST_EDGES),
            queries: registry.counter("db.queries_total"),
            active: registry.gauge("db.active_queries"),
            max_active: registry.gauge("db.active_queries_max"),
            wal_appends: registry.counter("db.wal_appends"),
            wal_bytes: registry.counter("db.wal_bytes"),
            snapshots: registry.counter("db.snapshots"),
            recovered: registry.counter("db.recovered_records"),
            dup_stores: registry.counter("db.duplicate_stores"),
            ack_loss_window: registry.counter("db.ack_loss_window"),
        }
    }

    fn apply(&self, events: Vec<DbEvent>) {
        for e in events {
            match e {
                DbEvent::QueryScheduled { cost_ms, active } => {
                    self.queries.inc();
                    self.query_cost.observe(cost_ms as f64);
                    self.active.set(active as i64);
                    if (active as i64) > self.max_active.get() {
                        self.max_active.set(active as i64);
                    }
                }
                DbEvent::QueryDone { active } => self.active.set(active as i64),
                DbEvent::WalAppended { bytes } => {
                    self.wal_appends.inc();
                    self.wal_bytes.add(bytes);
                }
                DbEvent::SnapshotInstalled { .. } => self.snapshots.inc(),
                DbEvent::Recovered { records, .. } => self.recovered.add(records),
                DbEvent::DuplicateStoreAbsorbed { .. } => self.dup_stores.inc(),
                DbEvent::AckLossWindow { .. } => self.ack_loss_window.inc(),
            }
        }
    }
}

struct DbNode {
    proto: DbProto,
    map: Arc<AddrMap>,
    telemetry: DbTelemetry,
    chan: Channel,
    unknown_timers: Arc<Counter>,
}

impl Node<ProtoMsg> for DbNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        let from = self.map.addr(from);
        let now = ctx.now.as_millis();
        let (mut out, mut events) = (Vec::new(), Vec::new());
        if let Some(msg) = self.chan.accept(from, msg, &mut out) {
            self.proto.on_message(now, from, msg, &mut out, &mut events);
        }
        self.telemetry.apply(events);
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, token: u64) {
        let (mut out, mut events) = (Vec::new(), Vec::new());
        match TimerKind::from_token(token) {
            None => {
                self.unknown_timers.inc();
                return;
            }
            Some(TimerKind::Retransmit(seq)) => {
                // This machine keeps no per-send bookkeeping; the channel
                // already counted the give-up.
                let _ = self.chan.on_retransmit(seq, &mut out);
            }
            Some(kind) => self.proto.on_timer(kind, &mut out, &mut events),
        }
        self.telemetry.apply(events);
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, None);
    }

    fn on_restart(&mut self, _ctx: &mut Ctx<'_, ProtoMsg>) {
        // Process restart: everything volatile — the memory table,
        // in-flight queries, the reliable channel's dedup windows — is
        // gone; the durable prefix comes back from snapshot + WAL
        // replay, and the un-barriered log tail is truncated
        // deterministically. Senders whose stores were torn off simply
        // retransmit into the fresh windows.
        self.chan.on_restart();
        let mut events = Vec::new();
        self.proto.on_restart(&mut events);
        self.telemetry.apply(events);
    }
}

// ---------------------------------------------------------------------
// IPC node
// ---------------------------------------------------------------------

struct IpcNode {
    proto: IpcProto,
    world: Arc<Mutex<World>>,
    map: Arc<AddrMap>,
    timing: FetchTiming,
}

impl Node<ProtoMsg> for IpcNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        let from = self.map.addr(from);
        let mut out = Vec::new();
        {
            let mut world = self.world.lock();
            self.proto
                .on_message(ctx.now.as_millis(), from, msg, &mut world, &mut out);
        }
        dispatch(&self.map, ctx, out, Some(self.timing));
    }
}

// ---------------------------------------------------------------------
// PPC / add-on node
// ---------------------------------------------------------------------

/// A completed price check as recorded by the initiating add-on.
#[derive(Clone, Debug)]
pub struct CompletedCheck {
    /// The result set.
    pub check: PriceCheck,
    /// When the user clicked.
    pub submitted: SimTime,
    /// When the result page finished.
    pub completed: SimTime,
}

struct AddonNode {
    proto: PeerProto,
    world: Arc<Mutex<World>>,
    map: Arc<AddrMap>,
    timing: FetchTiming,
    chan: Channel,
    unknown_timers: Arc<Counter>,
}

impl Node<ProtoMsg> for AddonNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        let from = self.map.addr(from);
        let mut out = Vec::new();
        if let Some(msg) = self.chan.accept(from, msg, &mut out) {
            let mut world = self.world.lock();
            self.proto
                .on_message(ctx.now.as_millis(), from, msg, &mut world, &mut out);
        }
        self.chan.harden(&mut out);
        dispatch(&self.map, ctx, out, Some(self.timing));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, token: u64) {
        let mut out = Vec::new();
        match TimerKind::from_token(token) {
            None => {
                self.unknown_timers.inc();
                return;
            }
            Some(TimerKind::Retransmit(seq)) => {
                if let Some((_, abandoned)) = self.chan.on_retransmit(seq, &mut out) {
                    self.proto.on_send_abandoned(&abandoned);
                }
            }
            Some(_) => {}
        }
        dispatch(&self.map, ctx, out, Some(self.timing));
    }
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

/// Specification of one peer joining the system.
#[derive(Clone, Debug)]
pub struct PpcSpec {
    /// Stable peer id.
    pub peer_id: u64,
    /// Country of residence.
    pub country: Country,
    /// City index within the country.
    pub city_idx: usize,
    /// Browser platform.
    pub user_agent: UserAgent,
    /// Affluence score ∈ \[0,1\] (drives tracker profiles).
    pub affluence: f64,
    /// Domains where the user stays signed in.
    pub logged_in_domains: Vec<String>,
}

/// The assembled system.
///
/// ```
/// use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
/// use sheriff_geo::Country;
/// use sheriff_market::pricing::{Browser, Os};
/// use sheriff_market::world::WorldConfig;
/// use sheriff_market::{ProductId, UserAgent, World};
/// use sheriff_netsim::SimTime;
///
/// let world = World::build(&WorldConfig::small(), 1);
/// let peers = vec![PpcSpec {
///     peer_id: 100,
///     country: Country::ES,
///     city_idx: 0,
///     user_agent: UserAgent { os: Os::Linux, browser: Browser::Firefox },
///     affluence: 0.2,
///     logged_in_domains: vec![],
/// }];
/// let mut sheriff = PriceSheriff::new(SheriffConfig::fast(1), world, &peers);
/// sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(0));
/// sheriff.run_until(SimTime::from_mins(2));
///
/// let done = sheriff.completed();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].check.has_difference(0.05), "steam discriminates by country");
/// assert_eq!(sheriff.sandbox_violations(), 0);
/// ```
pub struct PriceSheriff {
    /// The underlying simulator (exposed for custom drivers).
    pub sim: Simulator<ProtoMsg>,
    coordinator: NodeId,
    aggregator: NodeId,
    db: Option<NodeId>,
    ppc_nodes: BTreeMap<u64, NodeId>,
    world: Arc<Mutex<World>>,
    next_tag: u64,
    cfg: SheriffConfig,
    telemetry: Arc<Registry>,
    /// Shared address map — also carries the optional Byzantine plan
    /// consulted at every node's send edge.
    map: Arc<AddrMap>,
}

impl PriceSheriff {
    /// Builds the full system over `world` with the given peers. Every
    /// world domain is whitelisted (the deployment's manual curation).
    pub fn new(cfg: SheriffConfig, world: World, ppcs: &[PpcSpec]) -> Self {
        let whitelist = Whitelist::with_domains(world.domains().map(str::to_string));
        let world = Arc::new(Mutex::new(world));
        let rates = world.lock().rates.clone();
        let mut alloc = IpAllocator::new();
        let locator = GeoLocator::new(Granularity::City);

        // NodeIds are sequential, so precompute the layout:
        // [coordinator, aggregator, db?, servers…, ipcs…, ppcs…].
        let n_servers = if cfg.version == SystemVersion::V1 {
            1
        } else {
            cfg.n_measurement_servers
        };
        let has_db = cfg.version == SystemVersion::V2;
        let coordinator_id = NodeId(0);
        let aggregator_id = NodeId(1);
        let db_id = if has_db { Some(NodeId(2)) } else { None };
        let first_server = 2 + usize::from(has_db);
        let server_ids: Vec<NodeId> = (0..n_servers).map(|i| NodeId(first_server + i)).collect();
        let first_ipc = first_server + n_servers;
        let first_ppc = first_ipc + cfg.ipc_locations.len();

        // Geography-aware message latency: infrastructure (coordinator,
        // aggregator, DB, measurement servers) is "in the cloud"; IPCs and
        // PPCs sit in their countries.
        let mut node_countries: Vec<Option<Country>> = vec![None; first_ipc];
        node_countries.extend(cfg.ipc_locations.iter().map(|&(c, _)| Some(c)));
        node_countries.extend(ppcs.iter().map(|s| Some(s.country)));
        let latency = GeoLatency::new(GeoLatencyConfig::default(), node_countries);
        let mut sim: Simulator<ProtoMsg> = Simulator::new(Box::new(latency), cfg.seed);

        // One shared registry for the whole system: coordinator, servers,
        // DB, and the simulation engine all publish into it, and the run
        // report / monitoring panel read from it.
        let telemetry = Arc::new(Registry::new());
        sim.set_telemetry(Arc::clone(&telemetry));

        // One at-least-once channel per node (shared counter names, so
        // the registry aggregates across the deployment), plus the
        // "unknown timer token" counter every driver must maintain.
        let reliable_cfg = ReliableConfig {
            base_backoff_ms: cfg.retransmit_base_ms,
            ..ReliableConfig::default()
        };
        let mk_chan = || Channel::new(reliable_cfg).with_telemetry(&telemetry);
        let unknown_timers = telemetry.counter("protocol.unknown_timers");

        // Coordinator state.
        let mut coordinator = Coordinator::with_telemetry(whitelist, Arc::clone(&telemetry));
        coordinator.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
        for i in 0..n_servers {
            coordinator.register_server(&format!("ms-{i}"), 80, 0);
        }
        let mut peer_nodes = BTreeMap::new();
        let mut ppc_specs_with_ip = Vec::new();
        for (i, spec) in ppcs.iter().enumerate() {
            let ip = alloc.allocate(spec.country, spec.city_idx);
            let node = NodeId(first_ppc + i);
            peer_nodes.insert(spec.peer_id, node);
            let location = locator.locate(ip).expect("allocated IPs always geolocate");
            coordinator.peer_online(PeerId(spec.peer_id), ip, location.clone());
            ppc_specs_with_ip.push((spec.clone(), ip, location));
        }

        // The shared Address ↔ NodeId directory.
        let mut addr_of: Vec<Address> = vec![Address::Coordinator, Address::Aggregator];
        if has_db {
            addr_of.push(Address::Database);
        }
        addr_of.extend((0..n_servers).map(|index| Address::Server { index }));
        addr_of.extend((0..cfg.ipc_locations.len()).map(|index| Address::Ipc { index }));
        addr_of.extend(ppcs.iter().map(|s| Address::Peer { id: s.peer_id }));
        let map = Arc::new(AddrMap {
            db: db_id,
            first_server,
            first_ipc,
            peer_nodes: peer_nodes.clone(),
            addr_of,
            byz: Mutex::new(None),
        });

        let mut coord_proto = CoordinatorProto::new(coordinator, cfg.ppc_per_request);
        coord_proto.sweep_every_ms = cfg.coord_sweep_every_ms;
        coord_proto.defense = DefenseBook::new(cfg.defense).with_telemetry(&telemetry);
        let coord_node = CoordinatorNode {
            proto: coord_proto,
            map: Arc::clone(&map),
            chan: mk_chan(),
            unknown_timers: Arc::clone(&unknown_timers),
        };
        assert_eq!(sim.add_node(Box::new(coord_node)), coordinator_id);
        // The §10.3 recovery sweep: expire heartbeats, requeue orphans.
        sim.inject_timer(
            SimTime::from_millis(cfg.coord_sweep_every_ms),
            coordinator_id,
            TimerKind::CoordSweep.token(),
        );

        let agg_node = AggregatorNode {
            proto: AggregatorProto::new(),
            map: Arc::clone(&map),
            chan: mk_chan(),
            unknown_timers: Arc::clone(&unknown_timers),
        };
        assert_eq!(sim.add_node(Box::new(agg_node)), aggregator_id);

        if has_db {
            let db_node = DbNode {
                proto: DbProto::with_storage(
                    cfg.db_cost,
                    Box::new(MemStorage::new()),
                    cfg.db_snapshot_every,
                ),
                map: Arc::clone(&map),
                telemetry: DbTelemetry::new(&telemetry),
                chan: mk_chan(),
                unknown_timers: Arc::clone(&unknown_timers),
            };
            assert_eq!(sim.add_node(Box::new(db_node)), db_id.expect("has_db"));
        }

        let ipc_addrs: Vec<Address> = (0..cfg.ipc_locations.len())
            .map(|index| Address::Ipc { index })
            .collect();
        for (i, &sid) in server_ids.iter().enumerate() {
            let mut meas_proto = MeasurementProto::new(MeasurementParams {
                index: i,
                ipcs: ipc_addrs.clone(),
                rates: rates.clone(),
                target_currency: cfg.target_currency.clone(),
                proc_per_reply_ms: cfg.proc_per_reply_ms,
                context_switch_alpha: cfg.context_switch_alpha,
                job_deadline_ms: cfg.job_deadline_ms,
                db_cost: cfg.db_cost,
                integrated_db: cfg.version == SystemVersion::V1,
                heartbeat_every_ms: cfg.heartbeat_every_ms,
                ipc_countries: cfg.ipc_locations.iter().map(|&(c, _)| c).collect(),
                defense: cfg.defense,
            });
            meas_proto.defense = DefenseBook::new(cfg.defense).with_telemetry(&telemetry);
            let node = MeasurementNode {
                index: i,
                proto: meas_proto,
                map: Arc::clone(&map),
                telemetry: MeasurementTelemetry::new(&telemetry, i),
                chan: mk_chan(),
                unknown_timers: Arc::clone(&unknown_timers),
            };
            assert_eq!(sim.add_node(Box::new(node)), sid);
            sim.inject_timer(SimTime::from_millis(100), sid, TimerKind::Heartbeat.token());
        }

        for (i, &(country, city_idx)) in cfg.ipc_locations.iter().enumerate() {
            let ip = alloc.allocate(country, city_idx);
            let city = locator.locate(ip).and_then(|l| l.city);
            let node = IpcNode {
                proto: IpcProto {
                    engine: IpcEngine {
                        id: i as u64,
                        country,
                        city_idx,
                        ip,
                        user_agent: UserAgent {
                            os: sheriff_market::pricing::Os::Linux,
                            browser: sheriff_market::pricing::Browser::Firefox,
                        },
                    },
                    city,
                },
                world: Arc::clone(&world),
                map: Arc::clone(&map),
                timing: FetchTiming {
                    median_ms: cfg.ipc_fetch_median_ms,
                    sigma: cfg.fetch_sigma,
                    overload_prob: cfg.ipc_overload_prob,
                    overload_ms: cfg.ipc_overload_ms,
                    kill_ms: cfg.fetch_kill_ms,
                },
            };
            assert_eq!(sim.add_node(Box::new(node)), NodeId(first_ipc + i));
        }

        for (i, (spec, ip, location)) in ppc_specs_with_ip.into_iter().enumerate() {
            let node = AddonNode {
                proto: PeerProto::new(
                    PpcEngine {
                        peer_id: spec.peer_id,
                        browser: BrowserProfile::new(),
                        ledger: PollutionLedger::new(),
                        ip,
                        country: spec.country,
                        city_idx: spec.city_idx,
                        user_agent: spec.user_agent,
                        affluence: spec.affluence,
                        logged_in_domains: spec.logged_in_domains.clone(),
                    },
                    location.city,
                    cfg.target_currency.clone(),
                    cfg.enable_doppelgangers,
                ),
                world: Arc::clone(&world),
                map: Arc::clone(&map),
                timing: FetchTiming {
                    median_ms: cfg.ppc_fetch_median_ms,
                    sigma: cfg.fetch_sigma,
                    overload_prob: 0.0,
                    overload_ms: 0,
                    kill_ms: cfg.fetch_kill_ms,
                },
                chan: mk_chan(),
                unknown_timers: Arc::clone(&unknown_timers),
            };
            assert_eq!(sim.add_node(Box::new(node)), NodeId(first_ppc + i));
        }

        PriceSheriff {
            sim,
            coordinator: coordinator_id,
            aggregator: aggregator_id,
            db: db_id,
            ppc_nodes: peer_nodes,
            world,
            next_tag: 1,
            cfg,
            telemetry,
            map,
        }
    }

    /// The shared telemetry registry (snapshot it for run reports).
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// The shared world handle.
    pub fn world(&self) -> Arc<Mutex<World>> {
        Arc::clone(&self.world)
    }

    /// Configuration in force.
    pub fn config(&self) -> &SheriffConfig {
        &self.cfg
    }

    /// Submits a price check from `peer` at virtual time `at`.
    pub fn submit_check(&mut self, at: SimTime, peer: u64, domain: &str, product: ProductId) {
        let node = *self
            .ppc_nodes
            .get(&peer)
            .unwrap_or_else(|| panic!("unknown peer {peer}"));
        let tag = self.next_tag;
        self.next_tag += 1;
        self.sim.inject(
            at,
            node,
            node,
            ProtoMsg::StartCheck {
                domain: domain.to_string(),
                product,
                local_tag: tag,
            },
        );
    }

    /// Asks the Coordinator (through the protocol, from `peer`'s add-on)
    /// to decommission Measurement server `index`; the outcome lands in
    /// [`PriceSheriff::server_removals`].
    pub fn request_remove_server(&mut self, at: SimTime, peer: u64, index: usize) {
        let node = *self
            .ppc_nodes
            .get(&peer)
            .unwrap_or_else(|| panic!("unknown peer {peer}"));
        self.sim
            .inject(at, self.coordinator, node, ProtoMsg::RemoveServer { index });
    }

    /// Lets a peer browse a product page for themselves (builds pollution
    /// budget and realistic state).
    pub fn prime_visit(&mut self, peer: u64, domain: &str, product: ProductId, n: u64) {
        let node = *self.ppc_nodes.get(&peer).expect("unknown peer");
        let world = Arc::clone(&self.world);
        let addon = self.sim.node_mut::<AddonNode>(node).expect("ppc node type");
        let mut w = world.lock();
        for i in 0..n {
            addon
                .proto
                .engine
                .user_visit(&mut w, domain, product, 0, i * 1000, i);
        }
    }

    /// Installs doppelgangers: trains one per centroid at the Coordinator
    /// and hands the Aggregator the peer→cluster mapping.
    pub fn install_doppelgangers(
        &mut self,
        centroids: &[Vec<u64>],
        universe: &[String],
        assignments: &[(u64, usize)],
        seed: u64,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tokens = {
            let coord = self
                .sim
                .node_mut::<CoordinatorNode>(self.coordinator)
                .expect("coordinator node");
            coord.proto.universe = universe.to_vec();
            coord
                .proto
                .dopp_store
                .train_all(centroids, universe, &mut rng)
        };
        let agg = self
            .sim
            .node_mut::<AggregatorNode>(self.aggregator)
            .expect("aggregator node");
        agg.proto.install(assignments, tokens);
    }

    /// Runs the simulation until idle (bounded by `max_events`). Note the
    /// heartbeat protocol keeps the event queue alive indefinitely, so this
    /// always consumes the full budget — prefer [`PriceSheriff::run_until`]
    /// when a virtual deadline is known.
    pub fn run(&mut self, max_events: u64) -> u64 {
        self.sim.run_until_idle(max_events)
    }

    /// Runs the simulation until virtual time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Harvests every completed check across all peers.
    pub fn completed(&self) -> Vec<CompletedCheck> {
        let mut out = Vec::new();
        for &node in self.ppc_nodes.values() {
            if let Some(addon) = self.sim.node_ref::<AddonNode>(node) {
                out.extend(addon.proto.completed.iter().map(|c| CompletedCheck {
                    check: c.check.clone(),
                    submitted: SimTime::from_millis(c.submitted_ms),
                    completed: SimTime::from_millis(c.completed_ms),
                }));
            }
        }
        out.sort_by_key(|c| c.check.job_id);
        out
    }

    /// Harvests every Coordinator rejection observed by the add-ons, as
    /// `(peer, local_tag, reason)`.
    pub fn rejections(&self) -> Vec<(u64, u64, String)> {
        let mut out = Vec::new();
        for (&peer, &node) in &self.ppc_nodes {
            if let Some(addon) = self.sim.node_ref::<AddonNode>(node) {
                out.extend(
                    addon
                        .proto
                        .rejected
                        .iter()
                        .map(|(tag, reason)| (peer, *tag, reason.clone())),
                );
            }
        }
        out.sort();
        out
    }

    /// Harvests every `ServerRemoved` ack observed by the add-ons, as
    /// `(server_index, removed)`.
    pub fn server_removals(&self) -> Vec<(usize, bool)> {
        let mut out = Vec::new();
        for &node in self.ppc_nodes.values() {
            if let Some(addon) = self.sim.node_ref::<AddonNode>(node) {
                out.extend(addon.proto.server_removals.iter().copied());
            }
        }
        out.sort();
        out
    }

    /// Remote fetches served per mode across all peers:
    /// `[clean, real-state, doppelganger]`.
    pub fn fetch_mode_counts(&self) -> [u64; 3] {
        let mut out = [0u64; 3];
        for &node in self.ppc_nodes.values() {
            if let Some(addon) = self.sim.node_ref::<AddonNode>(node) {
                for (acc, n) in out.iter_mut().zip(addon.proto.fetches_by_mode) {
                    *acc += n;
                }
            }
        }
        out
    }

    /// Total sandbox violations observed across peers (must be 0 — the
    /// §3.6.1 validation).
    pub fn sandbox_violations(&self) -> usize {
        self.ppc_nodes
            .values()
            .filter_map(|&n| self.sim.node_ref::<AddonNode>(n))
            .map(|a| a.proto.sandbox_violations)
            .sum()
    }

    /// Installs a deterministic fault schedule on the underlying
    /// simulator (drops, duplicates, delays, crashes, partitions). An
    /// all-zero plan is a strict no-op: the run is byte-identical to one
    /// without a plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.sim.set_fault_plan(plan);
    }

    /// Fault-injection tallies, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.sim.fault_stats()
    }

    /// Installs a deterministic Byzantine misbehavior plan, consulted at
    /// every node's send edge. An all-zero plan is a strict no-op: it
    /// draws no RNG values and mutates no messages, so the run is
    /// byte-identical to one without a plan.
    pub fn install_byzantine_plan(&mut self, plan: ByzantinePlan) {
        *self.map.byz.lock() = Some(plan);
    }

    /// Byzantine-injection tallies, if a plan is installed.
    pub fn byz_stats(&self) -> Option<ByzStats> {
        self.map.byz.lock().as_ref().map(|p| p.stats)
    }

    /// NodeIds of the Measurement servers, from the deterministic layout
    /// `[coordinator, aggregator, db?, servers…, ipcs…, ppcs…]`.
    fn server_node_ids(&self) -> Vec<NodeId> {
        let n_servers = if self.cfg.version == SystemVersion::V1 {
            1
        } else {
            self.cfg.n_measurement_servers
        };
        let first = 2 + usize::from(self.db.is_some());
        (0..n_servers).map(|i| NodeId(first + i)).collect()
    }

    /// Field-by-field sum of the Coordinator's and every Measurement
    /// server's defense ledgers — the registry-free twin of the
    /// `defense.*` counters.
    pub fn defense_totals(&self) -> DefenseTotals {
        let mut sum = DefenseTotals::default();
        let mut add = |t: DefenseTotals| {
            sum.validation_rejects += t.validation_rejects;
            sum.quota_trips += t.quota_trips;
            sum.quarantines += t.quarantines;
            sum.paroles += t.paroles;
            sum.quarantine_drops += t.quarantine_drops;
            sum.budget_exhaustions += t.budget_exhaustions;
        };
        if let Some(c) = self.sim.node_ref::<CoordinatorNode>(self.coordinator) {
            add(c.proto.defense.totals);
        }
        for id in self.server_node_ids() {
            if let Some(s) = self.sim.node_ref::<MeasurementNode>(id) {
                add(s.proto.defense.totals);
            }
        }
        sum
    }

    /// Observations admitted from `peer` across all Measurement servers'
    /// influence ledgers — the pollution-budget readout.
    pub fn admitted_from_peer(&self, peer: u64) -> u64 {
        self.server_node_ids()
            .into_iter()
            .filter_map(|id| self.sim.node_ref::<MeasurementNode>(id))
            .map(|s| s.proto.defense.admitted_by(peer))
            .sum()
    }

    /// Jobs currently charged to each Measurement server, in server
    /// order — the Coordinator's ledger, not the panel text. All zeros
    /// once the system has drained (no leaked jobs).
    pub fn pending_jobs_per_server(&self) -> Vec<u32> {
        self.sim
            .node_ref::<CoordinatorNode>(self.coordinator)
            .map(|c| c.proto.coordinator.pending_jobs_per_server())
            .unwrap_or_default()
    }

    /// Every check the Database server holds, in store order (v2 only;
    /// empty under v1's integrated model). After a crash window this is
    /// the recovered durable prefix plus everything re-stored since.
    pub fn database_checks(&self) -> Vec<PriceCheck> {
        self.db
            .and_then(|id| self.sim.node_ref::<DbNode>(id))
            .map(|n| n.proto.database.checks().to_vec())
            .unwrap_or_default()
    }

    /// The Database server's durable (barrier-flushed) WAL bytes — a
    /// pure function of the seed under DES, so two replays must agree
    /// byte for byte. `None` without a Database node.
    pub fn db_wal_bytes(&self) -> Option<Vec<u8>> {
        self.db
            .and_then(|id| self.sim.node_ref::<DbNode>(id))
            .map(|n| n.proto.wal_bytes())
    }

    /// The Database server's durable snapshot image (empty before the
    /// first compaction). `None` without a Database node.
    pub fn db_snapshot_bytes(&self) -> Option<Vec<u8>> {
        self.db
            .and_then(|id| self.sim.node_ref::<DbNode>(id))
            .map(|n| n.proto.snapshot_bytes())
    }

    /// The Coordinator's Fig. 7 monitoring panel.
    pub fn monitoring_panel(&self) -> String {
        self.sim
            .node_ref::<CoordinatorNode>(self.coordinator)
            .map(|c| c.proto.coordinator.monitoring_panel())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::pricing::{Browser, Os};
    use sheriff_market::world::WorldConfig;

    fn specs(country: Country, n: u64) -> Vec<PpcSpec> {
        (0..n)
            .map(|i| PpcSpec {
                peer_id: 100 + i,
                country,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Windows,
                    browser: Browser::Chrome,
                },
                affluence: 0.3 + 0.1 * (i as f64 % 5.0),
                logged_in_domains: vec![],
            })
            .collect()
    }

    #[test]
    fn end_to_end_price_check_completes() {
        let world = World::build(&WorldConfig::small(), 11);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(11), world, &specs(Country::ES, 4));
        sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(0));
        sheriff.run(100_000);
        let done = sheriff.completed();
        assert_eq!(done.len(), 1, "check must complete");
        let check = &done[0].check;
        // Initiator + 30 IPCs + up to 3 PPCs.
        assert!(
            check.observations.len() >= 31,
            "got {}",
            check.observations.len()
        );
        assert!(check.observations.len() <= 34);
        let valid = check.valid().count();
        assert!(valid >= 31, "valid={valid}");
        // Steam discriminates by country: differences must be visible.
        assert!(
            check.has_difference(0.01),
            "spread={:?}",
            check.relative_spread()
        );
        assert_eq!(sheriff.sandbox_violations(), 0);
    }

    #[test]
    fn uniform_store_shows_no_difference() {
        let world = World::build(&WorldConfig::small(), 13);
        let domain = world
            .domains()
            .find(|d| d.starts_with("store-"))
            .unwrap()
            .to_string();
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(13), world, &specs(Country::ES, 4));
        sheriff.submit_check(SimTime::ZERO, 100, &domain, ProductId(0));
        sheriff.run(100_000);
        let done = sheriff.completed();
        assert_eq!(done.len(), 1);
        // Allow sub-0.5% conversion rounding noise, nothing more.
        assert!(!done[0].check.has_difference(0.005));
    }

    #[test]
    fn concurrent_checks_all_complete() {
        let world = World::build(&WorldConfig::small(), 17);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(17), world, &specs(Country::FR, 6));
        for (i, peer) in (100..106).enumerate() {
            sheriff.submit_check(
                SimTime::from_millis(i as u64 * 10),
                peer,
                "jcpenney.com",
                ProductId(i as u32 % 8),
            );
        }
        sheriff.run(1_000_000);
        assert_eq!(sheriff.completed().len(), 6);
    }

    #[test]
    fn non_whitelisted_domain_rejected() {
        let world = World::build(&WorldConfig::small(), 19);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(19), world, &specs(Country::ES, 2));
        sheriff.submit_check(SimTime::ZERO, 100, "not-in-world.example", ProductId(0));
        sheriff.run(100_000);
        assert!(sheriff.completed().is_empty());
        let rejections = sheriff.rejections();
        assert_eq!(rejections.len(), 1);
        assert_eq!(rejections[0].0, 100, "rejection lands at the initiator");
        assert!(rejections[0].2.contains("Rejected"), "{:?}", rejections[0]);
    }

    #[test]
    fn v1_system_also_completes() {
        let world = World::build(&WorldConfig::small(), 23);
        let mut cfg = SheriffConfig::v1(23);
        // Shrink timings for the test.
        cfg.ipc_fetch_median_ms = 200;
        cfg.ipc_overload_ms = 2_000;
        cfg.fetch_kill_ms = 1_000;
        cfg.ppc_fetch_median_ms = 30;
        cfg.job_deadline_ms = 1_500;
        let mut sheriff = PriceSheriff::new(cfg, world, &specs(Country::ES, 3));
        sheriff.submit_check(SimTime::ZERO, 100, "amazon.com", ProductId(1));
        sheriff.run(100_000);
        assert_eq!(sheriff.completed().len(), 1);
    }

    #[test]
    fn results_arrive_within_deadline_budget() {
        let world = World::build(&WorldConfig::small(), 29);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(29), world, &specs(Country::ES, 3));
        sheriff.submit_check(SimTime::ZERO, 100, "chegg.com", ProductId(2));
        sheriff.run(100_000);
        let done = sheriff.completed();
        assert_eq!(done.len(), 1);
        let elapsed = done[0].completed.since(done[0].submitted);
        // deadline + processing + db + slack
        assert!(elapsed.as_millis() < 10_000, "elapsed={elapsed:?}");
    }

    #[test]
    fn monitoring_panel_lists_servers() {
        let world = World::build(&WorldConfig::small(), 31);
        let sheriff = PriceSheriff::new(SheriffConfig::fast(31), world, &specs(Country::ES, 1));
        let panel = sheriff.monitoring_panel();
        assert!(panel.contains("ms-0"));
        assert!(panel.contains("ms-1"));
    }

    #[test]
    fn heartbeat_expiry_takes_servers_offline_mid_job() {
        let world = World::build(&WorldConfig::small(), 37);
        let mut cfg = SheriffConfig::fast(37);
        // Beacons never fire; the Coordinator's patience runs out while
        // the first job is still in flight.
        cfg.heartbeat_every_ms = 3_600_000;
        cfg.heartbeat_timeout_ms = 500;
        let mut sheriff = PriceSheriff::new(cfg, world, &specs(Country::ES, 3));
        sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(0));
        // By now every server's last heartbeat (t=0) is stale.
        sheriff.submit_check(SimTime::from_secs(5), 101, "steampowered.com", ProductId(1));
        sheriff.run_until(SimTime::from_mins(2));
        // The in-flight job still completes; the late one is refused.
        assert_eq!(sheriff.completed().len(), 1);
        let rejections = sheriff.rejections();
        assert_eq!(rejections.len(), 1);
        assert_eq!(rejections[0].0, 101);
        assert!(
            rejections[0].2.contains("NoServerAvailable"),
            "{:?}",
            rejections[0]
        );
        let snap = sheriff.telemetry().snapshot();
        assert!(snap.counters["coordinator.heartbeats_expired"] >= 1);
    }

    #[test]
    fn remove_server_refused_while_queue_non_drained() {
        let world = World::build(&WorldConfig::small(), 41);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(41), world, &specs(Country::ES, 3));
        sheriff.submit_check(SimTime::ZERO, 100, "amazon.com", ProductId(0));
        // The check is mid-flight at t=200ms: its server has pending work.
        sheriff.request_remove_server(SimTime::from_millis(200), 101, 0);
        sheriff.request_remove_server(SimTime::from_millis(200), 101, 1);
        // Well after completion both queues are drained.
        sheriff.request_remove_server(SimTime::from_secs(60), 102, 0);
        sheriff.run_until(SimTime::from_mins(2));
        assert_eq!(sheriff.completed().len(), 1);
        let removals = sheriff.server_removals();
        // One of the two t=200ms requests hits the busy server.
        assert!(removals.contains(&(0, true)) || removals.contains(&(1, true)));
        assert!(
            removals.iter().any(|&(_, removed)| !removed),
            "the busy server must refuse decommissioning: {removals:?}"
        );
    }
}
