//! The whole Price $heriff as a distributed system over the discrete-event
//! simulator (paper Fig. 1 / Fig. 3 / Fig. 6).
//!
//! Node roster: one Coordinator, one Aggregator, N Measurement servers, an
//! optional dedicated Database server (v2) — v1 integrates the DB into the
//! Measurement server, the bottleneck Table 1 quantifies — plus 30 IPCs and
//! any number of PPC/add-on nodes. The synthetic web ([`World`]) sits
//! behind an `Arc<Mutex<_>>`: fetch *timing* is simulated explicitly (the
//! heavy-tailed proxy delays of §5), only content generation is immediate.
//!
//! The full §3.2 price-check protocol is implemented message-for-message:
//!
//! 1. the user highlights a price (StartCheck): the add-on fetches its own
//!    page, builds the Tags Path (Fig. 4), and asks the Coordinator;
//! 2. the Coordinator whitelists, mints a job ID, picks the least-loaded
//!    Measurement server, and sends it the same-location PPC list
//!    (step 1.1);
//! 3. the add-on submits the job; the server fans out FetchOrders to all
//!    IPCs and the listed PPCs (steps 2–3.2);
//! 4. a PPC past its pollution budget asks the Aggregator for its
//!    doppelganger token and redeems it (bearer-token) at the Coordinator
//!    (steps 3.3–3.4);
//! 5. the server extracts + converts every response, persists via the
//!    Database, reports completion to the Coordinator, and streams the
//!    result page back to the initiator (steps 4–5).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;

use sheriff_currency::FixedRates;
use sheriff_geo::{Country, GeoLocator, Granularity, IpAllocator};
use sheriff_html::tagspath::TagsPath;
use sheriff_market::{CookieJar, ProductId, UserAgent, World};
use sheriff_netsim::{latency::sample_standard_normal, Ctx, Node, NodeId, SimTime, Simulator};
use sheriff_telemetry::{Counter, FieldValue, Gauge, Histogram, Registry};

use crate::latency::{GeoLatency, GeoLatencyConfig};

use crate::browser::BrowserProfile;
use crate::coordinator::{Coordinator, JobId, PeerId};
use crate::db::{Database, DbCostModel};
use crate::doppelganger::{AggregatorDirectory, DoppelgangerId, DoppelgangerStore};
use crate::measurement::{process_response, JobPageStore, VantageMeta};
use crate::pollution::{FetchMode, PollutionLedger};
use crate::proxy::{IpcEngine, PpcEngine};
use crate::records::{PriceCheck, PriceObservation, VantageKind};
use crate::whitelist::Whitelist;

/// Which architecture generation runs (Table 1's "Old" vs "New").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemVersion {
    /// $heriff v1: single Measurement server with an integrated RDBMS.
    V1,
    /// Price $heriff: Coordinator load balancing, slim Measurement servers,
    /// one dedicated Database server.
    V2,
}

/// All system knobs. Timing defaults are calibrated so the Table 1 shape
/// reproduces (see `sheriff-experiments`, `table1_performance`).
#[derive(Clone, Debug)]
pub struct SheriffConfig {
    /// Architecture generation.
    pub version: SystemVersion,
    /// Measurement servers (v1 forces 1).
    pub n_measurement_servers: usize,
    /// IPC vantage points as (country, city index). The paper ran 30.
    pub ipc_locations: Vec<(Country, usize)>,
    /// PPCs asked per request (§6.1: "approximately 3").
    pub ppc_per_request: usize,
    /// Currency of the result page.
    pub target_currency: String,
    /// RNG seed for the simulation.
    pub seed: u64,
    /// Median IPC page-fetch time, ms (PlanetLab vantage).
    pub ipc_fetch_median_ms: u64,
    /// Lognormal sigma of fetch times.
    pub fetch_sigma: f64,
    /// Probability an IPC fetch lands on an overloaded node (§5).
    pub ipc_overload_prob: f64,
    /// Overloaded-node fetch time, ms.
    pub ipc_overload_ms: u64,
    /// The production kill bound per proxy request (2 minutes, §5).
    pub fetch_kill_ms: u64,
    /// Median PPC page-fetch time, ms (residential browser).
    pub ppc_fetch_median_ms: u64,
    /// Measurement-server CPU per response processed, ms.
    pub proc_per_reply_ms: f64,
    /// Context-switch degradation per concurrent job.
    pub context_switch_alpha: f64,
    /// Give-up deadline for a job's outstanding fetches, ms.
    pub job_deadline_ms: u64,
    /// Database cost model.
    pub db_cost: DbCostModel,
    /// Serve doppelganger state to over-budget PPCs.
    pub enable_doppelgangers: bool,
}

impl SheriffConfig {
    /// The v1 $heriff configuration (Table 1 "Old Version").
    pub fn v1(seed: u64) -> Self {
        SheriffConfig {
            version: SystemVersion::V1,
            n_measurement_servers: 1,
            ipc_locations: default_ipc_locations(),
            ppc_per_request: 3,
            target_currency: "EUR".into(),
            seed,
            ipc_fetch_median_ms: 18_000,
            fetch_sigma: 0.45,
            ipc_overload_prob: 0.005,
            ipc_overload_ms: 300_000,
            fetch_kill_ms: 120_000,
            ppc_fetch_median_ms: 2_500,
            proc_per_reply_ms: 380.0,
            context_switch_alpha: 0.15,
            job_deadline_ms: 130_000,
            db_cost: DbCostModel::integrated(),
            enable_doppelgangers: false,
        }
    }

    /// The v2 Price $heriff configuration (Table 1 "New Version").
    pub fn v2(seed: u64, n_servers: usize) -> Self {
        SheriffConfig {
            version: SystemVersion::V2,
            n_measurement_servers: n_servers.max(1),
            ipc_locations: default_ipc_locations(),
            ppc_per_request: 3,
            target_currency: "EUR".into(),
            seed,
            ipc_fetch_median_ms: 18_000,
            fetch_sigma: 0.45,
            ipc_overload_prob: 0.005,
            ipc_overload_ms: 300_000,
            fetch_kill_ms: 120_000,
            ppc_fetch_median_ms: 2_500,
            proc_per_reply_ms: 60.0,
            context_switch_alpha: 0.05,
            job_deadline_ms: 130_000,
            db_cost: DbCostModel::dedicated(),
            enable_doppelgangers: true,
        }
    }

    /// Fast-fetch variant for functional tests (timings shrunk 100×).
    pub fn fast(seed: u64) -> Self {
        let mut cfg = SheriffConfig::v2(seed, 2);
        cfg.ipc_fetch_median_ms = 220;
        cfg.ipc_overload_ms = 3_000;
        cfg.fetch_kill_ms = 1_200;
        cfg.ppc_fetch_median_ms = 25;
        cfg.job_deadline_ms = 2_000;
        cfg
    }
}

/// The paper's 30 IPC deployment, spread over its measurement countries.
pub fn default_ipc_locations() -> Vec<(Country, usize)> {
    let mut out = vec![
        (Country::ES, 0),
        (Country::ES, 1),
        (Country::ES, 2),
        (Country::FR, 0),
        (Country::DE, 0),
        (Country::GB, 0),
        (Country::US, 0),
        (Country::US, 1),
        (Country::US, 2),
        (Country::CA, 0),
        (Country::CA, 1),
        (Country::JP, 0),
        (Country::JP, 1),
        (Country::KR, 0),
        (Country::CZ, 0),
        (Country::SE, 0),
        (Country::IL, 0),
        (Country::NZ, 0),
        (Country::BR, 0),
        (Country::AU, 0),
        (Country::NL, 0),
        (Country::BE, 0),
        (Country::CH, 0),
        (Country::IT, 0),
        (Country::PT, 0),
        (Country::IE, 0),
        (Country::HK, 0),
        (Country::SG, 0),
        (Country::TH, 0),
        (Country::PL, 0),
    ];
    debug_assert_eq!(out.len(), 30);
    out.shrink_to_fit();
    out
}

/// Simulation messages — the §3.2 protocol.
#[derive(Debug)]
pub enum Msg {
    /// User highlighted a price (injected).
    StartCheck {
        /// Retailer domain.
        domain: String,
        /// Product to check.
        product: ProductId,
        /// Initiator-local request tag.
        local_tag: u64,
    },
    /// Add-on → Coordinator (step 1).
    CoordRequest {
        /// Full product URL.
        url: String,
        /// Requesting peer.
        peer: PeerId,
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → add-on (step 2).
    CoordAssign {
        /// Minted job.
        job: JobId,
        /// Chosen Measurement server node.
        server: NodeId,
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → add-on: request refused.
    CoordReject {
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → Measurement server (step 1.1).
    PpcList {
        /// Job the list belongs to.
        job: JobId,
        /// Same-location peer nodes.
        ppcs: Vec<NodeId>,
    },
    /// Add-on → Measurement server (step 3).
    JobSubmit {
        /// Job id.
        job: JobId,
        /// Retailer domain.
        domain: String,
        /// Product.
        product: ProductId,
        /// The Tags Path built at selection time.
        tags_path: TagsPath,
        /// The initiator's own page (DiffStorage base).
        initiator_html: String,
        /// The initiator's own observation.
        initiator_obs: Box<PriceObservation>,
    },
    /// Measurement server → proxy (steps 3.1/3.2).
    FetchOrder {
        /// Job id.
        job: JobId,
        /// Retailer domain.
        domain: String,
        /// Product.
        product: ProductId,
        /// Per-vantage request sequence (drives per-request A/B arms).
        seq: u64,
    },
    /// Proxy → Measurement server.
    FetchReply {
        /// Job id.
        job: JobId,
        /// Vantage metadata.
        meta: VantageMeta,
        /// Fetched HTML.
        html: String,
    },
    /// PPC → Aggregator (step 3.3).
    DoppIdRequest {
        /// Job the fetch belongs to.
        job: JobId,
        /// Requesting peer.
        peer: u64,
    },
    /// Aggregator → PPC.
    DoppIdReply {
        /// Job echo.
        job: JobId,
        /// The bearer token, if the peer is clustered.
        token: Option<DoppelgangerId>,
    },
    /// PPC → Coordinator (step 3.4, anonymized in deployment).
    DoppStateRequest {
        /// Job echo.
        job: JobId,
        /// Bearer token.
        token: DoppelgangerId,
        /// Domain the fetch targets (budget accounting).
        domain: String,
    },
    /// Coordinator → PPC.
    DoppStateReply {
        /// Job echo.
        job: JobId,
        /// Client-side state, if the token was valid.
        state: Option<CookieJar>,
    },
    /// Coordinator → Aggregator: a token rotated after regeneration.
    TokenRotated {
        /// Old token.
        old: DoppelgangerId,
        /// New token.
        new: DoppelgangerId,
    },
    /// Measurement server → Database server (step 4, v2 only).
    StoreCheck {
        /// Job id.
        job: JobId,
        /// The assembled check.
        check: Box<PriceCheck>,
    },
    /// Database server → Measurement server.
    DbAck {
        /// Job id.
        job: JobId,
    },
    /// Measurement server → Coordinator (Fig. 6 step 4).
    JobComplete {
        /// Finished job.
        job: JobId,
    },
    /// Measurement server → add-on (step 5).
    Results {
        /// Job id.
        job: JobId,
        /// The full result set (the Fig. 2 page's data).
        check: Box<PriceCheck>,
    },
    /// Measurement server → Coordinator liveness.
    Heartbeat {
        /// Index in the Coordinator's server list.
        server_index: usize,
    },
}

const TIMER_DEADLINE: u64 = 0;
const TIMER_PROC_DONE: u64 = 1;
const TIMER_DB_DONE: u64 = 2;
const TIMER_HEARTBEAT: u64 = 3;

fn job_timer(job: JobId, kind: u64) -> u64 {
    job.0 * 8 + kind
}

fn timer_kind(token: u64) -> (JobId, u64) {
    (JobId(token / 8), token % 8)
}

fn day_of(now: SimTime) -> u32 {
    (now.as_millis() / 86_400_000) as u32
}

fn quarter_of(now: SimTime) -> u8 {
    ((now.as_millis() % 86_400_000) / 21_600_000) as u8
}

/// Lognormal sample around `median_ms`, clipped at `kill_ms`.
fn fetch_delay<R: Rng + ?Sized>(
    rng: &mut R,
    median_ms: u64,
    sigma: f64,
    overload_prob: f64,
    overload_ms: u64,
    kill_ms: u64,
) -> SimTime {
    let raw = if rng.gen::<f64>() < overload_prob {
        overload_ms
    } else {
        let mut srng = rand::rngs::StdRng::seed_from_u64(rng.gen());
        let z = sample_standard_normal(&mut srng);
        (median_ms as f64 * (sigma * z).exp()).round() as u64
    };
    SimTime::from_millis(raw.min(kill_ms))
}

use rand::SeedableRng;

// ---------------------------------------------------------------------
// Coordinator node
// ---------------------------------------------------------------------

struct CoordinatorNode {
    coordinator: Coordinator,
    dopp_store: DoppelgangerStore,
    universe: Vec<String>,
    /// Coordinator server-list index → Measurement node.
    server_nodes: Vec<NodeId>,
    /// Peer id → add-on node (transport directory).
    peer_nodes: HashMap<u64, NodeId>,
    /// Peer id registry data for the PPC list.
    aggregator: NodeId,
    ppc_per_request: usize,
}

impl Node<Msg> for CoordinatorNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::CoordRequest {
                url,
                peer,
                local_tag,
            } => match self.coordinator.new_request(&url, ctx.now.as_millis()) {
                Ok((job, server_idx)) => {
                    let server = self.server_nodes[server_idx];
                    // Step 1.1: PPC list for the initiator's location. The
                    // deployment got whichever same-location peers happened
                    // to be online — sample rather than always picking the
                    // same three.
                    let ppcs: Vec<NodeId> = match self.coordinator.peer(peer) {
                        Some(entry) => {
                            let loc = entry.location.clone();
                            let mut candidates: Vec<NodeId> = self
                                .coordinator
                                .peers_near(&loc, peer, usize::MAX)
                                .into_iter()
                                .filter_map(|p| self.peer_nodes.get(&p.0).copied())
                                .collect();
                            // Partial Fisher-Yates for the first k slots.
                            let k = self.ppc_per_request.min(candidates.len());
                            for i in 0..k {
                                let j = ctx.rng().gen_range(i..candidates.len());
                                candidates.swap(i, j);
                            }
                            candidates.truncate(k);
                            candidates
                        }
                        None => Vec::new(),
                    };
                    ctx.send(server, Msg::PpcList { job, ppcs });
                    ctx.send(
                        from,
                        Msg::CoordAssign {
                            job,
                            server,
                            local_tag,
                        },
                    );
                }
                Err(_) => ctx.send(from, Msg::CoordReject { local_tag }),
            },
            Msg::JobComplete { job } => self.coordinator.job_complete(job),
            Msg::Heartbeat { server_index } => {
                self.coordinator.heartbeat(server_index, ctx.now.as_millis());
            }
            Msg::DoppStateRequest { job, token, domain } => {
                let rng_seed: u64 = ctx.rng().gen();
                let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
                let state = self
                    .dopp_store
                    .serve(&token, &domain, &self.universe, &mut rng)
                    .and_then(|(new_token, _mode)| {
                        if new_token != token {
                            ctx.send(
                                self.aggregator,
                                Msg::TokenRotated {
                                    old: token,
                                    new: new_token,
                                },
                            );
                        }
                        self.dopp_store.client_state(&new_token).cloned()
                    });
                ctx.send(from, Msg::DoppStateReply { job, state });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Aggregator node
// ---------------------------------------------------------------------

struct AggregatorNode {
    directory: AggregatorDirectory,
    tokens: Vec<DoppelgangerId>,
}

impl Node<Msg> for AggregatorNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::DoppIdRequest { job, peer } => {
                let token = self.directory.token_for(peer);
                ctx.send(from, Msg::DoppIdReply { job, token });
            }
            Msg::TokenRotated { old, new } => {
                if let Some(pos) = self.tokens.iter().position(|t| *t == old) {
                    self.tokens[pos] = new;
                    self.directory.update_token(pos, new);
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Measurement server node
// ---------------------------------------------------------------------

/// Fan-out latency buckets (virtual ms): proxy fetches are heavy-tailed
/// (§5), so the grid spans two decades up to the job-deadline scale.
const FANOUT_LATENCY_EDGES: &[f64] = &[
    100.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0,
];

/// Modeled CPU cost buckets (ms) for extraction/assembly and DB stores.
const CPU_COST_EDGES: &[f64] = &[
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 5_000.0,
];

/// Cached handles for the Measurement-server hot path. Histograms are
/// shared across servers (same metric name); the active-jobs gauge is
/// per server.
struct MeasurementTelemetry {
    registry: Arc<Registry>,
    fanout_latency: Arc<Histogram>,
    assembly_cpu: Arc<Histogram>,
    replies: Arc<Counter>,
    late_replies: Arc<Counter>,
    bytes_stored: Arc<Counter>,
    bytes_full: Arc<Counter>,
    jobs_finished: Arc<Counter>,
    active_jobs: Arc<Gauge>,
    /// v1 integrated-RDBMS cost, published under the same names as the
    /// dedicated Database server so v1/v2 run reports line up.
    db_query_cost: Arc<Histogram>,
    db_queries: Arc<Counter>,
}

impl MeasurementTelemetry {
    fn new(registry: &Arc<Registry>, index: usize) -> Self {
        MeasurementTelemetry {
            db_query_cost: registry.histogram("db.query_cost_ms", CPU_COST_EDGES),
            db_queries: registry.counter("db.queries_total"),
            fanout_latency: registry.histogram("measurement.fanout_latency_ms", FANOUT_LATENCY_EDGES),
            assembly_cpu: registry.histogram("measurement.assembly_cpu_ms", CPU_COST_EDGES),
            replies: registry.counter("measurement.replies_total"),
            late_replies: registry.counter("measurement.late_replies"),
            bytes_stored: registry.counter("measurement.diff_bytes_stored"),
            bytes_full: registry.counter("measurement.diff_bytes_full"),
            jobs_finished: registry.counter("measurement.jobs_finished"),
            active_jobs: registry.gauge(&format!("measurement.{index:03}.active_jobs")),
            registry: Arc::clone(registry),
        }
    }
}

struct JobState {
    domain: String,
    product: ProductId,
    tags_path: TagsPath,
    page_store: JobPageStore,
    observations: Vec<PriceObservation>,
    initiator: NodeId,
    expected: usize,
    received: usize,
    day: u32,
    fanned_out: bool,
    /// Virtual time the FetchOrders went out (span start).
    fanout_at: SimTime,
    ppcs: Option<Vec<NodeId>>,
    submit: Option<Box<SubmitData>>,
    assembled: bool,
}

struct SubmitData {
    tags_path: TagsPath,
    initiator_html: String,
    initiator_obs: PriceObservation,
    domain: String,
    product: ProductId,
    initiator: NodeId,
}

struct MeasurementNode {
    index: usize,
    coordinator: NodeId,
    db: Option<NodeId>,
    ipcs: Vec<NodeId>,
    jobs: HashMap<JobId, JobState>,
    rates: FixedRates,
    target_currency: String,
    proc_per_reply_ms: f64,
    context_switch_alpha: f64,
    job_deadline_ms: u64,
    db_cost: DbCostModel,
    integrated_db: bool,
    database: Database, // v1 integrated storage (v2 keeps it on DbNode)
    cpu_free_at: SimTime,
    heartbeat_every: SimTime,
    telemetry: MeasurementTelemetry,
}

impl MeasurementNode {
    fn active_jobs(&self) -> usize {
        self.jobs.values().filter(|j| !j.assembled).count()
    }

    fn try_fan_out(&mut self, ctx: &mut Ctx<'_, Msg>, job: JobId) {
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.fanned_out || state.submit.is_none() || state.ppcs.is_none() {
            return;
        }
        let submit = state.submit.take().expect("checked");
        let ppcs = state.ppcs.clone().expect("checked");

        state.domain = submit.domain.clone();
        state.product = submit.product;
        state.tags_path = submit.tags_path.clone();
        state.page_store = JobPageStore::new(&submit.initiator_html);
        state.observations.push(submit.initiator_obs);
        state.initiator = submit.initiator;
        state.fanned_out = true;
        state.fanout_at = ctx.now;
        state.expected = self.ipcs.len() + ppcs.len();

        let mut seq = job.0 * 100;
        for &ipc in &self.ipcs {
            seq += 1;
            ctx.send(
                ipc,
                Msg::FetchOrder {
                    job,
                    domain: submit.domain.clone(),
                    product: submit.product,
                    seq,
                },
            );
        }
        for &ppc in &ppcs {
            seq += 1;
            ctx.send(
                ppc,
                Msg::FetchOrder {
                    job,
                    domain: submit.domain.clone(),
                    product: submit.product,
                    seq,
                },
            );
        }
        ctx.set_timer(
            SimTime::from_millis(self.job_deadline_ms),
            job_timer(job, TIMER_DEADLINE),
        );
    }

    /// All replies in (or deadline): charge CPU for extraction and schedule
    /// the proc-done timer on the shared-CPU queue.
    fn begin_assembly(&mut self, ctx: &mut Ctx<'_, Msg>, job: JobId) {
        let active = self.active_jobs();
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.assembled {
            return;
        }
        state.assembled = true;
        let cs_factor = 1.0 + self.context_switch_alpha * (active.saturating_sub(1)) as f64;
        let mut proc_ms =
            self.proc_per_reply_ms * (state.received + 1) as f64 * cs_factor;
        if self.integrated_db {
            // v1: the RDBMS shares the CPU — its cost rides the same queue.
            let db_ms = self.db_cost.store_cost_ms(
                state.observations.len().max(state.received + 1),
                active as u32,
            ) as f64;
            self.telemetry.db_queries.inc();
            self.telemetry.db_query_cost.observe(db_ms);
            proc_ms += db_ms;
        }
        let start = self.cpu_free_at.max(ctx.now);
        let done = start.plus(SimTime::from_millis(proc_ms.round() as u64));
        self.cpu_free_at = done;
        self.telemetry.assembly_cpu.observe(proc_ms);
        self.telemetry.active_jobs.set(self.active_jobs() as i64);
        ctx.set_timer(done.since(ctx.now), job_timer(job, TIMER_PROC_DONE));
    }

    fn finish_job(&mut self, ctx: &mut Ctx<'_, Msg>, job: JobId) {
        let Some(state) = self.jobs.remove(&job) else {
            return;
        };
        let (stored, full) = state.page_store.accounting();
        self.telemetry.bytes_stored.add(stored as u64);
        self.telemetry.bytes_full.add(full as u64);
        self.telemetry.jobs_finished.inc();
        self.telemetry.active_jobs.set(self.active_jobs() as i64);
        self.telemetry.registry.span(
            state.fanout_at.as_millis(),
            ctx.now.as_millis(),
            "measurement.job",
            vec![
                ("job", FieldValue::U64(job.0)),
                ("server", FieldValue::U64(self.index as u64)),
                ("replies", FieldValue::U64(state.received as u64)),
            ],
        );
        let check = PriceCheck {
            job_id: job.0,
            domain: state.domain.clone(),
            url: format!("{}/product/{}", state.domain, state.product.0),
            day: state.day,
            observations: state.observations,
        };
        if self.integrated_db {
            self.database.store(check.clone());
        }
        ctx.send(self.coordinator, Msg::JobComplete { job });
        ctx.send(
            state.initiator,
            Msg::Results {
                job,
                check: Box::new(check),
            },
        );
    }
}

impl Node<Msg> for MeasurementNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::PpcList { job, ppcs } => {
                let state = self.jobs.entry(job).or_insert_with(|| JobState {
                    domain: String::new(),
                    product: ProductId(0),
                    tags_path: TagsPath { steps: vec![] },
                    page_store: JobPageStore::new(""),
                    observations: Vec::new(),
                    initiator: from,
                    expected: usize::MAX,
                    received: 0,
                    day: day_of(ctx.now),
                    fanned_out: false,
                    fanout_at: SimTime::ZERO,
                    ppcs: None,
                    submit: None,
                    assembled: false,
                });
                state.ppcs = Some(ppcs);
                self.try_fan_out(ctx, job);
            }
            Msg::JobSubmit {
                job,
                domain,
                product,
                tags_path,
                initiator_html,
                initiator_obs,
            } => {
                let state = self.jobs.entry(job).or_insert_with(|| JobState {
                    domain: String::new(),
                    product: ProductId(0),
                    tags_path: TagsPath { steps: vec![] },
                    page_store: JobPageStore::new(""),
                    observations: Vec::new(),
                    initiator: from,
                    expected: usize::MAX,
                    received: 0,
                    day: day_of(ctx.now),
                    fanned_out: false,
                    fanout_at: SimTime::ZERO,
                    ppcs: None,
                    submit: None,
                    assembled: false,
                });
                state.submit = Some(Box::new(SubmitData {
                    tags_path,
                    initiator_html,
                    initiator_obs: *initiator_obs,
                    domain,
                    product,
                    initiator: from,
                }));
                self.try_fan_out(ctx, job);
            }
            Msg::FetchReply { job, meta, html } => {
                let target = self.target_currency.clone();
                let rates = self.rates.clone();
                let Some(state) = self.jobs.get_mut(&job) else {
                    self.telemetry.late_replies.inc();
                    return; // late reply after deadline assembly
                };
                if state.assembled {
                    self.telemetry.late_replies.inc();
                    return;
                }
                self.telemetry.replies.inc();
                self.telemetry
                    .fanout_latency
                    .observe(ctx.now.since(state.fanout_at).as_millis() as f64);
                let obs = process_response(&html, &state.tags_path, &meta, &target, &rates);
                state.page_store.store_response(&html);
                state.observations.push(obs);
                state.received += 1;
                if state.received >= state.expected {
                    self.begin_assembly(ctx, job);
                }
            }
            Msg::DbAck { job } => self.finish_job(ctx, job),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token == TIMER_HEARTBEAT {
            ctx.send(
                self.coordinator,
                Msg::Heartbeat {
                    server_index: self.index,
                },
            );
            ctx.set_timer(self.heartbeat_every, TIMER_HEARTBEAT);
            return;
        }
        let (job, kind) = timer_kind(token);
        match kind {
            TIMER_DEADLINE
                // Assemble with whatever arrived (§10.3's corrective path).
                if self.jobs.get(&job).is_some_and(|s| !s.assembled) => {
                    self.begin_assembly(ctx, job);
                }
            TIMER_PROC_DONE => {
                if self.integrated_db {
                    // DB cost already charged on the CPU queue.
                    self.finish_job(ctx, job);
                } else if let Some(db) = self.db {
                    if let Some(state) = self.jobs.get(&job) {
                        let check = PriceCheck {
                            job_id: job.0,
                            domain: state.domain.clone(),
                            url: format!("{}/product/{}", state.domain, state.product.0),
                            day: state.day,
                            observations: state.observations.clone(),
                        };
                        ctx.send(
                            db,
                            Msg::StoreCheck {
                                job,
                                check: Box::new(check),
                            },
                        );
                    }
                }
            }
            TIMER_DB_DONE => self.finish_job(ctx, job),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Database server node (v2)
// ---------------------------------------------------------------------

/// Cached handles for the Database-server hot path.
struct DbTelemetry {
    query_cost: Arc<Histogram>,
    queries: Arc<Counter>,
    active: Arc<Gauge>,
    max_active: Arc<Gauge>,
}

impl DbTelemetry {
    fn new(registry: &Arc<Registry>) -> Self {
        DbTelemetry {
            query_cost: registry.histogram("db.query_cost_ms", CPU_COST_EDGES),
            queries: registry.counter("db.queries_total"),
            active: registry.gauge("db.active_queries"),
            max_active: registry.gauge("db.active_queries_max"),
        }
    }
}

struct DbNode {
    database: Database,
    cost: DbCostModel,
    active: u32,
    pending: HashMap<JobId, NodeId>,
    telemetry: DbTelemetry,
}

impl Node<Msg> for DbNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        if let Msg::StoreCheck { job, check } = msg {
            self.active += 1;
            let cost = self.cost.store_cost_ms(check.observations.len(), self.active);
            self.database.store(*check);
            self.pending.insert(job, from);
            self.telemetry.queries.inc();
            self.telemetry.query_cost.observe(cost as f64);
            self.telemetry.active.set(self.active as i64);
            if (self.active as i64) > self.telemetry.max_active.get() {
                self.telemetry.max_active.set(self.active as i64);
            }
            ctx.set_timer(SimTime::from_millis(cost), job.0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let job = JobId(token);
        self.active = self.active.saturating_sub(1);
        self.telemetry.active.set(self.active as i64);
        if let Some(requester) = self.pending.remove(&job) {
            ctx.send(requester, Msg::DbAck { job });
        }
    }
}

// ---------------------------------------------------------------------
// IPC node
// ---------------------------------------------------------------------

struct IpcNode {
    engine: IpcEngine,
    world: Arc<Mutex<World>>,
    fetch_median_ms: u64,
    fetch_sigma: f64,
    overload_prob: f64,
    overload_ms: u64,
    kill_ms: u64,
    city: Option<String>,
}

impl Node<Msg> for IpcNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        if let Msg::FetchOrder {
            job,
            domain,
            product,
            seq,
        } = msg
        {
            let day = day_of(ctx.now);
            let quarter = quarter_of(ctx.now);
            let fetched = {
                let mut world = self.world.lock();
                self.engine.fetch(
                    &mut world,
                    &domain,
                    product,
                    day,
                    quarter,
                    ctx.now.as_millis(),
                    seq,
                )
            };
            let Some(fetch) = fetched else {
                return;
            };
            let meta = VantageMeta {
                kind: VantageKind::Ipc,
                id: self.engine.id,
                country: self.engine.country,
                city: self.city.clone(),
                ip: self.engine.ip,
            };
            let delay = fetch_delay(
                ctx.rng(),
                self.fetch_median_ms,
                self.fetch_sigma,
                self.overload_prob,
                self.overload_ms,
                self.kill_ms,
            );
            ctx.send_after(
                delay,
                from,
                Msg::FetchReply {
                    job,
                    meta,
                    html: fetch.html,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------
// PPC / add-on node
// ---------------------------------------------------------------------

/// A completed price check as recorded by the initiating add-on.
#[derive(Clone, Debug)]
pub struct CompletedCheck {
    /// The result set.
    pub check: PriceCheck,
    /// When the user clicked.
    pub submitted: SimTime,
    /// When the result page finished.
    pub completed: SimTime,
}

struct PendingFetch {
    reply_to: NodeId,
    domain: String,
    product: ProductId,
    seq: u64,
}

struct AddonNode {
    engine: PpcEngine,
    world: Arc<Mutex<World>>,
    coordinator: NodeId,
    aggregator: NodeId,
    city: Option<String>,
    target_currency: String,
    fetch_median_ms: u64,
    fetch_sigma: f64,
    kill_ms: u64,
    doppelgangers_enabled: bool,
    /// Own requests in flight: local_tag → (domain, product, submitted).
    own_pending: HashMap<u64, (String, ProductId, SimTime)>,
    /// Jobs assigned: job → local_tag (to find submit data).
    job_tags: HashMap<JobId, u64>,
    /// Remote fetches waiting on doppelganger state.
    dopp_pending: HashMap<JobId, PendingFetch>,
    /// Completed own checks.
    completed: Vec<CompletedCheck>,
    /// Sandbox failures observed while serving (must stay 0).
    sandbox_violations: usize,
}

impl AddonNode {
    #[allow(clippy::too_many_arguments)] // mirrors the FetchOrder message
    fn serve_fetch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        job: JobId,
        reply_to: NodeId,
        domain: &str,
        product: ProductId,
        seq: u64,
        dopp_state: Option<&CookieJar>,
    ) {
        let day = day_of(ctx.now);
        let quarter = quarter_of(ctx.now);
        let fetched = {
            let mut world = self.world.lock();
            self.engine.remote_fetch(
                &mut world,
                domain,
                product,
                day,
                quarter,
                ctx.now.as_millis(),
                seq,
                dopp_state,
            )
        };
        let Some(fetch) = fetched else {
            return;
        };
        if fetch.sandbox.is_some_and(|r| !r.is_clean()) {
            self.sandbox_violations += 1;
        }
        let meta = VantageMeta {
            kind: VantageKind::Ppc,
            id: self.engine.peer_id,
            country: self.engine.country,
            city: self.city.clone(),
            ip: self.engine.ip,
        };
        let delay = fetch_delay(
            ctx.rng(),
            self.fetch_median_ms,
            self.fetch_sigma,
            0.0,
            0,
            self.kill_ms,
        );
        ctx.send_after(
            delay,
            reply_to,
            Msg::FetchReply {
                job,
                meta,
                html: fetch.html,
            },
        );
    }
}

impl Node<Msg> for AddonNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::StartCheck {
                domain,
                product,
                local_tag,
            } => {
                self.own_pending
                    .insert(local_tag, (domain.clone(), product, ctx.now));
                let url = format!("{domain}/product/{}", product.0);
                ctx.send(
                    self.coordinator,
                    Msg::CoordRequest {
                        url,
                        peer: PeerId(self.engine.peer_id),
                        local_tag,
                    },
                );
            }
            Msg::CoordAssign {
                job,
                server,
                local_tag,
            } => {
                // Any failure to produce a selection (CAPTCHA on the
                // initiator's own fetch, vanished product page) must
                // release the job at the Coordinator, or its pending
                // counter would leak (§10.3's corrective concern).
                let abort = |ctx: &mut Ctx<'_, Msg>, me: &mut Self| {
                    me.own_pending.remove(&local_tag);
                    me.job_tags.remove(&job);
                    ctx.send(me.coordinator, Msg::JobComplete { job });
                };
                let Some((domain, product, _)) = self.own_pending.get(&local_tag).cloned() else {
                    ctx.send(self.coordinator, Msg::JobComplete { job });
                    return;
                };
                self.job_tags.insert(job, local_tag);
                // The user is on the page: fetch it as a real visit, select
                // the price, build the Tags Path (Fig. 4).
                let day = day_of(ctx.now);
                let quarter = quarter_of(ctx.now);
                let (html, selection_el) = {
                    let mut world = self.world.lock();
                    let Some(html) = self.engine.initiator_fetch(
                        &mut world,
                        &domain,
                        product,
                        day,
                        quarter,
                        ctx.now.as_millis(),
                        job.0 * 100,
                    ) else {
                        drop(world);
                        abort(ctx, self);
                        return;
                    };
                    let template = world
                        .retailer(&domain)
                        .map(|r| r.template)
                        .unwrap_or(0);
                    (html, sheriff_market::page::price_markup(template))
                };
                let doc = sheriff_html::Document::parse(&html);
                let Some(el) = doc.find_by_class(selection_el.0, selection_el.1) else {
                    abort(ctx, self);
                    return;
                };
                let Some(tags_path) = TagsPath::from_node(&doc, el) else {
                    abort(ctx, self);
                    return;
                };
                let meta = VantageMeta {
                    kind: VantageKind::Initiator,
                    id: self.engine.peer_id,
                    country: self.engine.country,
                    city: self.city.clone(),
                    ip: self.engine.ip,
                };
                let rates = self.world.lock().rates.clone();
                let obs =
                    process_response(&html, &tags_path, &meta, &self.target_currency, &rates);
                ctx.send(
                    server,
                    Msg::JobSubmit {
                        job,
                        domain,
                        product,
                        tags_path,
                        initiator_html: html,
                        initiator_obs: Box::new(obs),
                    },
                );
            }
            Msg::CoordReject { local_tag } => {
                self.own_pending.remove(&local_tag);
            }
            Msg::FetchOrder {
                job,
                domain,
                product,
                seq,
            } => {
                let needs_dopp = self.doppelgangers_enabled
                    && self.engine.peek_mode(&domain) == FetchMode::Doppelganger;
                if needs_dopp {
                    self.dopp_pending.insert(
                        job,
                        PendingFetch {
                            reply_to: from,
                            domain: domain.clone(),
                            product,
                            seq,
                        },
                    );
                    ctx.send(
                        self.aggregator,
                        Msg::DoppIdRequest {
                            job,
                            peer: self.engine.peer_id,
                        },
                    );
                } else {
                    self.serve_fetch(ctx, job, from, &domain, product, seq, None);
                }
            }
            Msg::DoppIdReply { job, token } => match (token, self.dopp_pending.get(&job)) {
                (Some(token), Some(p)) => {
                    let domain = p.domain.clone();
                    ctx.send(
                        self.coordinator,
                        Msg::DoppStateRequest { job, token, domain },
                    );
                }
                (None, Some(_)) => {
                    // Unclustered peer: fall back to a clean sandboxed fetch.
                    if let Some(p) = self.dopp_pending.remove(&job) {
                        self.serve_fetch(
                            ctx, job, p.reply_to, &p.domain.clone(), p.product, p.seq, None,
                        );
                    }
                }
                _ => {}
            },
            Msg::DoppStateReply { job, state } => {
                if let Some(p) = self.dopp_pending.remove(&job) {
                    self.serve_fetch(
                        ctx,
                        job,
                        p.reply_to,
                        &p.domain.clone(),
                        p.product,
                        p.seq,
                        state.as_ref(),
                    );
                }
            }
            Msg::Results { job, check } => {
                if let Some(tag) = self.job_tags.remove(&job) {
                    if let Some((_, _, submitted)) = self.own_pending.remove(&tag) {
                        self.completed.push(CompletedCheck {
                            check: *check,
                            submitted,
                            completed: ctx.now,
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

/// Specification of one peer joining the system.
#[derive(Clone, Debug)]
pub struct PpcSpec {
    /// Stable peer id.
    pub peer_id: u64,
    /// Country of residence.
    pub country: Country,
    /// City index within the country.
    pub city_idx: usize,
    /// Browser platform.
    pub user_agent: UserAgent,
    /// Affluence score ∈ \[0,1\] (drives tracker profiles).
    pub affluence: f64,
    /// Domains where the user stays signed in.
    pub logged_in_domains: Vec<String>,
}

/// The assembled system.
///
/// ```
/// use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
/// use sheriff_geo::Country;
/// use sheriff_market::pricing::{Browser, Os};
/// use sheriff_market::world::WorldConfig;
/// use sheriff_market::{ProductId, UserAgent, World};
/// use sheriff_netsim::SimTime;
///
/// let world = World::build(&WorldConfig::small(), 1);
/// let peers = vec![PpcSpec {
///     peer_id: 100,
///     country: Country::ES,
///     city_idx: 0,
///     user_agent: UserAgent { os: Os::Linux, browser: Browser::Firefox },
///     affluence: 0.2,
///     logged_in_domains: vec![],
/// }];
/// let mut sheriff = PriceSheriff::new(SheriffConfig::fast(1), world, &peers);
/// sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(0));
/// sheriff.run_until(SimTime::from_mins(2));
///
/// let done = sheriff.completed();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].check.has_difference(0.05), "steam discriminates by country");
/// assert_eq!(sheriff.sandbox_violations(), 0);
/// ```
pub struct PriceSheriff {
    /// The underlying simulator (exposed for custom drivers).
    pub sim: Simulator<Msg>,
    coordinator: NodeId,
    aggregator: NodeId,
    ppc_nodes: HashMap<u64, NodeId>,
    world: Arc<Mutex<World>>,
    next_tag: u64,
    cfg: SheriffConfig,
    telemetry: Arc<Registry>,
}

impl PriceSheriff {
    /// Builds the full system over `world` with the given peers. Every
    /// world domain is whitelisted (the deployment's manual curation).
    pub fn new(cfg: SheriffConfig, world: World, ppcs: &[PpcSpec]) -> Self {
        let whitelist = Whitelist::with_domains(world.domains().map(str::to_string));
        let world = Arc::new(Mutex::new(world));
        let rates = world.lock().rates.clone();
        let mut alloc = IpAllocator::new();
        let locator = GeoLocator::new(Granularity::City);

        // Reserve node 0 and 1 for coordinator and aggregator by adding
        // them first with placeholder wiring filled in afterwards — instead
        // we add them after computing all IDs. NodeIds are sequential, so
        // precompute the layout: [coordinator, aggregator, db?, servers…,
        // ipcs…, ppcs…].
        let n_servers = if cfg.version == SystemVersion::V1 {
            1
        } else {
            cfg.n_measurement_servers
        };
        let has_db = cfg.version == SystemVersion::V2;
        let coordinator_id = NodeId(0);
        let aggregator_id = NodeId(1);
        let db_id = if has_db { Some(NodeId(2)) } else { None };
        let first_server = 2 + usize::from(has_db);
        let server_ids: Vec<NodeId> = (0..n_servers).map(|i| NodeId(first_server + i)).collect();
        let first_ipc = first_server + n_servers;
        let ipc_ids: Vec<NodeId> = (0..cfg.ipc_locations.len())
            .map(|i| NodeId(first_ipc + i))
            .collect();
        let first_ppc = first_ipc + cfg.ipc_locations.len();

        // Geography-aware message latency: infrastructure (coordinator,
        // aggregator, DB, measurement servers) is "in the cloud"; IPCs and
        // PPCs sit in their countries.
        let mut node_countries: Vec<Option<Country>> = vec![None; first_ipc];
        node_countries.extend(cfg.ipc_locations.iter().map(|&(c, _)| Some(c)));
        node_countries.extend(ppcs.iter().map(|s| Some(s.country)));
        let latency = GeoLatency::new(GeoLatencyConfig::default(), node_countries);
        let mut sim: Simulator<Msg> = Simulator::new(Box::new(latency), cfg.seed);

        // One shared registry for the whole system: coordinator, servers,
        // DB, and the simulation engine all publish into it, and the run
        // report / monitoring panel read from it.
        let telemetry = Arc::new(Registry::new());
        sim.set_telemetry(Arc::clone(&telemetry));

        // Coordinator state.
        let mut coordinator = Coordinator::with_telemetry(whitelist, Arc::clone(&telemetry));
        for (i, &sid) in server_ids.iter().enumerate() {
            let _ = sid;
            coordinator.register_server(&format!("ms-{i}"), 80, 0);
        }
        let mut peer_nodes = HashMap::new();
        let mut ppc_specs_with_ip = Vec::new();
        for (i, spec) in ppcs.iter().enumerate() {
            let ip = alloc.allocate(spec.country, spec.city_idx);
            let node = NodeId(first_ppc + i);
            peer_nodes.insert(spec.peer_id, node);
            let location = locator
                .locate(ip)
                .expect("allocated IPs always geolocate");
            coordinator.peer_online(PeerId(spec.peer_id), ip, location.clone());
            ppc_specs_with_ip.push((spec.clone(), ip, location));
        }

        let coord_node = CoordinatorNode {
            coordinator,
            dopp_store: DoppelgangerStore::new(),
            universe: Vec::new(),
            server_nodes: server_ids.clone(),
            peer_nodes: peer_nodes.clone(),
            aggregator: aggregator_id,
            ppc_per_request: cfg.ppc_per_request,
        };
        assert_eq!(sim.add_node(Box::new(coord_node)), coordinator_id);

        let agg_node = AggregatorNode {
            directory: AggregatorDirectory::new(&[], Vec::new()),
            tokens: Vec::new(),
        };
        assert_eq!(sim.add_node(Box::new(agg_node)), aggregator_id);

        if has_db {
            let db_node = DbNode {
                database: Database::new(),
                cost: cfg.db_cost,
                active: 0,
                pending: HashMap::new(),
                telemetry: DbTelemetry::new(&telemetry),
            };
            assert_eq!(sim.add_node(Box::new(db_node)), db_id.expect("has_db"));
        }

        for (i, &sid) in server_ids.iter().enumerate() {
            let node = MeasurementNode {
                index: i,
                coordinator: coordinator_id,
                db: db_id,
                ipcs: ipc_ids.clone(),
                jobs: HashMap::new(),
                rates: rates.clone(),
                target_currency: cfg.target_currency.clone(),
                proc_per_reply_ms: cfg.proc_per_reply_ms,
                context_switch_alpha: cfg.context_switch_alpha,
                job_deadline_ms: cfg.job_deadline_ms,
                db_cost: cfg.db_cost,
                integrated_db: cfg.version == SystemVersion::V1,
                database: Database::new(),
                cpu_free_at: SimTime::ZERO,
                heartbeat_every: SimTime::from_secs(10),
                telemetry: MeasurementTelemetry::new(&telemetry, i),
            };
            assert_eq!(sim.add_node(Box::new(node)), sid);
            sim.inject_timer(SimTime::from_millis(100), sid, TIMER_HEARTBEAT);
        }

        for (i, &(country, city_idx)) in cfg.ipc_locations.iter().enumerate() {
            let ip = alloc.allocate(country, city_idx);
            let city = locator.locate(ip).and_then(|l| l.city);
            let node = IpcNode {
                engine: IpcEngine {
                    id: i as u64,
                    country,
                    city_idx,
                    ip,
                    user_agent: UserAgent {
                        os: sheriff_market::pricing::Os::Linux,
                        browser: sheriff_market::pricing::Browser::Firefox,
                    },
                },
                world: Arc::clone(&world),
                fetch_median_ms: cfg.ipc_fetch_median_ms,
                fetch_sigma: cfg.fetch_sigma,
                overload_prob: cfg.ipc_overload_prob,
                overload_ms: cfg.ipc_overload_ms,
                kill_ms: cfg.fetch_kill_ms,
                city,
            };
            assert_eq!(sim.add_node(Box::new(node)), ipc_ids[i]);
        }

        for (i, (spec, ip, location)) in ppc_specs_with_ip.into_iter().enumerate() {
            let node = AddonNode {
                engine: PpcEngine {
                    peer_id: spec.peer_id,
                    browser: BrowserProfile::new(),
                    ledger: PollutionLedger::new(),
                    ip,
                    country: spec.country,
                    city_idx: spec.city_idx,
                    user_agent: spec.user_agent,
                    affluence: spec.affluence,
                    logged_in_domains: spec.logged_in_domains.clone(),
                },
                world: Arc::clone(&world),
                coordinator: coordinator_id,
                aggregator: aggregator_id,
                city: location.city,
                target_currency: cfg.target_currency.clone(),
                fetch_median_ms: cfg.ppc_fetch_median_ms,
                fetch_sigma: cfg.fetch_sigma,
                kill_ms: cfg.fetch_kill_ms,
                doppelgangers_enabled: cfg.enable_doppelgangers,
                own_pending: HashMap::new(),
                job_tags: HashMap::new(),
                dopp_pending: HashMap::new(),
                completed: Vec::new(),
                sandbox_violations: 0,
            };
            assert_eq!(sim.add_node(Box::new(node)), NodeId(first_ppc + i));
        }

        PriceSheriff {
            sim,
            coordinator: coordinator_id,
            aggregator: aggregator_id,
            ppc_nodes: peer_nodes,
            world,
            next_tag: 1,
            cfg,
            telemetry,
        }
    }

    /// The shared telemetry registry (snapshot it for run reports).
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// The shared world handle.
    pub fn world(&self) -> Arc<Mutex<World>> {
        Arc::clone(&self.world)
    }

    /// Configuration in force.
    pub fn config(&self) -> &SheriffConfig {
        &self.cfg
    }

    /// Submits a price check from `peer` at virtual time `at`.
    pub fn submit_check(&mut self, at: SimTime, peer: u64, domain: &str, product: ProductId) {
        let node = *self
            .ppc_nodes
            .get(&peer)
            .unwrap_or_else(|| panic!("unknown peer {peer}"));
        let tag = self.next_tag;
        self.next_tag += 1;
        self.sim.inject(
            at,
            node,
            node,
            Msg::StartCheck {
                domain: domain.to_string(),
                product,
                local_tag: tag,
            },
        );
    }

    /// Lets a peer browse a product page for themselves (builds pollution
    /// budget and realistic state).
    pub fn prime_visit(&mut self, peer: u64, domain: &str, product: ProductId, n: u64) {
        let node = *self.ppc_nodes.get(&peer).expect("unknown peer");
        let world = Arc::clone(&self.world);
        let addon = self
            .sim
            .node_mut::<AddonNode>(node)
            .expect("ppc node type");
        let mut w = world.lock();
        for i in 0..n {
            addon
                .engine
                .user_visit(&mut w, domain, product, 0, i * 1000, i);
        }
    }

    /// Installs doppelgangers: trains one per centroid at the Coordinator
    /// and hands the Aggregator the peer→cluster mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn install_doppelgangers(
        &mut self,
        centroids: &[Vec<u64>],
        universe: &[String],
        assignments: &[(u64, usize)],
        seed: u64,
    ) {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tokens = {
            let coord = self
                .sim
                .node_mut::<CoordinatorNode>(self.coordinator)
                .expect("coordinator node");
            coord.universe = universe.to_vec();
            coord.dopp_store.train_all(centroids, universe, &mut rng)
        };
        let agg = self
            .sim
            .node_mut::<AggregatorNode>(self.aggregator)
            .expect("aggregator node");
        agg.directory = AggregatorDirectory::new(assignments, tokens.clone());
        agg.tokens = tokens;
    }

    /// Runs the simulation until idle (bounded by `max_events`). Note the
    /// heartbeat protocol keeps the event queue alive indefinitely, so this
    /// always consumes the full budget — prefer [`PriceSheriff::run_until`]
    /// when a virtual deadline is known.
    pub fn run(&mut self, max_events: u64) -> u64 {
        self.sim.run_until_idle(max_events)
    }

    /// Runs the simulation until virtual time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Harvests every completed check across all peers.
    pub fn completed(&self) -> Vec<CompletedCheck> {
        let mut out = Vec::new();
        for &node in self.ppc_nodes.values() {
            if let Some(addon) = self.sim.node_ref::<AddonNode>(node) {
                out.extend(addon.completed.iter().cloned());
            }
        }
        out.sort_by_key(|c| c.check.job_id);
        out
    }

    /// Total sandbox violations observed across peers (must be 0 — the
    /// §3.6.1 validation).
    pub fn sandbox_violations(&self) -> usize {
        self.ppc_nodes
            .values()
            .filter_map(|&n| self.sim.node_ref::<AddonNode>(n))
            .map(|a| a.sandbox_violations)
            .sum()
    }

    /// The Coordinator's Fig. 7 monitoring panel.
    pub fn monitoring_panel(&self) -> String {
        self.sim
            .node_ref::<CoordinatorNode>(self.coordinator)
            .map(|c| c.coordinator.monitoring_panel())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_market::pricing::{Browser, Os};
    use sheriff_market::world::WorldConfig;

    fn specs(country: Country, n: u64) -> Vec<PpcSpec> {
        (0..n)
            .map(|i| PpcSpec {
                peer_id: 100 + i,
                country,
                city_idx: 0,
                user_agent: UserAgent {
                    os: Os::Windows,
                    browser: Browser::Chrome,
                },
                affluence: 0.3 + 0.1 * (i as f64 % 5.0),
                logged_in_domains: vec![],
            })
            .collect()
    }

    #[test]
    fn end_to_end_price_check_completes() {
        let world = World::build(&WorldConfig::small(), 11);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(11), world, &specs(Country::ES, 4));
        sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(0));
        sheriff.run(100_000);
        let done = sheriff.completed();
        assert_eq!(done.len(), 1, "check must complete");
        let check = &done[0].check;
        // Initiator + 30 IPCs + up to 3 PPCs.
        assert!(check.observations.len() >= 31, "got {}", check.observations.len());
        assert!(check.observations.len() <= 34);
        let valid = check.valid().count();
        assert!(valid >= 31, "valid={valid}");
        // Steam discriminates by country: differences must be visible.
        assert!(check.has_difference(0.01), "spread={:?}", check.relative_spread());
        assert_eq!(sheriff.sandbox_violations(), 0);
    }

    #[test]
    fn uniform_store_shows_no_difference() {
        let world = World::build(&WorldConfig::small(), 13);
        let domain = world
            .domains()
            .find(|d| d.starts_with("store-"))
            .unwrap()
            .to_string();
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(13), world, &specs(Country::ES, 4));
        sheriff.submit_check(SimTime::ZERO, 100, &domain, ProductId(0));
        sheriff.run(100_000);
        let done = sheriff.completed();
        assert_eq!(done.len(), 1);
        // Allow sub-0.5% conversion rounding noise, nothing more.
        assert!(!done[0].check.has_difference(0.005));
    }

    #[test]
    fn concurrent_checks_all_complete() {
        let world = World::build(&WorldConfig::small(), 17);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(17), world, &specs(Country::FR, 6));
        for (i, peer) in (100..106).enumerate() {
            sheriff.submit_check(
                SimTime::from_millis(i as u64 * 10),
                peer,
                "jcpenney.com",
                ProductId(i as u32 % 8),
            );
        }
        sheriff.run(1_000_000);
        assert_eq!(sheriff.completed().len(), 6);
    }

    #[test]
    fn non_whitelisted_domain_rejected() {
        let world = World::build(&WorldConfig::small(), 19);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(19), world, &specs(Country::ES, 2));
        sheriff.submit_check(SimTime::ZERO, 100, "not-in-world.example", ProductId(0));
        sheriff.run(100_000);
        assert!(sheriff.completed().is_empty());
    }

    #[test]
    fn v1_system_also_completes() {
        let world = World::build(&WorldConfig::small(), 23);
        let mut cfg = SheriffConfig::v1(23);
        // Shrink timings for the test.
        cfg.ipc_fetch_median_ms = 200;
        cfg.ipc_overload_ms = 2_000;
        cfg.fetch_kill_ms = 1_000;
        cfg.ppc_fetch_median_ms = 30;
        cfg.job_deadline_ms = 1_500;
        let mut sheriff = PriceSheriff::new(cfg, world, &specs(Country::ES, 3));
        sheriff.submit_check(SimTime::ZERO, 100, "amazon.com", ProductId(1));
        sheriff.run(100_000);
        assert_eq!(sheriff.completed().len(), 1);
    }

    #[test]
    fn results_arrive_within_deadline_budget() {
        let world = World::build(&WorldConfig::small(), 29);
        let mut sheriff = PriceSheriff::new(SheriffConfig::fast(29), world, &specs(Country::ES, 3));
        sheriff.submit_check(SimTime::ZERO, 100, "chegg.com", ProductId(2));
        sheriff.run(100_000);
        let done = sheriff.completed();
        assert_eq!(done.len(), 1);
        let elapsed = done[0].completed.since(done[0].submitted);
        // deadline + processing + db + slack
        assert!(elapsed.as_millis() < 10_000, "elapsed={elapsed:?}");
    }

    #[test]
    fn monitoring_panel_lists_servers() {
        let world = World::build(&WorldConfig::small(), 31);
        let sheriff = PriceSheriff::new(SheriffConfig::fast(31), world, &specs(Country::ES, 1));
        let panel = sheriff.monitoring_panel();
        assert!(panel.contains("ms-0"));
        assert!(panel.contains("ms-1"));
    }
}
