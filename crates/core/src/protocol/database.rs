//! Database-server role (v2): store assembled checks under a modeled
//! concurrency-sensitive cost, then ack.

use std::collections::BTreeMap;

use crate::coordinator::JobId;
use crate::db::{Database, DbCostModel};
use crate::protocol::{Address, Output, ProtoMsg, TimerKind};

/// Observable outcomes for the driver's telemetry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DbEvent {
    /// A store query was accepted and scheduled.
    QueryScheduled {
        /// Modeled cost of this store, ms.
        cost_ms: u64,
        /// Queries in flight (including this one).
        active: u32,
    },
    /// A store query finished.
    QueryDone {
        /// Queries still in flight.
        active: u32,
    },
}

/// The dedicated Database server as a sans-IO state machine.
pub struct DbProto {
    /// The in-memory store itself.
    pub database: Database,
    cost: DbCostModel,
    active: u32,
    pending: BTreeMap<JobId, Address>,
}

impl DbProto {
    /// A fresh empty database under `cost`.
    pub fn new(cost: DbCostModel) -> Self {
        DbProto {
            database: Database::new(),
            cost,
            active: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Feeds one delivered message.
    pub fn on_message(
        &mut self,
        from: Address,
        msg: ProtoMsg,
        out: &mut Vec<Output>,
        events: &mut Vec<DbEvent>,
    ) {
        if let ProtoMsg::StoreCheck { job, check } = msg {
            self.active += 1;
            let cost = self
                .cost
                .store_cost_ms(check.observations.len(), self.active);
            self.database.store(*check);
            self.pending.insert(job, from);
            events.push(DbEvent::QueryScheduled {
                cost_ms: cost,
                active: self.active,
            });
            out.push(Output::Timer {
                delay_ms: cost,
                kind: TimerKind::DbDone(job),
            });
        }
    }

    /// Feeds one fired timer.
    pub fn on_timer(&mut self, kind: TimerKind, out: &mut Vec<Output>, events: &mut Vec<DbEvent>) {
        let TimerKind::DbDone(job) = kind else {
            return;
        };
        self.active = self.active.saturating_sub(1);
        events.push(DbEvent::QueryDone {
            active: self.active,
        });
        if let Some(requester) = self.pending.remove(&job) {
            out.push(Output::send(requester, ProtoMsg::DbAck { job }));
        }
    }
}
