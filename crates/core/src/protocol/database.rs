//! Database-server role (v2): store assembled checks *durably* under a
//! modeled concurrency-sensitive cost, then ack.
//!
//! Write discipline (see `durability` module docs and DESIGN.md):
//! **WAL-then-store, flush-before-ack.** A `StoreCheck` appends one
//! [`crate::durability::WalRecord`] (volatile until a barrier) and
//! enters the in-memory table; the `DbDone` timer that models the
//! query's I/O cost runs a durability barrier *before* the `DbAck`
//! leaves, so an acknowledged store is always on disk. Every
//! `snapshot_every` records the table is folded into a snapshot and the
//! log truncated, with the compaction I/O charged to the triggering
//! query.
//!
//! Crash recovery ([`DbProto::on_restart`]): volatile state — the
//! memory table, in-flight queries, the reliable channel's windows — is
//! gone; the un-barriered WAL tail is discarded deterministically; the
//! snapshot plus the surviving log tail are replayed. The rebuilt
//! stored-job set makes at-least-once redelivery idempotent: a
//! retransmitted `StoreCheck` for a job that survived is re-acked
//! without a second store (the per-job analogue of the measurement
//! tier's per-`(kind, id)` vantage dedup), while one whose record was
//! torn off with the tail is simply stored again.

use std::collections::{BTreeMap, BTreeSet};

use crate::coordinator::JobId;
use crate::db::{Database, DbCostModel};
use crate::durability::{self, MemStorage, Storage, WalRecord};
use crate::protocol::digest::Digest;
use crate::protocol::{Address, Output, ProtoMsg, TimerKind};

/// Snapshot cadence when none is configured: fold the log every this
/// many records.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 64;

/// Observable outcomes for the driver's telemetry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DbEvent {
    /// A store query was accepted and scheduled.
    QueryScheduled {
        /// Modeled cost of this store, ms.
        cost_ms: u64,
        /// Queries in flight (including this one).
        active: u32,
    },
    /// A store query finished.
    QueryDone {
        /// Queries still in flight.
        active: u32,
    },
    /// One record was appended to the write-ahead log.
    WalAppended {
        /// Encoded record size.
        bytes: u64,
    },
    /// The table was folded into a snapshot and the log truncated.
    SnapshotInstalled {
        /// Records in the snapshot image.
        records: u64,
    },
    /// A redelivered `StoreCheck` for an already-durable job was
    /// re-acked without a second store.
    DuplicateStoreAbsorbed {
        /// The redelivered job.
        job: JobId,
    },
    /// A deferred `DbDone` timer fired for a job no longer pending —
    /// the record was torn off with the unflushed tail by a crash, so
    /// the requester is never acked (the PR 7 "accepted loss window",
    /// now observable as `db.ack_loss_window`).
    AckLossWindow {
        /// The torn job whose ack never leaves.
        job: JobId,
    },
    /// Crash recovery replayed the durable prefix.
    Recovered {
        /// Records reconstructed (snapshot + log tail).
        records: u64,
        /// Un-barriered WAL bytes the crash destroyed.
        lost_wal_bytes: u64,
    },
}

/// The dedicated Database server as a sans-IO state machine.
pub struct DbProto {
    /// The in-memory store itself.
    pub database: Database,
    cost: DbCostModel,
    active: u32,
    pending: BTreeMap<JobId, Address>,
    storage: Box<dyn Storage>,
    snapshot_every: usize,
    /// WAL records appended since the last snapshot install.
    since_snapshot: usize,
    /// Jobs with a record in the WAL or snapshot — the at-least-once
    /// dedup set, rebuilt on recovery.
    stored_jobs: BTreeSet<JobId>,
    /// `(vt_ms, job)` per stored check, aligned with the table's store
    /// order, so a snapshot re-encodes the original records.
    meta: Vec<(u64, JobId)>,
}

impl DbProto {
    /// A fresh database under `cost`, backed by in-memory storage (the
    /// DES default) at the default snapshot cadence.
    pub fn new(cost: DbCostModel) -> Self {
        Self::with_storage(cost, Box::new(MemStorage::new()), DEFAULT_SNAPSHOT_EVERY)
    }

    /// A database over an explicit [`Storage`] backend. Any durable
    /// contents are recovered immediately, so constructing over a
    /// previous incarnation's files resumes its store.
    pub fn with_storage(
        cost: DbCostModel,
        storage: Box<dyn Storage>,
        snapshot_every: usize,
    ) -> Self {
        let mut proto = DbProto {
            database: Database::new(),
            cost,
            active: 0,
            pending: BTreeMap::new(),
            storage,
            snapshot_every: snapshot_every.max(1),
            since_snapshot: 0,
            stored_jobs: BTreeSet::new(),
            meta: Vec::new(),
        };
        proto.replay();
        proto
    }

    /// Rebuilds volatile state from the durable prefix. Returns the
    /// number of records replayed.
    fn replay(&mut self) -> u64 {
        let recovered = durability::recover(self.storage.as_ref());
        self.since_snapshot = recovered.wal_records;
        for rec in recovered.records {
            let job = JobId(rec.job);
            if self.stored_jobs.insert(job) {
                self.meta.push((rec.vt_ms, job));
                self.database.store(rec.check);
            }
        }
        self.database.len() as u64
    }

    /// Feeds one delivered message. `now_ms` stamps the WAL record
    /// (virtual time under DES, wall time since the epoch over TCP).
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        out: &mut Vec<Output>,
        events: &mut Vec<DbEvent>,
    ) {
        let ProtoMsg::StoreCheck { job, check } = msg else {
            return;
        };
        if self.stored_jobs.contains(&job) {
            // At-least-once redelivery of a durable store: the ack was
            // lost (or the sender crashed past our first one) — re-ack,
            // never store twice.
            events.push(DbEvent::DuplicateStoreAbsorbed { job });
            out.push(Output::send(from, ProtoMsg::DbAck { job }));
            return;
        }
        self.active += 1;
        let rows = check.observations.len();
        let record = durability::encode_record(now_ms, job.0, &check);
        self.storage.append_wal(&record);
        self.since_snapshot += 1;
        // The whole durable write is charged to this query: table write
        // under pool queueing, sequential log append, the pre-ack
        // barrier, and — when this record trips the cadence — folding
        // the table into a snapshot.
        let mut cost = self.cost.store_cost_ms(rows, self.active)
            + self.cost.wal_cost_ms(rows)
            + self.cost.barrier_cost_ms();
        if self.since_snapshot >= self.snapshot_every {
            cost += self.cost.compaction_cost_ms(self.database.len() + 1);
        }
        self.meta.push((now_ms, job));
        self.database.store(*check);
        self.stored_jobs.insert(job);
        self.pending.insert(job, from);
        events.push(DbEvent::WalAppended {
            bytes: record.len() as u64,
        });
        events.push(DbEvent::QueryScheduled {
            cost_ms: cost,
            active: self.active,
        });
        out.push(Output::Timer {
            delay_ms: cost,
            kind: TimerKind::DbDone(job),
        });
    }

    /// Feeds one fired timer.
    pub fn on_timer(&mut self, kind: TimerKind, out: &mut Vec<Output>, events: &mut Vec<DbEvent>) {
        let TimerKind::DbDone(job) = kind else {
            return;
        };
        self.active = self.active.saturating_sub(1);
        events.push(DbEvent::QueryDone {
            active: self.active,
        });
        let Some(requester) = self.pending.remove(&job) else {
            // A timer deferred across a crash for a store whose record
            // was torn off with the unflushed tail: nothing to ack —
            // the sender's retransmit will store it again.
            events.push(DbEvent::AckLossWindow { job });
            return;
        };
        // Flush-before-ack: group-commit everything appended so far,
        // then (at the cadence) fold the table into a snapshot — both
        // already charged into this query's cost at schedule time.
        self.storage.barrier();
        if self.since_snapshot >= self.snapshot_every {
            let records: Vec<WalRecord> = self
                .meta
                .iter()
                .zip(self.database.checks())
                .map(|(&(vt_ms, job), check)| WalRecord {
                    vt_ms,
                    job: job.0,
                    check: check.clone(),
                })
                .collect();
            self.storage
                .install_snapshot(&durability::encode_snapshot(&records));
            self.since_snapshot = 0;
            events.push(DbEvent::SnapshotInstalled {
                records: records.len() as u64,
            });
        }
        out.push(Output::send(requester, ProtoMsg::DbAck { job }));
    }

    /// Crash recovery: the process restarted. Volatile state (memory
    /// table, in-flight queries) is gone, the un-barriered WAL tail is
    /// discarded deterministically, and the durable prefix is replayed.
    pub fn on_restart(&mut self, events: &mut Vec<DbEvent>) {
        let lost = self.storage.lose_unflushed();
        self.active = 0;
        self.pending.clear();
        self.database = Database::new();
        self.stored_jobs.clear();
        self.meta.clear();
        self.since_snapshot = 0;
        let records = self.replay();
        events.push(DbEvent::Recovered {
            records,
            lost_wal_bytes: lost as u64,
        });
    }

    /// The durable (barrier-flushed) WAL bytes — what a crash right now
    /// would preserve. Deterministic per seed under DES.
    pub fn wal_bytes(&self) -> Vec<u8> {
        self.storage.read_wal()
    }

    /// The durable snapshot image (empty before the first compaction).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.storage.read_snapshot()
    }

    /// Jobs with a durable (or at least appended) record.
    pub fn stored_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.stored_jobs.iter().copied()
    }

    /// Jobs accepted but not yet acked — each pins a [`TimerKind::DbDone`]
    /// obligation. The model checker's quiescence invariant requires
    /// this to drain once no events remain.
    pub fn pending_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.pending.keys().copied()
    }

    /// Folds the machine's logical state into `d` for model-checker
    /// state canonicalization. The WAL-record timestamps (`meta`, and
    /// the stamps embedded in the durable byte images) carry absolute
    /// time, so durable contents are folded as the *job-id set* plus
    /// table length — behaviorally complete for the checker because
    /// dedup and recovery consult exactly `stored_jobs` and the record
    /// count, never the stamps.
    pub fn state_digest(&self, d: &mut Digest) {
        d.write_u64(u64::from(self.active));
        d.write_u64(self.pending.len() as u64);
        for (job, requester) in &self.pending {
            d.write_u64(job.0);
            d.write_str(&format!("{requester:?}"));
        }
        d.write_u64(self.stored_jobs.len() as u64);
        for job in &self.stored_jobs {
            d.write_u64(job.0);
        }
        d.write_u64(self.since_snapshot as u64);
        d.write_u64(self.database.len() as u64);
        d.write_bool(self.snapshot_bytes().is_empty());
        d.write_u64(self.wal_bytes().len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{PriceCheck, PriceObservation, VantageKind};
    use sheriff_geo::{Country, IpV4};

    fn check(job: u64, n: usize) -> PriceCheck {
        PriceCheck {
            job_id: job,
            domain: "amazon.com".into(),
            url: format!("/p/{job}"),
            day: 0,
            observations: (0..n as u64)
                .map(|i| PriceObservation {
                    vantage: VantageKind::Ipc,
                    vantage_id: i,
                    country: Country::ES,
                    city: None,
                    ip: IpV4(i as u32),
                    raw_text: "EUR 1.00".into(),
                    currency: "EUR".into(),
                    amount: 1.0,
                    amount_eur: 1.0,
                    low_confidence: false,
                    failed: false,
                })
                .collect(),
        }
    }

    fn server() -> Address {
        Address::Server { index: 0 }
    }

    fn store(proto: &mut DbProto, now: u64, job: u64, rows: usize) -> Vec<Output> {
        let (mut out, mut events) = (Vec::new(), Vec::new());
        proto.on_message(
            now,
            server(),
            ProtoMsg::StoreCheck {
                job: JobId(job),
                check: Box::new(check(job, rows)),
            },
            &mut out,
            &mut events,
        );
        out
    }

    fn finish(proto: &mut DbProto, job: u64) -> (Vec<Output>, Vec<DbEvent>) {
        let (mut out, mut events) = (Vec::new(), Vec::new());
        proto.on_timer(TimerKind::DbDone(JobId(job)), &mut out, &mut events);
        (out, events)
    }

    #[test]
    fn ack_only_after_barrier_makes_the_record_durable() {
        let mut proto = DbProto::new(DbCostModel::dedicated());
        store(&mut proto, 100, 1, 3);
        // Appended but not yet barriered: a crash now loses it.
        assert!(proto.wal_bytes().is_empty(), "unflushed tail is volatile");
        let (out, _) = finish(&mut proto, 1);
        assert!(out
            .iter()
            .any(|o| matches!(o, Output::Send { msg: ProtoMsg::DbAck { job }, .. } if job.0 == 1)));
        assert!(!proto.wal_bytes().is_empty(), "ack implies durable");
    }

    #[test]
    fn duplicate_store_is_reacked_not_restored() {
        let mut proto = DbProto::new(DbCostModel::dedicated());
        store(&mut proto, 100, 1, 3);
        finish(&mut proto, 1);
        let out = store(&mut proto, 200, 1, 3);
        assert_eq!(proto.database.len(), 1, "no double store");
        assert!(
            out.iter().any(
                |o| matches!(o, Output::Send { msg: ProtoMsg::DbAck { job }, .. } if job.0 == 1)
            ),
            "redelivery is re-acked immediately"
        );
        assert!(
            !out.iter().any(|o| matches!(o, Output::Timer { .. })),
            "no query is scheduled for a duplicate"
        );
    }

    #[test]
    fn restart_recovers_exactly_the_durable_prefix() {
        let mut proto = DbProto::new(DbCostModel::dedicated());
        store(&mut proto, 100, 1, 3);
        finish(&mut proto, 1); // durable
        store(&mut proto, 200, 2, 4); // appended, never barriered
        let mut events = Vec::new();
        proto.on_restart(&mut events);
        assert_eq!(proto.database.len(), 1, "torn tail is discarded");
        assert_eq!(proto.database.checks()[0].job_id, 1);
        assert!(events.iter().any(|e| matches!(
            e,
            DbEvent::Recovered {
                records: 1,
                lost_wal_bytes
            } if *lost_wal_bytes > 0
        )));
        // The lost job can be redelivered and stored normally.
        store(&mut proto, 300, 2, 4);
        finish(&mut proto, 2);
        assert_eq!(proto.database.len(), 2);
    }

    #[test]
    fn snapshot_cadence_folds_the_log() {
        let mut proto =
            DbProto::with_storage(DbCostModel::dedicated(), Box::new(MemStorage::new()), 2);
        for job in 1..=4 {
            store(&mut proto, job * 100, job, 2);
            finish(&mut proto, job);
        }
        assert!(!proto.snapshot_bytes().is_empty(), "cadence installed one");
        assert!(
            proto.wal_bytes().is_empty(),
            "log truncated at the last fold"
        );
        let mut events = Vec::new();
        proto.on_restart(&mut events);
        assert_eq!(proto.database.len(), 4, "snapshot + tail replay");
    }

    #[test]
    fn deferred_done_timer_for_a_torn_record_acks_nobody() {
        let mut proto = DbProto::new(DbCostModel::dedicated());
        store(&mut proto, 100, 1, 3);
        let mut events = Vec::new();
        proto.on_restart(&mut events); // crash before the DbDone fired
        let (out, events) = finish(&mut proto, 1); // the deferred timer arrives late
        assert!(out.is_empty(), "no ack for a store the crash destroyed");
        assert!(proto.database.is_empty());
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DbEvent::AckLossWindow { job } if job.0 == 1)),
            "the loss window is observable, not silent"
        );
    }
}
