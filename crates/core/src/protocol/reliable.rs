//! At-least-once delivery for control messages, sans-IO.
//!
//! The §3.2 protocol machines assume their transport never loses a
//! message; the paper's deployment learned otherwise (flaky volunteer
//! browsers, §10.3). [`Channel`] restores that assumption *under* the
//! machines: each node owns one, the driver routes every outbound
//! [`Output::Send`] through [`Channel::harden`] (which wraps eligible
//! messages in a [`ProtoMsg::Reliable`] envelope and arms a retransmit
//! timer) and every inbound message through [`Channel::accept`] (which
//! acknowledges, deduplicates, and unwraps). Because the channel is as
//! sans-IO as the machines it protects, the DES and TCP backends share
//! it verbatim.
//!
//! Invariants:
//!
//! * **At-least-once**: a wrapped message is retransmitted on an
//!   exponential backoff schedule until acknowledged or the attempt
//!   budget is spent (`protocol.retransmit_gave_up` counts the latter).
//! * **Idempotent receive**: retransmits and transport-duplicated
//!   copies carry the same `(sender, seq)` pair; the per-sender dedup
//!   window absorbs both (`protocol.dedup_hits`).
//! * **Deterministic**: backoff jitter is hashed from `(seq, attempt)`,
//!   never drawn from an RNG, so both backends arm identical timers.
//!
//! Exempt from wrapping (see [`needs_reliability`]): page fetches
//! (`FetchOrder`/`FetchReply`), whose loss is governed by the job
//! deadline; periodic `Heartbeat`s, which are their own retry loop;
//! and the control plane (`StartCheck`, `RemoveServer`, `Shutdown`),
//! which is injected from outside the protocol.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use sheriff_telemetry::{Counter, Registry};

use crate::protocol::digest::Digest;
use crate::protocol::{Address, Output, ProtoMsg, TimerKind};

/// Tuning knobs for a [`Channel`].
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Delay before the first retransmission (ms).
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff interval (ms).
    pub max_backoff_ms: u64,
    /// Retransmission attempts before giving up.
    pub max_attempts: u32,
    /// How far behind the highest seen sequence number a late arrival
    /// may trail before it is assumed to be a duplicate.
    pub dedup_window: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            base_backoff_ms: 400,
            max_backoff_ms: 10_000,
            max_attempts: 16,
            dedup_window: 1024,
        }
    }
}

struct PendingSend {
    to: Address,
    /// The full `Reliable` envelope, ready to re-send verbatim.
    envelope: ProtoMsg,
    attempts: u32,
}

#[derive(Default)]
struct DedupWindow {
    max_seen: u64,
    seen: BTreeSet<u64>,
}

struct ChannelTelemetry {
    retransmits: Arc<Counter>,
    dedup_hits: Arc<Counter>,
    acks: Arc<Counter>,
    gave_up: Arc<Counter>,
}

/// One node's end of the at-least-once layer. See the module docs.
pub struct Channel {
    cfg: ReliableConfig,
    next_seq: u64,
    unacked: BTreeMap<u64, PendingSend>,
    windows: BTreeMap<Address, DedupWindow>,
    telemetry: Option<ChannelTelemetry>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether the channel wraps this message in a reliable envelope.
pub fn needs_reliability(msg: &ProtoMsg) -> bool {
    !matches!(
        msg,
        ProtoMsg::StartCheck { .. }
            | ProtoMsg::FetchOrder { .. }
            | ProtoMsg::FetchReply { .. }
            | ProtoMsg::Heartbeat { .. }
            | ProtoMsg::RemoveServer { .. }
            | ProtoMsg::Reliable { .. }
            | ProtoMsg::Ack { .. }
            | ProtoMsg::Shutdown
    )
}

impl Channel {
    /// A channel with the given tuning.
    pub fn new(cfg: ReliableConfig) -> Channel {
        Channel {
            cfg,
            next_seq: 0,
            unacked: BTreeMap::new(),
            windows: BTreeMap::new(),
            telemetry: None,
        }
    }

    /// Registers the channel's counters (`protocol.*`) in `registry`.
    /// All channels of one deployment share the same counter names, so
    /// the registry aggregates across nodes.
    pub fn with_telemetry(mut self, registry: &Arc<Registry>) -> Channel {
        self.telemetry = Some(ChannelTelemetry {
            retransmits: registry.counter("protocol.retransmits"),
            dedup_hits: registry.counter("protocol.dedup_hits"),
            acks: registry.counter("protocol.acks"),
            gave_up: registry.counter("protocol.retransmit_gave_up"),
        });
        self
    }

    /// Sequence numbers still awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// The unacknowledged sequence numbers themselves, in order. Each
    /// one is a live retransmit obligation: the model checker's
    /// timer-linearity invariant requires an armed
    /// [`TimerKind::Retransmit`] covering every entry.
    pub fn unacked_seqs(&self) -> impl Iterator<Item = u64> + '_ {
        self.unacked.keys().copied()
    }

    /// Post-processes a machine's outputs: eligible sends are wrapped in
    /// a [`ProtoMsg::Reliable`] envelope and a retransmit timer is armed
    /// for each. Call after every `on_message`/`on_timer` invocation,
    /// before dispatching the outputs to the transport.
    pub fn harden(&mut self, out: &mut Vec<Output>) {
        let mut timers = Vec::new();
        for o in out.iter_mut() {
            let Output::Send { to, msg } = o else {
                continue;
            };
            if !needs_reliability(msg) {
                continue;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let inner = std::mem::replace(msg, ProtoMsg::Shutdown);
            *msg = ProtoMsg::Reliable {
                seq,
                inner: Box::new(inner),
            };
            self.unacked.insert(
                seq,
                PendingSend {
                    to: *to,
                    envelope: msg.clone(),
                    attempts: 0,
                },
            );
            timers.push(Output::Timer {
                delay_ms: self.backoff(seq, 0),
                kind: TimerKind::Retransmit(seq),
            });
        }
        out.extend(timers);
    }

    /// Pre-processes an inbound message. Returns the payload to hand to
    /// the machine, or `None` when the channel consumed it (an ack, or a
    /// duplicate). Acks and dedup acknowledgements are pushed onto `out`
    /// (and are themselves exempt from wrapping).
    pub fn accept(
        &mut self,
        from: Address,
        msg: ProtoMsg,
        out: &mut Vec<Output>,
    ) -> Option<ProtoMsg> {
        match msg {
            ProtoMsg::Ack { seq } => {
                if self.unacked.remove(&seq).is_some() {
                    if let Some(t) = &self.telemetry {
                        t.acks.inc();
                    }
                }
                None
            }
            ProtoMsg::Reliable { seq, inner } => {
                // Always re-ack: the sender may have missed the first one.
                out.push(Output::send(from, ProtoMsg::Ack { seq }));
                if self.record(from, seq) {
                    Some(*inner)
                } else {
                    if let Some(t) = &self.telemetry {
                        t.dedup_hits.inc();
                    }
                    None
                }
            }
            other => Some(other),
        }
    }

    /// A [`TimerKind::Retransmit`] fired: re-send if still unacked and
    /// within budget, re-arming the next backoff.
    ///
    /// When the budget is exhausted the channel stops trying and
    /// returns the abandoned `(destination, payload)` — unwrapped from
    /// its envelope — so the owning machine can release any bookkeeping
    /// pinned on that send. Silently dropping it here is how a peer's
    /// `own_pending`/`dopp_pending` entries used to leak forever under
    /// sustained partitions.
    pub fn on_retransmit(
        &mut self,
        seq: u64,
        out: &mut Vec<Output>,
    ) -> Option<(Address, ProtoMsg)> {
        let Some(pending) = self.unacked.get_mut(&seq) else {
            return None; // acknowledged in the meantime — timer is moot
        };
        pending.attempts += 1;
        if pending.attempts > self.cfg.max_attempts {
            let abandoned = self.unacked.remove(&seq)?;
            if let Some(t) = &self.telemetry {
                t.gave_up.inc();
            }
            let inner = match abandoned.envelope {
                ProtoMsg::Reliable { inner, .. } => *inner,
                other => other,
            };
            return Some((abandoned.to, inner));
        }
        let attempts = pending.attempts;
        out.push(Output::Send {
            to: pending.to,
            msg: pending.envelope.clone(),
        });
        out.push(Output::Timer {
            delay_ms: self.backoff(seq, attempts),
            kind: TimerKind::Retransmit(seq),
        });
        if let Some(t) = &self.telemetry {
            t.retransmits.inc();
        }
        None
    }

    /// Models a process restart (§10.3 crash recovery): in-flight sends
    /// and receive-side dedup windows are volatile and cleared, so a
    /// peer's retransmit of a pre-crash message is accepted again (the
    /// machine's own idempotency layer absorbs true duplicates). The
    /// outbound sequence counter is *retained* — conceptually persisted
    /// alongside the node's durable state — so post-restart sends never
    /// collide with pre-crash sequence numbers still sitting in peers'
    /// dedup windows. Returns the number of in-flight sends abandoned.
    pub fn on_restart(&mut self) -> usize {
        let dropped = self.unacked.len();
        self.unacked.clear();
        self.windows.clear();
        dropped
    }

    /// Folds the channel's logical state into `d` for model-checker
    /// state canonicalization. Envelope payloads are folded via their
    /// `Debug` rendering, which is stable (derived, field order fixed)
    /// and total. No timing state lives here — backoff schedules are
    /// a pure function of `(seq, attempt)` — so the digest is already
    /// time-translation invariant.
    pub fn state_digest(&self, d: &mut Digest) {
        d.write_u64(self.next_seq);
        d.write_u64(self.unacked.len() as u64);
        for (seq, p) in &self.unacked {
            d.write_u64(*seq);
            p.to.fold_digest(d);
            d.write_u64(u64::from(p.attempts));
            p.envelope.fold_digest(d);
        }
        d.write_u64(self.windows.len() as u64);
        for (addr, w) in &self.windows {
            addr.fold_digest(d);
            d.write_u64(w.max_seen);
            d.write_u64(w.seen.len() as u64);
            for s in &w.seen {
                d.write_u64(*s);
            }
        }
    }

    /// True when `(from, seq)` is fresh; false for duplicates.
    fn record(&mut self, from: Address, seq: u64) -> bool {
        let w = self.windows.entry(from).or_default();
        let floor = w.max_seen.saturating_sub(self.cfg.dedup_window);
        if (seq < floor && w.max_seen > 0) || w.seen.contains(&seq) {
            return false;
        }
        w.seen.insert(seq);
        w.max_seen = w.max_seen.max(seq);
        let new_floor = w.max_seen.saturating_sub(self.cfg.dedup_window);
        while let Some(&lo) = w.seen.iter().next() {
            if lo >= new_floor {
                break;
            }
            w.seen.remove(&lo);
        }
        true
    }

    /// Exponential backoff with deterministic jitter: doubling from the
    /// base, capped, plus a hash-of-`(seq, attempt)` spread of up to a
    /// quarter interval so synchronized losses don't retransmit in
    /// lockstep. No RNG — both backends arm identical delays.
    fn backoff(&self, seq: u64, attempt: u32) -> u64 {
        let doubled = self
            .cfg
            .base_backoff_ms
            .saturating_mul(1 << attempt.min(16))
            .min(self.cfg.max_backoff_ms);
        let spread = (doubled / 4).max(1);
        let jitter = splitmix64(seq.wrapping_mul(0x9E37_79B9) ^ u64::from(attempt)) % spread;
        doubled.saturating_add(jitter).min(self.cfg.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::JobId;

    fn chan() -> Channel {
        Channel::new(ReliableConfig {
            base_backoff_ms: 100,
            max_backoff_ms: 1000,
            max_attempts: 3,
            dedup_window: 8,
        })
    }

    fn job_complete(job: u64) -> ProtoMsg {
        ProtoMsg::JobComplete { job: JobId(job) }
    }

    fn sent_to_coordinator(msg: ProtoMsg) -> Vec<Output> {
        vec![Output::send(Address::Coordinator, msg)]
    }

    #[test]
    fn harden_wraps_eligible_sends_and_arms_a_timer() {
        let mut c = chan();
        let mut out = sent_to_coordinator(job_complete(1));
        c.harden(&mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(
            &out[0],
            Output::Send {
                msg: ProtoMsg::Reliable { seq: 0, .. },
                ..
            }
        ));
        assert!(matches!(
            &out[1],
            Output::Timer {
                kind: TimerKind::Retransmit(0),
                ..
            }
        ));
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn exempt_messages_pass_through_unwrapped() {
        let mut c = chan();
        let mut out = vec![Output::send(
            Address::Server { index: 0 },
            ProtoMsg::Heartbeat { server_index: 0 },
        )];
        c.harden(&mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Output::Send {
                msg: ProtoMsg::Heartbeat { .. },
                ..
            }
        ));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn accept_acks_unwraps_and_dedups() {
        let mut sender = chan();
        let mut receiver = chan();
        let mut out = sent_to_coordinator(job_complete(7));
        sender.harden(&mut out);
        let Output::Send { msg, .. } = &out[0] else {
            panic!("send first");
        };

        // First copy: unwrapped and acked.
        let mut rx_out = Vec::new();
        let got = receiver.accept(Address::Server { index: 0 }, msg.clone(), &mut rx_out);
        assert_eq!(got, Some(job_complete(7)));
        assert!(matches!(
            &rx_out[0],
            Output::Send {
                msg: ProtoMsg::Ack { seq: 0 },
                ..
            }
        ));

        // Duplicate copy: swallowed, but re-acked.
        let mut rx_out2 = Vec::new();
        let dup = receiver.accept(Address::Server { index: 0 }, msg.clone(), &mut rx_out2);
        assert_eq!(dup, None);
        assert_eq!(rx_out2.len(), 1, "duplicate still acknowledged");

        // The ack clears the sender's pending entry.
        let Output::Send { msg: ack, .. } = rx_out.remove(0) else {
            panic!("ack is a send");
        };
        let mut tx_out = Vec::new();
        assert_eq!(sender.accept(Address::Coordinator, ack, &mut tx_out), None);
        assert_eq!(sender.in_flight(), 0);
    }

    #[test]
    fn same_seq_from_different_senders_is_not_a_duplicate() {
        let mut receiver = chan();
        let envelope = ProtoMsg::Reliable {
            seq: 0,
            inner: Box::new(job_complete(1)),
        };
        let mut out = Vec::new();
        assert!(receiver
            .accept(Address::Server { index: 0 }, envelope.clone(), &mut out)
            .is_some());
        assert!(receiver
            .accept(Address::Server { index: 1 }, envelope, &mut out)
            .is_some());
    }

    #[test]
    fn retransmits_back_off_then_give_up() {
        let mut c = chan();
        let mut out = sent_to_coordinator(job_complete(1));
        c.harden(&mut out);
        let mut delays = Vec::new();
        for _ in 0..3 {
            let mut rt = Vec::new();
            c.on_retransmit(0, &mut rt);
            assert_eq!(rt.len(), 2, "resend + next timer");
            let Output::Timer { delay_ms, .. } = rt[1] else {
                panic!("timer second");
            };
            delays.push(delay_ms);
        }
        assert!(delays[0] < delays[1] && delays[1] < delays[2], "{delays:?}");
        // Fourth firing exceeds max_attempts: drop the pending entry and
        // hand the abandoned payload (unwrapped) back to the machine.
        let mut rt = Vec::new();
        let abandoned = c.on_retransmit(0, &mut rt);
        assert!(rt.is_empty());
        assert_eq!(c.in_flight(), 0);
        let (to, inner) = abandoned.expect("give-up reports the dropped send");
        assert_eq!(to, Address::Coordinator);
        assert_eq!(inner, job_complete(1));
    }

    #[test]
    fn retransmit_after_ack_is_a_noop() {
        let mut c = chan();
        let mut out = sent_to_coordinator(job_complete(1));
        c.harden(&mut out);
        let mut tx = Vec::new();
        c.accept(Address::Coordinator, ProtoMsg::Ack { seq: 0 }, &mut tx);
        let mut rt = Vec::new();
        c.on_retransmit(0, &mut rt);
        assert!(rt.is_empty());
    }

    #[test]
    fn dedup_window_prunes_but_still_rejects_far_stragglers() {
        let mut c = chan();
        let from = Address::Peer { id: 1 };
        let mut out = Vec::new();
        for seq in 0..32 {
            let env = ProtoMsg::Reliable {
                seq,
                inner: Box::new(job_complete(seq)),
            };
            assert!(c.accept(from, env, &mut out).is_some());
        }
        // Window is 8: seq 2 fell off the window but is still stale.
        let stale = ProtoMsg::Reliable {
            seq: 2,
            inner: Box::new(job_complete(2)),
        };
        assert!(c.accept(from, stale, &mut out).is_none());
        // In-window duplicate too.
        let dup = ProtoMsg::Reliable {
            seq: 30,
            inner: Box::new(job_complete(30)),
        };
        assert!(c.accept(from, dup, &mut out).is_none());
    }

    #[test]
    fn restart_clears_windows_but_keeps_the_seq_counter() {
        let mut sender = chan();
        let mut receiver = chan();
        let mut out = sent_to_coordinator(job_complete(1));
        sender.harden(&mut out);
        let Output::Send { msg, .. } = out.remove(0) else {
            panic!("send first");
        };
        let from = Address::Server { index: 0 };
        let mut rx = Vec::new();
        assert!(receiver.accept(from, msg.clone(), &mut rx).is_some());
        assert!(receiver.accept(from, msg.clone(), &mut rx).is_none());

        // The receiver restarts: its dedup window is volatile, so the
        // sender's retransmit is delivered again (the machine dedups).
        receiver.on_restart();
        assert!(receiver.accept(from, msg, &mut rx).is_some());

        // The sender restarts: in-flight sends are abandoned but the
        // sequence counter survives, so the next send cannot collide
        // with seq 0 still in the receiver's window.
        let mut out2 = sent_to_coordinator(job_complete(2));
        sender.harden(&mut out2);
        assert_eq!(sender.on_restart(), 2);
        let mut out3 = sent_to_coordinator(job_complete(3));
        sender.harden(&mut out3);
        assert!(matches!(
            &out3[0],
            Output::Send {
                msg: ProtoMsg::Reliable { seq: 2, .. },
                ..
            }
        ));
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let c = chan();
        for attempt in 0..10 {
            let a = c.backoff(5, attempt);
            let b = c.backoff(5, attempt);
            assert_eq!(a, b);
            assert!(a <= 1000);
        }
        assert_ne!(c.backoff(5, 0), c.backoff(6, 0), "jitter spreads seqs");
    }
}
