//! IPC role: clean-browser fetches from a fixed vantage point.

use sheriff_market::World;

use crate::measurement::VantageMeta;
use crate::protocol::{day_of_ms, quarter_of_ms, Address, Output, ProtoMsg};
use crate::proxy::IpcEngine;
use crate::records::VantageKind;

/// An Infrastructure Proxy Client as a sans-IO state machine. The world
/// is passed per call: content generation is immediate, only fetch
/// *timing* belongs to the transport (the [`Output::SendFetched`] hint).
pub struct IpcProto {
    /// The fetch engine (identity, location, user agent).
    pub engine: IpcEngine,
    /// City label for observations, when known.
    pub city: Option<String>,
}

impl IpcProto {
    /// Feeds one delivered message.
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        world: &mut World,
        out: &mut Vec<Output>,
    ) {
        let ProtoMsg::FetchOrder {
            job,
            domain,
            product,
            seq,
        } = msg
        else {
            return;
        };
        let day = day_of_ms(now_ms);
        let quarter = quarter_of_ms(now_ms);
        let Some(fetch) = self
            .engine
            .fetch(world, &domain, product, day, quarter, now_ms, seq)
        else {
            return;
        };
        let meta = VantageMeta {
            kind: VantageKind::Ipc,
            id: self.engine.id,
            country: self.engine.country,
            city: self.city.clone(),
            ip: self.engine.ip,
        };
        out.push(Output::SendFetched {
            to: from,
            msg: ProtoMsg::FetchReply {
                job,
                meta,
                html: fetch.html,
            },
        });
    }
}
