//! Coordinator role: request admission, server choice, PPC lists,
//! doppelganger redemption, heartbeats, administration.

use rand::rngs::StdRng;
use rand::Rng;

use crate::coordinator::{Coordinator, PeerId};
use crate::doppelganger::DoppelgangerStore;
use crate::protocol::{Address, Output, ProtoMsg};

/// The Coordinator as a sans-IO state machine over the pure
/// [`Coordinator`] bookkeeping core.
pub struct CoordinatorProto {
    /// Whitelist, job issuance, server list, peer registry.
    pub coordinator: Coordinator,
    /// Trained doppelgangers served against bearer tokens.
    pub dopp_store: DoppelgangerStore,
    /// Domain universe doppelgangers are regenerated over.
    pub universe: Vec<String>,
    /// PPCs asked per request (§6.1: "approximately 3").
    pub ppc_per_request: usize,
}

impl CoordinatorProto {
    /// Wraps a configured [`Coordinator`].
    pub fn new(coordinator: Coordinator, ppc_per_request: usize) -> Self {
        CoordinatorProto {
            coordinator,
            dopp_store: DoppelgangerStore::new(),
            universe: Vec::new(),
            ppc_per_request,
        }
    }

    /// Feeds one delivered message; commands come back through `out`.
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        rng: &mut StdRng,
        out: &mut Vec<Output>,
    ) {
        match msg {
            ProtoMsg::CoordRequest {
                url,
                peer,
                local_tag,
            } => match self.coordinator.new_request(&url, now_ms) {
                Ok((job, server_idx)) => {
                    let server = Address::Server { index: server_idx };
                    // Step 1.1: PPC list for the initiator's location. The
                    // deployment got whichever same-location peers happened
                    // to be online — sample when there is actual choice.
                    // With at most `ppc_per_request` candidates the sorted
                    // registry order is used as-is, which keeps the list
                    // (and hence per-PPC request sequencing) identical
                    // across backends.
                    let ppcs: Vec<Address> = match self.coordinator.peer(peer) {
                        Some(entry) => {
                            let loc = entry.location.clone();
                            let mut candidates: Vec<PeerId> =
                                self.coordinator.peers_near(&loc, peer, usize::MAX);
                            let k = self.ppc_per_request.min(candidates.len());
                            if candidates.len() > k {
                                // Partial Fisher-Yates for the first k slots.
                                for i in 0..k {
                                    let j = rng.gen_range(i..candidates.len());
                                    candidates.swap(i, j);
                                }
                            }
                            candidates.truncate(k);
                            candidates
                                .into_iter()
                                .map(|p| Address::Peer { id: p.0 })
                                .collect()
                        }
                        None => Vec::new(),
                    };
                    out.push(Output::send(server, ProtoMsg::PpcList { job, ppcs }));
                    out.push(Output::send(
                        from,
                        ProtoMsg::CoordAssign {
                            job,
                            server,
                            local_tag,
                        },
                    ));
                }
                Err(e) => out.push(Output::send(
                    from,
                    ProtoMsg::CoordReject {
                        local_tag,
                        reason: format!("{e:?}"),
                    },
                )),
            },
            ProtoMsg::JobComplete { job } => self.coordinator.job_complete(job),
            ProtoMsg::Heartbeat { server_index } => {
                self.coordinator.heartbeat(server_index, now_ms);
            }
            ProtoMsg::DoppStateRequest { job, token, domain } => {
                let state = self
                    .dopp_store
                    .serve(&token, &domain, &self.universe, rng)
                    .and_then(|(new_token, _mode)| {
                        if new_token != token {
                            out.push(Output::send(
                                Address::Aggregator,
                                ProtoMsg::TokenRotated {
                                    old: token,
                                    new: new_token,
                                },
                            ));
                        }
                        self.dopp_store.client_state(&new_token).cloned()
                    });
                out.push(Output::send(from, ProtoMsg::DoppStateReply { job, state }));
            }
            ProtoMsg::RemoveServer { index } => {
                self.coordinator.expire_heartbeats(now_ms);
                let removed = self.coordinator.remove_server(index);
                out.push(Output::send(
                    from,
                    ProtoMsg::ServerRemoved { index, removed },
                ));
            }
            _ => {}
        }
    }
}
