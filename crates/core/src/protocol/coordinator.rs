//! Coordinator role: request admission, server choice, PPC lists,
//! doppelganger redemption, heartbeats, administration, and §10.3
//! recovery (requeueing jobs stuck on servers whose heartbeat lapsed).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::coordinator::{Coordinator, JobId, PeerId};
use crate::doppelganger::DoppelgangerStore;
use crate::protocol::digest::Digest;
use crate::protocol::{
    defense_key, Address, DefenseAction, DefenseBook, DefenseParams, Output, ProtoMsg, TimerKind,
    IPC_KEY_BASE,
};

/// Where a job came from — kept so a requeued job can be re-admitted
/// through the normal path and the initiator re-notified.
struct JobOrigin {
    url: String,
    peer: PeerId,
    local_tag: u64,
    initiator: Address,
}

/// The Coordinator as a sans-IO state machine over the pure
/// [`Coordinator`] bookkeeping core.
pub struct CoordinatorProto {
    /// Whitelist, job issuance, server list, peer registry.
    pub coordinator: Coordinator,
    /// Trained doppelgangers served against bearer tokens.
    pub dopp_store: DoppelgangerStore,
    /// Domain universe doppelgangers are regenerated over.
    pub universe: Vec<String>,
    /// PPCs asked per request (§6.1: "approximately 3").
    pub ppc_per_request: usize,
    /// Period of the [`TimerKind::CoordSweep`] recovery timer.
    pub sweep_every_ms: u64,
    /// Keyed by `BTreeMap` so any future iteration (and the sweep's
    /// requeue order) is job-id order by construction, not hash order.
    origins: BTreeMap<JobId, JobOrigin>,
    /// Deployment-wide misbehavior bookkeeping: local violations plus
    /// Measurement-server escalations ([`ProtoMsg::MisbehaviorReport`]).
    /// Public so drivers can swap in a telemetry-backed book.
    pub defense: DefenseBook,
}

impl CoordinatorProto {
    /// Wraps a configured [`Coordinator`].
    pub fn new(coordinator: Coordinator, ppc_per_request: usize) -> Self {
        CoordinatorProto {
            coordinator,
            dopp_store: DoppelgangerStore::new(),
            universe: Vec::new(),
            ppc_per_request,
            sweep_every_ms: 5_000,
            origins: BTreeMap::new(),
            defense: DefenseBook::new(DefenseParams::default()),
        }
    }

    /// A defense escalation crossed into quarantine: arm the quarantine
    /// timer, and — for real peers (never synthetic IPC keys) — notify
    /// the add-on so the user sees why requests are refused.
    fn escalate(&mut self, action: DefenseAction, out: &mut Vec<Output>) {
        if let DefenseAction::Quarantine { peer } = action {
            out.push(Output::Timer {
                delay_ms: self.defense.params().quarantine_ms,
                kind: TimerKind::Quarantine(peer),
            });
            if peer < IPC_KEY_BASE {
                out.push(Output::send(
                    Address::Peer { id: peer },
                    ProtoMsg::QuarantineNotice { peer },
                ));
            }
        }
    }

    /// Admits one request (fresh or requeued): mints a job, charges the
    /// least-loaded online server, and emits the PPC list + assignment.
    fn admit(&mut self, now_ms: u64, origin: JobOrigin, rng: &mut StdRng, out: &mut Vec<Output>) {
        let JobOrigin {
            url,
            peer,
            local_tag,
            initiator,
        } = origin;
        match self.coordinator.new_request(&url, now_ms) {
            Ok((job, server_idx)) => {
                let server = Address::Server { index: server_idx };
                // Step 1.1: PPC list for the initiator's location. The
                // deployment got whichever same-location peers happened
                // to be online — sample when there is actual choice.
                // With at most `ppc_per_request` candidates the sorted
                // registry order is used as-is, which keeps the list
                // (and hence per-PPC request sequencing) identical
                // across backends.
                let ppcs: Vec<Address> = match self.coordinator.peer(peer) {
                    Some(entry) => {
                        let loc = entry.location.clone();
                        let mut candidates: Vec<PeerId> =
                            self.coordinator.peers_near(&loc, peer, usize::MAX);
                        // Quarantined peers never serve as vantages.
                        candidates.retain(|p| !self.defense.is_quarantined(p.0));
                        let k = self.ppc_per_request.min(candidates.len());
                        if candidates.len() > k {
                            // Partial Fisher-Yates for the first k slots.
                            for i in 0..k {
                                let j = rng.gen_range(i..candidates.len());
                                candidates.swap(i, j);
                            }
                        }
                        candidates.truncate(k);
                        candidates
                            .into_iter()
                            .map(|p| Address::Peer { id: p.0 })
                            .collect()
                    }
                    None => Vec::new(),
                };
                self.origins.insert(
                    job,
                    JobOrigin {
                        url,
                        peer,
                        local_tag,
                        initiator,
                    },
                );
                out.push(Output::send(server, ProtoMsg::PpcList { job, ppcs }));
                out.push(Output::send(
                    initiator,
                    ProtoMsg::CoordAssign {
                        job,
                        server,
                        local_tag,
                    },
                ));
            }
            Err(e) => out.push(Output::send(
                initiator,
                ProtoMsg::CoordReject {
                    local_tag,
                    reason: format!("{e:?}"),
                },
            )),
        }
    }

    /// A timer armed by this machine fired. Only [`TimerKind::CoordSweep`]
    /// is coordinator-owned: expire lapsed heartbeats, take back jobs
    /// charged to offline servers, and re-admit each through the normal
    /// assignment path (new job id, same initiator tag — the peer's own
    /// tag bookkeeping makes whichever assignment finishes first win).
    pub fn on_timer(
        &mut self,
        now_ms: u64,
        kind: TimerKind,
        rng: &mut StdRng,
        out: &mut Vec<Output>,
    ) {
        match kind {
            TimerKind::Quarantine(peer) => {
                if self.defense.on_quarantine_elapsed(peer) {
                    out.push(Output::Timer {
                        delay_ms: self.defense.params().parole_ms,
                        kind: TimerKind::Parole(peer),
                    });
                }
                return;
            }
            TimerKind::Parole(peer) => {
                self.defense.on_parole_elapsed(peer);
                return;
            }
            TimerKind::CoordSweep => {}
            _ => return,
        }
        self.coordinator.expire_heartbeats(now_ms);
        for job in self.coordinator.take_orphaned_jobs(now_ms) {
            let Some(origin) = self.origins.remove(&job) else {
                continue;
            };
            self.admit(now_ms, origin, rng, out);
        }
        out.push(Output::Timer {
            delay_ms: self.sweep_every_ms,
            kind: TimerKind::CoordSweep,
        });
    }

    /// The driver's reliable channel gave up retransmitting one of this
    /// machine's sends. A `PpcList` or `CoordAssign` that can never be
    /// delivered means the admitted job can never be worked: release
    /// the origin and the server's pending-job charge so neither leaks
    /// (the initiator's own deadline abandons its side independently).
    /// Without this hook a partitioned Measurement server pinned its
    /// origin entries forever — the coordinator-side twin of the peer
    /// `own_pending` leak fixed in PR 5.
    pub fn on_send_abandoned(&mut self, msg: &ProtoMsg) {
        let job = match msg {
            ProtoMsg::PpcList { job, .. } | ProtoMsg::CoordAssign { job, .. } => *job,
            _ => return,
        };
        self.coordinator.job_complete(job);
        self.origins.remove(&job);
    }

    /// Live (admitted, unfinished) job origins — the model checker's
    /// quiescence invariant requires this table to drain once no events
    /// remain.
    pub fn open_origins(&self) -> usize {
        self.origins.len()
    }

    /// Folds the machine's logical state into `d` for model-checker
    /// state canonicalization (doppelganger training state is excluded
    /// — model worlds never train doppelgangers).
    pub fn state_digest(&self, d: &mut Digest) {
        d.write_u64(self.origins.len() as u64);
        for (job, origin) in &self.origins {
            d.write_u64(job.0);
            d.write_str(&origin.url);
            d.write_u64(origin.peer.0);
            d.write_u64(origin.local_tag);
            d.write_str(&format!("{:?}", origin.initiator));
        }
        self.coordinator.state_digest(d);
        self.defense.state_digest(d);
    }

    /// Feeds one delivered message; commands come back through `out`.
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        rng: &mut StdRng,
        out: &mut Vec<Output>,
    ) {
        match msg {
            ProtoMsg::CoordRequest {
                url,
                peer,
                local_tag,
            } => {
                // Envelope: a peer may only request as itself.
                if let Address::Peer { id } = from {
                    if peer.0 != id {
                        let action = self.defense.note_validation_reject(id);
                        self.escalate(action, out);
                        out.push(Output::send(
                            from,
                            ProtoMsg::CoordReject {
                                local_tag,
                                reason: "request envelope mismatch".into(),
                            },
                        ));
                        return;
                    }
                }
                if let Some(key) = defense_key(from) {
                    if self.defense.is_quarantined(key) {
                        self.defense.note_quarantine_drop();
                        out.push(Output::send(
                            from,
                            ProtoMsg::CoordReject {
                                local_tag,
                                reason: "quarantined".into(),
                            },
                        ));
                        return;
                    }
                    // Outstanding-request quota, derived from the live
                    // origin table so it stays consistent through
                    // requeues and completions with zero extra state.
                    let outstanding = self.origins.values().filter(|o| o.peer == peer).count();
                    if outstanding >= self.defense.params().max_outstanding_requests {
                        let action = self.defense.note_quota_trip(key);
                        self.escalate(action, out);
                        out.push(Output::send(
                            from,
                            ProtoMsg::CoordReject {
                                local_tag,
                                reason: "request quota exceeded".into(),
                            },
                        ));
                        return;
                    }
                }
                self.admit(
                    now_ms,
                    JobOrigin {
                        url,
                        peer,
                        local_tag,
                        initiator: from,
                    },
                    rng,
                    out,
                );
            }
            ProtoMsg::JobComplete { job } => {
                self.coordinator.job_complete(job);
                self.origins.remove(&job);
            }
            ProtoMsg::Heartbeat { server_index } => {
                self.coordinator.heartbeat(server_index, now_ms);
            }
            ProtoMsg::DoppStateRequest { job, token, domain } => {
                if let Some(key) = defense_key(from) {
                    if self.defense.is_quarantined(key) {
                        self.defense.note_quarantine_drop();
                        out.push(Output::send(
                            from,
                            ProtoMsg::DoppStateReply { job, state: None },
                        ));
                        return;
                    }
                    // A token the store never issued is a forgery or a
                    // corrupted replay; an honest post-rotation race
                    // presents a *retired* token and must not score.
                    if !self.dopp_store.is_known(&token) && !self.dopp_store.is_retired(&token) {
                        let action = self.defense.note_dopp_mismatch(key);
                        self.escalate(action, out);
                        out.push(Output::send(
                            from,
                            ProtoMsg::DoppStateReply { job, state: None },
                        ));
                        return;
                    }
                }
                let state = self
                    .dopp_store
                    .serve(&token, &domain, &self.universe, rng)
                    .and_then(|(new_token, _mode)| {
                        if new_token != token {
                            out.push(Output::send(
                                Address::Aggregator,
                                ProtoMsg::TokenRotated {
                                    old: token,
                                    new: new_token,
                                },
                            ));
                        }
                        self.dopp_store.client_state(&new_token).cloned()
                    });
                out.push(Output::send(from, ProtoMsg::DoppStateReply { job, state }));
            }
            ProtoMsg::MisbehaviorReport { peer, score } => {
                // Only Measurement servers may escalate scores; the
                // report rides the reliable channel so lossy links
                // cannot lose it.
                if matches!(from, Address::Server { .. }) {
                    let action = self.defense.note_remote_report(peer, score);
                    self.escalate(action, out);
                }
            }
            ProtoMsg::RemoveServer { index } => {
                self.coordinator.expire_heartbeats(now_ms);
                let removed = self.coordinator.remove_server(index);
                out.push(Output::send(
                    from,
                    ProtoMsg::ServerRemoved { index, removed },
                ));
            }
            _ => {}
        }
    }
}
