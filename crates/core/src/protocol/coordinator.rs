//! Coordinator role: request admission, server choice, PPC lists,
//! doppelganger redemption, heartbeats, administration, and §10.3
//! recovery (requeueing jobs stuck on servers whose heartbeat lapsed).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::coordinator::{Coordinator, JobId, PeerId};
use crate::doppelganger::DoppelgangerStore;
use crate::protocol::{Address, Output, ProtoMsg, TimerKind};

/// Where a job came from — kept so a requeued job can be re-admitted
/// through the normal path and the initiator re-notified.
struct JobOrigin {
    url: String,
    peer: PeerId,
    local_tag: u64,
    initiator: Address,
}

/// The Coordinator as a sans-IO state machine over the pure
/// [`Coordinator`] bookkeeping core.
pub struct CoordinatorProto {
    /// Whitelist, job issuance, server list, peer registry.
    pub coordinator: Coordinator,
    /// Trained doppelgangers served against bearer tokens.
    pub dopp_store: DoppelgangerStore,
    /// Domain universe doppelgangers are regenerated over.
    pub universe: Vec<String>,
    /// PPCs asked per request (§6.1: "approximately 3").
    pub ppc_per_request: usize,
    /// Period of the [`TimerKind::CoordSweep`] recovery timer.
    pub sweep_every_ms: u64,
    /// Keyed by `BTreeMap` so any future iteration (and the sweep's
    /// requeue order) is job-id order by construction, not hash order.
    origins: BTreeMap<JobId, JobOrigin>,
}

impl CoordinatorProto {
    /// Wraps a configured [`Coordinator`].
    pub fn new(coordinator: Coordinator, ppc_per_request: usize) -> Self {
        CoordinatorProto {
            coordinator,
            dopp_store: DoppelgangerStore::new(),
            universe: Vec::new(),
            ppc_per_request,
            sweep_every_ms: 5_000,
            origins: BTreeMap::new(),
        }
    }

    /// Admits one request (fresh or requeued): mints a job, charges the
    /// least-loaded online server, and emits the PPC list + assignment.
    fn admit(&mut self, now_ms: u64, origin: JobOrigin, rng: &mut StdRng, out: &mut Vec<Output>) {
        let JobOrigin {
            url,
            peer,
            local_tag,
            initiator,
        } = origin;
        match self.coordinator.new_request(&url, now_ms) {
            Ok((job, server_idx)) => {
                let server = Address::Server { index: server_idx };
                // Step 1.1: PPC list for the initiator's location. The
                // deployment got whichever same-location peers happened
                // to be online — sample when there is actual choice.
                // With at most `ppc_per_request` candidates the sorted
                // registry order is used as-is, which keeps the list
                // (and hence per-PPC request sequencing) identical
                // across backends.
                let ppcs: Vec<Address> = match self.coordinator.peer(peer) {
                    Some(entry) => {
                        let loc = entry.location.clone();
                        let mut candidates: Vec<PeerId> =
                            self.coordinator.peers_near(&loc, peer, usize::MAX);
                        let k = self.ppc_per_request.min(candidates.len());
                        if candidates.len() > k {
                            // Partial Fisher-Yates for the first k slots.
                            for i in 0..k {
                                let j = rng.gen_range(i..candidates.len());
                                candidates.swap(i, j);
                            }
                        }
                        candidates.truncate(k);
                        candidates
                            .into_iter()
                            .map(|p| Address::Peer { id: p.0 })
                            .collect()
                    }
                    None => Vec::new(),
                };
                self.origins.insert(
                    job,
                    JobOrigin {
                        url,
                        peer,
                        local_tag,
                        initiator,
                    },
                );
                out.push(Output::send(server, ProtoMsg::PpcList { job, ppcs }));
                out.push(Output::send(
                    initiator,
                    ProtoMsg::CoordAssign {
                        job,
                        server,
                        local_tag,
                    },
                ));
            }
            Err(e) => out.push(Output::send(
                initiator,
                ProtoMsg::CoordReject {
                    local_tag,
                    reason: format!("{e:?}"),
                },
            )),
        }
    }

    /// A timer armed by this machine fired. Only [`TimerKind::CoordSweep`]
    /// is coordinator-owned: expire lapsed heartbeats, take back jobs
    /// charged to offline servers, and re-admit each through the normal
    /// assignment path (new job id, same initiator tag — the peer's own
    /// tag bookkeeping makes whichever assignment finishes first win).
    pub fn on_timer(
        &mut self,
        now_ms: u64,
        kind: TimerKind,
        rng: &mut StdRng,
        out: &mut Vec<Output>,
    ) {
        if kind != TimerKind::CoordSweep {
            return;
        }
        self.coordinator.expire_heartbeats(now_ms);
        for job in self.coordinator.take_orphaned_jobs(now_ms) {
            let Some(origin) = self.origins.remove(&job) else {
                continue;
            };
            self.admit(now_ms, origin, rng, out);
        }
        out.push(Output::Timer {
            delay_ms: self.sweep_every_ms,
            kind: TimerKind::CoordSweep,
        });
    }

    /// Feeds one delivered message; commands come back through `out`.
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        rng: &mut StdRng,
        out: &mut Vec<Output>,
    ) {
        match msg {
            ProtoMsg::CoordRequest {
                url,
                peer,
                local_tag,
            } => self.admit(
                now_ms,
                JobOrigin {
                    url,
                    peer,
                    local_tag,
                    initiator: from,
                },
                rng,
                out,
            ),
            ProtoMsg::JobComplete { job } => {
                self.coordinator.job_complete(job);
                self.origins.remove(&job);
            }
            ProtoMsg::Heartbeat { server_index } => {
                self.coordinator.heartbeat(server_index, now_ms);
            }
            ProtoMsg::DoppStateRequest { job, token, domain } => {
                let state = self
                    .dopp_store
                    .serve(&token, &domain, &self.universe, rng)
                    .and_then(|(new_token, _mode)| {
                        if new_token != token {
                            out.push(Output::send(
                                Address::Aggregator,
                                ProtoMsg::TokenRotated {
                                    old: token,
                                    new: new_token,
                                },
                            ));
                        }
                        self.dopp_store.client_state(&new_token).cloned()
                    });
                out.push(Output::send(from, ProtoMsg::DoppStateReply { job, state }));
            }
            ProtoMsg::RemoveServer { index } => {
                self.coordinator.expire_heartbeats(now_ms);
                let removed = self.coordinator.remove_server(index);
                out.push(Output::send(
                    from,
                    ProtoMsg::ServerRemoved { index, removed },
                ));
            }
            _ => {}
        }
    }
}
