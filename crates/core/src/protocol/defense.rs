//! Misbehavior defense: per-peer scoring, quotas, and the quarantine
//! state machine (paper §6's adversarial model, hardened).
//!
//! Sheriff's measurements come from *untrusted* volunteer peers, so the
//! admission path must bound what any single peer can pollute (the
//! robust-aggregation stance of the Poplar line). [`DefenseBook`] is the
//! sans-IO bookkeeping both the Coordinator and each Measurement server
//! embed:
//!
//! * **Validation rejects** — an inbound message failed schema/envelope
//!   plausibility *before* any state mutation (+2 score).
//! * **Quota trips** — a per-peer token bucket emptied: outstanding
//!   requests at the Coordinator, replies-per-job at a Measurement
//!   server (+1 score). Buckets refill on protocol *events* (job
//!   completion), never on time, so totals are identical across the DES
//!   and TCP backends.
//! * **Doppelganger mismatches** — a state request bearing an unknown /
//!   corrupted token (+3 score).
//! * **Pollution-budget exhaustion** — a peer exceeded its server-side
//!   influence budget of admitted observations (+1 score); see
//!   [`crate::pollution::influence_budget`].
//!
//! Standing walks `Good → Probation` (any score) `→ Quarantined` (score
//! reaches the threshold) `→ Parole` (quarantine timer elapses) `→ Good`
//! (clean parole) — or straight back to `Quarantined` on any violation
//! while on parole. Transitions out of quarantine are timer-driven
//! ([`crate::protocol::TimerKind::Quarantine`] /
//! [`crate::protocol::TimerKind::Parole`]); the book itself never sees a
//! clock, it only reacts, which keeps it deterministic under both
//! backends' schedulers.
//!
//! Telemetry (`defense.*`) is registered per book; all books of one
//! deployment share counter names, so the registry aggregates across
//! nodes exactly like the reliable channel's `protocol.*` counters.

use std::collections::BTreeMap;
use std::sync::Arc;

use sheriff_telemetry::{Counter, Registry};

use crate::protocol::digest::Digest;
use crate::protocol::Address;

/// Defense-book keys for IPC senders live above this base so they can
/// never collide with real peer ids (which are far below 2^32). Keys at
/// or above the base are infrastructure: they are scored and can be
/// quarantined locally, but the Coordinator never sends them a
/// [`crate::protocol::ProtoMsg::QuarantineNotice`] (there is no peer
/// address to notify).
pub const IPC_KEY_BASE: u64 = 1 << 32;

/// The defense-book key for a message source, if it is a scoreable
/// vantage (peers and IPCs; infrastructure roles are not scored).
pub fn defense_key(from: Address) -> Option<u64> {
    match from {
        Address::Peer { id } => Some(id),
        Address::Ipc { index } => Some(IPC_KEY_BASE + index as u64),
        _ => None,
    }
}

/// Tuning knobs for a [`DefenseBook`]. The defaults are generous enough
/// that honest traffic — including transport-duplicated replies under
/// active fault plans — never trips anything; Byzantine suites tighten
/// them deliberately.
#[derive(Clone, Copy, Debug)]
pub struct DefenseParams {
    /// Misbehavior score at which a peer is quarantined.
    pub quarantine_threshold: u32,
    /// How long a quarantine lasts before parole (ms).
    pub quarantine_ms: u64,
    /// How long parole lasts before full reinstatement (ms).
    pub parole_ms: u64,
    /// Coordinator bucket: concurrently outstanding (admitted,
    /// unfinished) jobs a single peer may hold.
    pub max_outstanding_requests: usize,
    /// Measurement bucket: inbound replies tolerated per `(peer, job)`.
    /// One is legitimate; fault plans can duplicate it once per copy, so
    /// the default leaves room before a trip.
    pub replies_per_job: u32,
    /// Per-peer influence budget: admitted observations beyond this are
    /// rejected as pollution. `u64::MAX` disables the bound.
    pub admit_budget: u64,
    /// Plausibility band: a reply whose converted amount differs from
    /// the initiator's own observation by more than this factor (either
    /// direction) is rejected. Honest geo price discrimination is a few
    /// ×; an 80×+ swing (one equivocation zero-run) is an attack.
    pub plausibility_band: f64,
}

impl Default for DefenseParams {
    fn default() -> Self {
        DefenseParams {
            quarantine_threshold: 6,
            quarantine_ms: 30_000,
            parole_ms: 15_000,
            max_outstanding_requests: 8,
            replies_per_job: 3,
            admit_budget: u64::MAX,
            plausibility_band: 25.0,
        }
    }
}

/// A peer's standing with one book.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Standing {
    /// No recorded misbehavior.
    #[default]
    Good,
    /// Non-zero score below the quarantine threshold.
    Probation,
    /// Nothing from this peer is admitted.
    Quarantined,
    /// Re-admitted on trial; any violation re-quarantines immediately.
    Parole,
}

/// What the caller must do after recording a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefenseAction {
    /// Nothing beyond the recorded score.
    None,
    /// The peer just crossed into quarantine: arm a
    /// [`crate::protocol::TimerKind::Quarantine`] timer for
    /// [`DefenseParams::quarantine_ms`] and notify interested parties.
    Quarantine {
        /// The newly quarantined peer.
        peer: u64,
    },
}

/// Registry-free running totals (mirrors the `defense.*` counters; kept
/// separately so parity tests can compare books without a registry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DefenseTotals {
    /// Messages rejected by validation.
    pub validation_rejects: u64,
    /// Token-bucket quota trips.
    pub quota_trips: u64,
    /// Quarantine entries (including re-quarantines from parole).
    pub quarantines: u64,
    /// Clean paroles (full reinstatements).
    pub paroles: u64,
    /// Messages dropped because the sender was quarantined.
    pub quarantine_drops: u64,
    /// Admissions refused by the influence budget.
    pub budget_exhaustions: u64,
}

struct DefenseTelemetry {
    validation_rejects: Arc<Counter>,
    quota_trips: Arc<Counter>,
    quarantines: Arc<Counter>,
    paroles: Arc<Counter>,
    quarantine_drops: Arc<Counter>,
    budget_exhaustions: Arc<Counter>,
}

#[derive(Default)]
struct PeerRecord {
    score: u32,
    standing: Standing,
    /// Observations admitted from this peer (influence accounting).
    admitted: u64,
    /// Replies seen per job (the measurement-side bucket). Pruned by
    /// [`DefenseBook::forget_job`] when the job leaves the table.
    job_replies: BTreeMap<u64, u32>,
}

/// Per-peer misbehavior bookkeeping. See the module docs.
pub struct DefenseBook {
    params: DefenseParams,
    records: BTreeMap<u64, PeerRecord>,
    telemetry: Option<DefenseTelemetry>,
    /// Running totals, registry or not.
    pub totals: DefenseTotals,
}

impl DefenseBook {
    /// A book under `params`.
    pub fn new(params: DefenseParams) -> Self {
        DefenseBook {
            params,
            records: BTreeMap::new(),
            telemetry: None,
            totals: DefenseTotals::default(),
        }
    }

    /// Registers the book's counters (`defense.*`) in `registry`.
    pub fn with_telemetry(mut self, registry: &Arc<Registry>) -> Self {
        self.telemetry = Some(DefenseTelemetry {
            validation_rejects: registry.counter("defense.validation_rejects"),
            quota_trips: registry.counter("defense.quota_trips"),
            quarantines: registry.counter("defense.quarantines"),
            paroles: registry.counter("defense.paroles"),
            quarantine_drops: registry.counter("defense.quarantine_drops"),
            budget_exhaustions: registry.counter("defense.budget_exhaustions"),
        });
        self
    }

    /// The tuning this book runs under.
    pub fn params(&self) -> &DefenseParams {
        &self.params
    }

    /// Replaces the tuning (drivers configure after construction).
    pub fn set_params(&mut self, params: DefenseParams) {
        self.params = params;
    }

    /// The peer's current standing.
    pub fn standing(&self, peer: u64) -> Standing {
        self.records
            .get(&peer)
            .map_or(Standing::Good, |r| r.standing)
    }

    /// True when nothing from `peer` may be admitted right now.
    pub fn is_quarantined(&self, peer: u64) -> bool {
        self.standing(peer) == Standing::Quarantined
    }

    /// Observations admitted from `peer` so far.
    pub fn admitted_by(&self, peer: u64) -> u64 {
        self.records.get(&peer).map_or(0, |r| r.admitted)
    }

    /// Records a message dropped because its sender is quarantined.
    pub fn note_quarantine_drop(&mut self) {
        self.totals.quarantine_drops += 1;
        if let Some(t) = &self.telemetry {
            t.quarantine_drops.inc();
        }
    }

    /// An inbound message failed validation (+2 score).
    pub fn note_validation_reject(&mut self, peer: u64) -> DefenseAction {
        self.totals.validation_rejects += 1;
        if let Some(t) = &self.telemetry {
            t.validation_rejects.inc();
        }
        self.add_score(peer, 2)
    }

    /// A per-peer quota bucket emptied (+1 score).
    pub fn note_quota_trip(&mut self, peer: u64) -> DefenseAction {
        self.totals.quota_trips += 1;
        if let Some(t) = &self.telemetry {
            t.quota_trips.inc();
        }
        self.add_score(peer, 1)
    }

    /// A doppelganger state request bore an unknown token (+3 score).
    pub fn note_dopp_mismatch(&mut self, peer: u64) -> DefenseAction {
        self.add_score(peer, 3)
    }

    /// A remote book reported `score` worth of misbehavior (the
    /// Coordinator folding a Measurement server's `MisbehaviorReport`).
    pub fn note_remote_report(&mut self, peer: u64, score: u32) -> DefenseAction {
        self.add_score(peer, score)
    }

    /// Spends one reply token for `(peer, job)`. Returns `false` when
    /// the bucket is empty — the caller should reject and record a
    /// quota trip.
    pub fn spend_reply_token(&mut self, peer: u64, job: u64) -> bool {
        let limit = self.params.replies_per_job;
        let record = self.records.entry(peer).or_default();
        let seen = record.job_replies.entry(job).or_insert(0);
        *seen += 1;
        *seen <= limit
    }

    /// Releases every peer's reply bucket for a finished job.
    pub fn forget_job(&mut self, job: u64) {
        for record in self.records.values_mut() {
            record.job_replies.remove(&job);
        }
    }

    /// Accounts one admitted observation against the influence budget.
    /// Returns `false` (and scores the exhaustion) when the budget is
    /// already spent — the observation must then be rejected.
    pub fn admit_observation(&mut self, peer: u64) -> (bool, DefenseAction) {
        let budget = self.params.admit_budget;
        let record = self.records.entry(peer).or_default();
        if record.admitted >= budget {
            self.totals.budget_exhaustions += 1;
            if let Some(t) = &self.telemetry {
                t.budget_exhaustions.inc();
            }
            return (false, self.add_score(peer, 1));
        }
        record.admitted += 1;
        (true, DefenseAction::None)
    }

    /// The quarantine timer for `peer` elapsed: move to parole. Returns
    /// `true` when the caller should arm the parole timer. At most one
    /// quarantine timer is ever in flight per peer — entering quarantine
    /// arms exactly one, and violations *while* quarantined add score
    /// without re-arming — so a firing timer is never stale.
    pub fn on_quarantine_elapsed(&mut self, peer: u64) -> bool {
        let Some(record) = self.records.get_mut(&peer) else {
            return false;
        };
        if record.standing != Standing::Quarantined {
            return false;
        }
        record.standing = Standing::Parole;
        true
    }

    /// The parole timer for `peer` elapsed with no violation: full
    /// reinstatement, score forgiven.
    pub fn on_parole_elapsed(&mut self, peer: u64) {
        let Some(record) = self.records.get_mut(&peer) else {
            return;
        };
        if record.standing != Standing::Parole {
            return;
        }
        record.standing = Standing::Good;
        record.score = 0;
        self.totals.paroles += 1;
        if let Some(t) = &self.telemetry {
            t.paroles.inc();
        }
    }

    /// The peer's accumulated misbehavior score.
    pub fn score(&self, peer: u64) -> u32 {
        self.records.get(&peer).map_or(0, |r| r.score)
    }

    /// Every tracked peer's `(key, standing)`, in key order — the model
    /// checker's ladder-monotonicity invariant compares these snapshots
    /// across transitions.
    pub fn standings(&self) -> Vec<(u64, Standing)> {
        self.records
            .iter()
            .map(|(key, record)| (*key, record.standing))
            .collect()
    }

    /// Folds the book's logical state into `d` for model-checker state
    /// canonicalization. The book never sees a clock, so everything it
    /// holds is already time-translation invariant.
    pub fn state_digest(&self, d: &mut Digest) {
        d.write_u64(self.records.len() as u64);
        for (peer, record) in &self.records {
            d.write_u64(*peer);
            d.write_u64(u64::from(record.score));
            d.write_str(&format!("{:?}", record.standing));
            d.write_u64(record.admitted);
            d.write_u64(record.job_replies.len() as u64);
            for (job, replies) in &record.job_replies {
                d.write_u64(*job);
                d.write_u64(u64::from(*replies));
            }
        }
    }

    fn add_score(&mut self, peer: u64, points: u32) -> DefenseAction {
        let threshold = self.params.quarantine_threshold;
        let record = self.records.entry(peer).or_default();
        record.score = record.score.saturating_add(points);
        match record.standing {
            // Already serving: the score grows but no new quarantine
            // entry is counted and no new timer is armed — at most one
            // quarantine timer is ever in flight per peer.
            Standing::Quarantined => DefenseAction::None,
            // Any violation on parole re-quarantines immediately.
            Standing::Parole => {
                record.standing = Standing::Quarantined;
                self.count_quarantine();
                DefenseAction::Quarantine { peer }
            }
            Standing::Good | Standing::Probation => {
                if record.score >= threshold {
                    record.standing = Standing::Quarantined;
                    self.count_quarantine();
                    DefenseAction::Quarantine { peer }
                } else {
                    record.standing = Standing::Probation;
                    DefenseAction::None
                }
            }
        }
    }

    fn count_quarantine(&mut self) {
        self.totals.quarantines += 1;
        if let Some(t) = &self.telemetry {
            t.quarantines.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> DefenseBook {
        DefenseBook::new(DefenseParams {
            quarantine_threshold: 4,
            admit_budget: 2,
            replies_per_job: 1,
            ..DefenseParams::default()
        })
    }

    #[test]
    fn scores_walk_good_probation_quarantined() {
        let mut b = book();
        assert_eq!(b.standing(7), Standing::Good);
        assert_eq!(b.note_validation_reject(7), DefenseAction::None);
        assert_eq!(b.standing(7), Standing::Probation);
        assert_eq!(
            b.note_validation_reject(7),
            DefenseAction::Quarantine { peer: 7 }
        );
        assert!(b.is_quarantined(7));
        assert_eq!(b.totals.quarantines, 1);
        assert_eq!(b.totals.validation_rejects, 2);
    }

    #[test]
    fn quarantine_parole_reinstate_cycle() {
        let mut b = book();
        b.note_validation_reject(7);
        b.note_validation_reject(7);
        assert!(b.on_quarantine_elapsed(7));
        assert_eq!(b.standing(7), Standing::Parole);
        b.on_parole_elapsed(7);
        assert_eq!(b.standing(7), Standing::Good);
        assert_eq!(b.score(7), 0, "clean parole forgives the score");
        assert_eq!(b.totals.paroles, 1);
    }

    #[test]
    fn any_violation_on_parole_requarantines() {
        let mut b = book();
        b.note_validation_reject(7);
        b.note_validation_reject(7);
        assert!(b.on_quarantine_elapsed(7));
        assert_eq!(b.note_quota_trip(7), DefenseAction::Quarantine { peer: 7 });
        assert_eq!(b.totals.quarantines, 2);
        // The parole timer armed earlier is now stale and must not
        // reinstate the re-quarantined peer.
        b.on_parole_elapsed(7);
        assert!(b.is_quarantined(7));
    }

    #[test]
    fn quarantine_timer_ignores_non_quarantined_peers() {
        let mut b = book();
        assert!(!b.on_quarantine_elapsed(7), "unknown peer");
        b.note_quota_trip(7);
        assert!(!b.on_quarantine_elapsed(7), "probation is not quarantine");
        assert_eq!(b.standing(7), Standing::Probation);
    }

    #[test]
    fn reply_bucket_tolerates_the_limit_then_trips() {
        let mut b = book();
        assert!(b.spend_reply_token(7, 1), "the legitimate reply");
        assert!(!b.spend_reply_token(7, 1), "the flood");
        b.forget_job(1);
        assert!(b.spend_reply_token(7, 1), "bucket refills per job");
    }

    #[test]
    fn influence_budget_bounds_admissions() {
        let mut b = book();
        assert!(b.admit_observation(7).0);
        assert!(b.admit_observation(7).0);
        let (admitted, _) = b.admit_observation(7);
        assert!(!admitted, "third observation exceeds the budget of 2");
        assert_eq!(b.totals.budget_exhaustions, 1);
        assert_eq!(b.admitted_by(7), 2);
    }

    #[test]
    fn telemetry_counters_mirror_totals() {
        let registry = Arc::new(Registry::new());
        let mut b = book().with_telemetry(&registry);
        b.note_validation_reject(7);
        b.note_validation_reject(7);
        b.on_quarantine_elapsed(7);
        b.on_parole_elapsed(7);
        b.note_quarantine_drop();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["defense.validation_rejects"], 2);
        assert_eq!(snap.counters["defense.quarantines"], 1);
        assert_eq!(snap.counters["defense.paroles"], 1);
        assert_eq!(snap.counters["defense.quarantine_drops"], 1);
    }

    #[test]
    fn dopp_mismatch_scores_hardest() {
        let mut b = book();
        assert_eq!(b.note_dopp_mismatch(7), DefenseAction::None);
        assert_eq!(
            b.note_dopp_mismatch(7),
            DefenseAction::Quarantine { peer: 7 }
        );
    }
}
