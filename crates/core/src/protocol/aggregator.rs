//! Aggregator role: peer→cluster directory and bearer-token custody
//! (the §3.3 split of identity from state).

use crate::doppelganger::{AggregatorDirectory, DoppelgangerId};
use crate::protocol::{Address, Output, ProtoMsg};

/// The Aggregator as a sans-IO state machine.
pub struct AggregatorProto {
    /// Peer→cluster assignments and per-cluster tokens.
    pub directory: AggregatorDirectory,
    /// Token list mirroring the directory's cluster order.
    pub tokens: Vec<DoppelgangerId>,
}

impl AggregatorProto {
    /// An empty directory (no clustered peers yet).
    pub fn new() -> Self {
        AggregatorProto {
            directory: AggregatorDirectory::new(&[], Vec::new()),
            tokens: Vec::new(),
        }
    }

    /// Installs a trained peer→cluster mapping with its tokens.
    pub fn install(&mut self, assignments: &[(u64, usize)], tokens: Vec<DoppelgangerId>) {
        self.directory = AggregatorDirectory::new(assignments, tokens.clone());
        self.tokens = tokens;
    }

    /// Feeds one delivered message; commands come back through `out`.
    pub fn on_message(&mut self, from: Address, msg: ProtoMsg, out: &mut Vec<Output>) {
        match msg {
            ProtoMsg::DoppIdRequest { job, peer } => {
                let token = self.directory.token_for(peer);
                out.push(Output::send(from, ProtoMsg::DoppIdReply { job, token }));
            }
            ProtoMsg::TokenRotated { old, new } => {
                if let Some((pos, slot)) =
                    self.tokens.iter_mut().enumerate().find(|(_, t)| **t == old)
                {
                    *slot = new;
                    self.directory.update_token(pos, new);
                }
            }
            _ => {}
        }
    }
}

impl Default for AggregatorProto {
    fn default() -> Self {
        AggregatorProto::new()
    }
}
