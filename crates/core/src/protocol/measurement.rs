//! Measurement-server role: fan-out, reply collection, extraction and
//! assembly on a modeled shared CPU, persistence, result streaming.

use std::collections::{btree_map::Entry, BTreeMap, BTreeSet};

use sheriff_currency::FixedRates;
use sheriff_geo::Country;
use sheriff_html::tagspath::TagsPath;
use sheriff_market::ProductId;

use crate::coordinator::JobId;
use crate::db::{Database, DbCostModel};
use crate::measurement::{process_response, JobPageStore, VantageMeta};
use crate::protocol::digest::Digest;
use crate::protocol::{
    day_of_ms, defense_key, Address, DefenseAction, DefenseBook, DefenseParams, Output, ProtoMsg,
    TimerKind,
};
use crate::records::{PriceCheck, PriceObservation, VantageKind};

/// Observable outcomes the driver may turn into telemetry. The state
/// machine stays instrumentation-free; the DES adapter maps these onto
/// its counters/histograms/spans, the TCP adapter ignores most of them.
#[derive(Clone, Debug, PartialEq)]
pub enum MeasEvent {
    /// A proxy reply arrived in time and was folded into the job.
    ReplyAccepted {
        /// Virtual/real ms since the job's fan-out.
        since_fanout_ms: u64,
    },
    /// A reply arrived after assembly (or for an unknown job).
    ReplyLate,
    /// A second reply from a vantage the job already heard (a
    /// transport-duplicated `FetchReply`); folded into dedup counters.
    ReplyDuplicate,
    /// A half-opened job (its `PpcList`/`JobSubmit` partner never
    /// arrived) was reaped at the deadline and released upstream.
    OrphanReaped {
        /// The reaped job.
        job: JobId,
    },
    /// Extraction/assembly was scheduled on the shared CPU.
    AssemblyScheduled {
        /// Total modeled CPU charge, ms (includes `db_ms` when integrated).
        proc_ms: f64,
        /// v1 integrated-RDBMS share of the charge.
        db_ms: Option<f64>,
        /// Jobs still unassembled after this one left the pool.
        active_jobs: usize,
    },
    /// A job finished: results streamed, completion reported.
    JobFinished {
        /// The finished job.
        job: JobId,
        /// DiffStorage bytes actually stored.
        stored: usize,
        /// Bytes the full pages would have taken.
        full: usize,
        /// Proxy replies received.
        received: usize,
        /// When the fan-out happened (span start).
        fanout_at_ms: u64,
        /// Jobs still unassembled.
        active_jobs: usize,
    },
}

struct JobState {
    domain: String,
    product: ProductId,
    tags_path: TagsPath,
    page_store: JobPageStore,
    observations: Vec<PriceObservation>,
    initiator: Address,
    expected: usize,
    received: usize,
    day: u32,
    fanned_out: bool,
    /// Millisecond time the FetchOrders went out (span start).
    fanout_at_ms: u64,
    ppcs: Option<Vec<Address>>,
    submit: Option<Box<SubmitData>>,
    assembled: bool,
    /// Vantages already folded in — fetches are not retransmission-
    /// protected, so a fault-duplicated `FetchReply` must be absorbed
    /// here to keep observation sets duplicate-free.
    seen_vantages: BTreeSet<(VantageKind, u64)>,
}

struct SubmitData {
    tags_path: TagsPath,
    initiator_html: String,
    initiator_obs: PriceObservation,
    domain: String,
    product: ProductId,
    initiator: Address,
}

/// Construction parameters for [`MeasurementProto`].
pub struct MeasurementParams {
    /// Index in the Coordinator's server list.
    pub index: usize,
    /// Every IPC to fan out to.
    pub ipcs: Vec<Address>,
    /// Conversion rates for extraction.
    pub rates: FixedRates,
    /// Currency of the result page.
    pub target_currency: String,
    /// Modeled CPU per response processed, ms.
    pub proc_per_reply_ms: f64,
    /// Context-switch degradation per concurrent job.
    pub context_switch_alpha: f64,
    /// Give-up deadline for outstanding fetches, ms.
    pub job_deadline_ms: u64,
    /// Database cost model.
    pub db_cost: DbCostModel,
    /// v1: the RDBMS shares this server's CPU.
    pub integrated_db: bool,
    /// Liveness beacon period, ms.
    pub heartbeat_every_ms: u64,
    /// Expected country per global IPC index (envelope validation).
    /// Empty disables the country check.
    pub ipc_countries: Vec<Country>,
    /// Misbehavior-defense tuning (see [`DefenseBook`]).
    pub defense: DefenseParams,
}

/// The Measurement server as a sans-IO state machine.
pub struct MeasurementProto {
    index: usize,
    ipcs: Vec<Address>,
    /// `BTreeMap` so `active_jobs()` and any sweep over the table see
    /// job-id order, never hash order.
    jobs: BTreeMap<JobId, JobState>,
    rates: FixedRates,
    target_currency: String,
    proc_per_reply_ms: f64,
    context_switch_alpha: f64,
    job_deadline_ms: u64,
    db_cost: DbCostModel,
    integrated_db: bool,
    /// v1 integrated storage (v2 keeps it on the Database server).
    pub database: Database,
    cpu_free_at_ms: u64,
    heartbeat_every_ms: u64,
    ipc_countries: Vec<Country>,
    /// Per-peer misbehavior bookkeeping. Public so drivers can swap in
    /// a telemetry-backed book after construction.
    pub defense: DefenseBook,
}

impl MeasurementProto {
    /// Builds the machine from its parameters.
    pub fn new(params: MeasurementParams) -> Self {
        MeasurementProto {
            index: params.index,
            ipcs: params.ipcs,
            jobs: BTreeMap::new(),
            rates: params.rates,
            target_currency: params.target_currency,
            proc_per_reply_ms: params.proc_per_reply_ms,
            context_switch_alpha: params.context_switch_alpha,
            job_deadline_ms: params.job_deadline_ms,
            db_cost: params.db_cost,
            integrated_db: params.integrated_db,
            database: Database::new(),
            cpu_free_at_ms: 0,
            heartbeat_every_ms: params.heartbeat_every_ms,
            ipc_countries: params.ipc_countries,
            defense: DefenseBook::new(params.defense),
        }
    }

    fn active_jobs(&self) -> usize {
        self.jobs.values().filter(|j| !j.assembled).count()
    }

    fn blank_job(from: Address, now_ms: u64) -> JobState {
        JobState {
            domain: String::new(),
            product: ProductId(0),
            tags_path: TagsPath { steps: vec![] },
            page_store: JobPageStore::new(""),
            observations: Vec::new(),
            initiator: from,
            expected: usize::MAX,
            received: 0,
            day: day_of_ms(now_ms),
            fanned_out: false,
            fanout_at_ms: 0,
            ppcs: None,
            submit: None,
            assembled: false,
            seen_vantages: BTreeSet::new(),
        }
    }

    /// Creates the job entry on first contact and arms an orphan-reap
    /// deadline: if the partner half (`PpcList` vs `JobSubmit`) never
    /// arrives — the initiator aborted its own fetch, or the submit was
    /// lost for good — the half-open entry is reaped instead of leaking.
    /// Returns the (new or existing) entry so callers never re-look-up.
    fn open_job(
        &mut self,
        job: JobId,
        from: Address,
        now_ms: u64,
        out: &mut Vec<Output>,
    ) -> &mut JobState {
        match self.jobs.entry(job) {
            Entry::Occupied(entry) => entry.into_mut(),
            Entry::Vacant(entry) => {
                out.push(Output::Timer {
                    delay_ms: self.job_deadline_ms,
                    kind: TimerKind::JobDeadline(job),
                });
                entry.insert(Self::blank_job(from, now_ms))
            }
        }
    }

    fn try_fan_out(&mut self, now_ms: u64, job: JobId, out: &mut Vec<Output>) {
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.fanned_out {
            return;
        }
        // Both halves must be present; `take` only after both are known,
        // or a lone submit would be lost.
        let Some(ppcs) = state.ppcs.clone() else {
            return;
        };
        let Some(submit) = state.submit.take() else {
            return;
        };

        state.domain = submit.domain.clone();
        state.product = submit.product;
        state.tags_path = submit.tags_path.clone();
        state.page_store = JobPageStore::new(&submit.initiator_html);
        state.observations.push(submit.initiator_obs);
        state.initiator = submit.initiator;
        state.fanned_out = true;
        state.fanout_at_ms = now_ms;
        state.expected = self.ipcs.len() + ppcs.len();

        let mut seq = job.0 * 100;
        for &ipc in &self.ipcs {
            seq += 1;
            out.push(Output::send(
                ipc,
                ProtoMsg::FetchOrder {
                    job,
                    domain: submit.domain.clone(),
                    product: submit.product,
                    seq,
                },
            ));
        }
        for &ppc in &ppcs {
            seq += 1;
            out.push(Output::send(
                ppc,
                ProtoMsg::FetchOrder {
                    job,
                    domain: submit.domain.clone(),
                    product: submit.product,
                    seq,
                },
            ));
        }
        out.push(Output::Timer {
            delay_ms: self.job_deadline_ms,
            kind: TimerKind::JobDeadline(job),
        });
    }

    /// All replies in (or deadline): charge CPU for extraction and schedule
    /// the proc-done timer on the shared-CPU queue.
    fn begin_assembly(
        &mut self,
        now_ms: u64,
        job: JobId,
        out: &mut Vec<Output>,
        events: &mut Vec<MeasEvent>,
    ) {
        let active = self.active_jobs();
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.assembled {
            return;
        }
        state.assembled = true;
        let cs_factor = 1.0 + self.context_switch_alpha * (active.saturating_sub(1)) as f64;
        let mut proc_ms = self.proc_per_reply_ms * (state.received + 1) as f64 * cs_factor;
        let mut db_ms = None;
        if self.integrated_db {
            // v1: the RDBMS shares the CPU — its cost rides the same queue.
            let cost = self.db_cost.store_cost_ms(
                state.observations.len().max(state.received + 1),
                active as u32,
            ) as f64;
            db_ms = Some(cost);
            proc_ms += cost;
        }
        let start = self.cpu_free_at_ms.max(now_ms);
        let done = start + proc_ms.round() as u64;
        self.cpu_free_at_ms = done;
        events.push(MeasEvent::AssemblyScheduled {
            proc_ms,
            db_ms,
            active_jobs: self.active_jobs(),
        });
        out.push(Output::Timer {
            delay_ms: done - now_ms,
            kind: TimerKind::ProcDone(job),
        });
    }

    /// A defense escalation crossed into quarantine: arm the quarantine
    /// timer and report the peer upstream (the Coordinator folds the
    /// score into its own book). At most one quarantine timer is ever
    /// armed per entry — see [`DefenseBook::on_quarantine_elapsed`].
    fn escalate(&mut self, action: DefenseAction, out: &mut Vec<Output>) {
        if let DefenseAction::Quarantine { peer } = action {
            out.push(Output::Timer {
                delay_ms: self.defense.params().quarantine_ms,
                kind: TimerKind::Quarantine(peer),
            });
            out.push(Output::send(
                Address::Coordinator,
                ProtoMsg::MisbehaviorReport {
                    peer,
                    score: self.defense.score(peer),
                },
            ));
        }
    }

    fn finish_job(
        &mut self,
        _now_ms: u64,
        job: JobId,
        out: &mut Vec<Output>,
        events: &mut Vec<MeasEvent>,
    ) {
        let Some(state) = self.jobs.remove(&job) else {
            return;
        };
        self.defense.forget_job(job.0);
        let (stored, full) = state.page_store.accounting();
        events.push(MeasEvent::JobFinished {
            job,
            stored,
            full,
            received: state.received,
            fanout_at_ms: state.fanout_at_ms,
            active_jobs: self.active_jobs(),
        });
        let check = PriceCheck {
            job_id: job.0,
            domain: state.domain.clone(),
            url: format!("{}/product/{}", state.domain, state.product.0),
            day: state.day,
            observations: state.observations,
        };
        if self.integrated_db {
            self.database.store(check.clone());
        }
        out.push(Output::send(
            Address::Coordinator,
            ProtoMsg::JobComplete { job },
        ));
        out.push(Output::send(
            state.initiator,
            ProtoMsg::Results {
                job,
                check: Box::new(check),
            },
        ));
    }

    /// Feeds one delivered message; commands through `out`, observable
    /// outcomes through `events`.
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        out: &mut Vec<Output>,
        events: &mut Vec<MeasEvent>,
    ) {
        match msg {
            ProtoMsg::PpcList { job, ppcs } => {
                let state = self.open_job(job, from, now_ms, out);
                state.ppcs = Some(ppcs);
                self.try_fan_out(now_ms, job, out);
            }
            ProtoMsg::JobSubmit {
                job,
                domain,
                product,
                tags_path,
                initiator_html,
                initiator_obs,
            } => {
                let state = self.open_job(job, from, now_ms, out);
                state.submit = Some(Box::new(SubmitData {
                    tags_path,
                    initiator_html,
                    initiator_obs: *initiator_obs,
                    domain,
                    product,
                    initiator: from,
                }));
                self.try_fan_out(now_ms, job, out);
            }
            ProtoMsg::FetchReply { job, meta, html } => {
                // Defense gate 0: quarantined vantages contribute nothing.
                let sender = defense_key(from);
                if let Some(peer) = sender {
                    if self.defense.is_quarantined(peer) {
                        self.defense.note_quarantine_drop();
                        return;
                    }
                }
                let Some(state) = self.jobs.get_mut(&job) else {
                    events.push(MeasEvent::ReplyLate); // after deadline assembly
                    return;
                };
                if state.assembled {
                    events.push(MeasEvent::ReplyLate);
                    return;
                }
                // Defense gate 1: per-(vantage, job) reply quota — flood
                // copies beyond the bucket trip it and are never parsed.
                if let Some(peer) = sender {
                    if !self.defense.spend_reply_token(peer, job.0) {
                        let action = self.defense.note_quota_trip(peer);
                        self.escalate(action, out);
                        return;
                    }
                }
                // Defense gate 2: envelope validation before any state
                // mutation — the claimed vantage identity must match the
                // transport-level source.
                if validate_envelope(from, &meta, state.ppcs.as_deref(), &self.ipc_countries)
                    .is_err()
                {
                    if let Some(peer) = sender {
                        let action = self.defense.note_validation_reject(peer);
                        self.escalate(action, out);
                    }
                    return;
                }
                if !state.seen_vantages.insert((meta.kind, meta.id)) {
                    events.push(MeasEvent::ReplyDuplicate);
                    return;
                }
                // Defense gate 3: price plausibility against the
                // initiator's own observation (equivocated or replayed
                // pages carry wildly skewed amounts), then the per-peer
                // influence budget. Either rejection still counts the
                // vantage as heard so honest jobs never stall on a
                // Byzantine peer's slot.
                let obs = process_response(
                    &html,
                    &state.tags_path,
                    &meta,
                    &self.target_currency,
                    &self.rates,
                );
                let band = self.defense.params().plausibility_band;
                let mut admit = plausible(&obs, state.observations.first(), band);
                if !admit {
                    if let Some(peer) = sender {
                        let action = self.defense.note_validation_reject(peer);
                        self.escalate(action, out);
                    }
                } else if let Some(peer) = sender {
                    let (ok, action) = self.defense.admit_observation(peer);
                    admit = ok;
                    self.escalate(action, out);
                }
                let Some(state) = self.jobs.get_mut(&job) else {
                    return;
                };
                if admit {
                    events.push(MeasEvent::ReplyAccepted {
                        since_fanout_ms: now_ms.saturating_sub(state.fanout_at_ms),
                    });
                    state.page_store.store_response(&html);
                    state.observations.push(obs);
                }
                state.received += 1;
                if state.received >= state.expected {
                    self.begin_assembly(now_ms, job, out, events);
                }
            }
            ProtoMsg::DbAck { job } => self.finish_job(now_ms, job, out, events),
            _ => {}
        }
    }

    /// Feeds one fired timer.
    pub fn on_timer(
        &mut self,
        now_ms: u64,
        kind: TimerKind,
        out: &mut Vec<Output>,
        events: &mut Vec<MeasEvent>,
    ) {
        match kind {
            TimerKind::Heartbeat => {
                out.push(Output::send(
                    Address::Coordinator,
                    ProtoMsg::Heartbeat {
                        server_index: self.index,
                    },
                ));
                out.push(Output::Timer {
                    delay_ms: self.heartbeat_every_ms,
                    kind: TimerKind::Heartbeat,
                });
            }
            TimerKind::JobDeadline(job) => match self.jobs.get(&job) {
                // Half-open at the deadline: the partner message never
                // arrived. Reap the entry and release the job upstream
                // (the initiator's own abort may have released it
                // already; `job_complete` is idempotent).
                Some(s) if !s.fanned_out => {
                    self.jobs.remove(&job);
                    self.defense.forget_job(job.0);
                    out.push(Output::send(
                        Address::Coordinator,
                        ProtoMsg::JobComplete { job },
                    ));
                    events.push(MeasEvent::OrphanReaped { job });
                }
                // Assemble with whatever arrived (§10.3's corrective
                // path) — but only on the timer armed at fan-out; the
                // earlier creation-time reap timer is not a deadline.
                Some(s) if !s.assembled && now_ms >= s.fanout_at_ms + self.job_deadline_ms => {
                    self.begin_assembly(now_ms, job, out, events);
                }
                _ => {}
            },
            TimerKind::ProcDone(job) => {
                if self.integrated_db {
                    // DB cost already charged on the CPU queue.
                    self.finish_job(now_ms, job, out, events);
                } else if let Some(state) = self.jobs.get(&job) {
                    let check = PriceCheck {
                        job_id: job.0,
                        domain: state.domain.clone(),
                        url: format!("{}/product/{}", state.domain, state.product.0),
                        day: state.day,
                        observations: state.observations.clone(),
                    };
                    out.push(Output::send(
                        Address::Database,
                        ProtoMsg::StoreCheck {
                            job,
                            check: Box::new(check),
                        },
                    ));
                }
            }
            TimerKind::DbDone(job) => self.finish_job(now_ms, job, out, events),
            TimerKind::Quarantine(peer) => {
                if self.defense.on_quarantine_elapsed(peer) {
                    out.push(Output::Timer {
                        delay_ms: self.defense.params().parole_ms,
                        kind: TimerKind::Parole(peer),
                    });
                }
            }
            TimerKind::Parole(peer) => self.defense.on_parole_elapsed(peer),
            // Retransmit timers belong to the driver's reliable channel;
            // the sweep belongs to the Coordinator.
            TimerKind::Retransmit(_) | TimerKind::CoordSweep => {}
        }
    }

    /// The server came back from a crash with its state intact but its
    /// timers deferred and the Coordinator possibly counting it dead:
    /// beacon immediately so it is marked online again without waiting
    /// out the (deferred) periodic heartbeat.
    pub fn on_restart(&mut self, _now_ms: u64, out: &mut Vec<Output>) {
        out.push(Output::send(
            Address::Coordinator,
            ProtoMsg::Heartbeat {
                server_index: self.index,
            },
        ));
    }

    /// The driver's reliable channel gave up retransmitting one of this
    /// machine's sends. Only a `StoreCheck` pins job state here: the
    /// `DbAck` that would have finished the job can now never arrive,
    /// so the job is finished locally (results still stream to the
    /// initiator — the observations exist; only durable storage was
    /// lost, which the next day's check re-measures anyway). Any other
    /// abandoned payload pins nothing.
    pub fn on_send_abandoned(
        &mut self,
        now_ms: u64,
        msg: &ProtoMsg,
        out: &mut Vec<Output>,
        events: &mut Vec<MeasEvent>,
    ) {
        if let ProtoMsg::StoreCheck { job, .. } = msg {
            self.finish_job(now_ms, *job, out, events);
        }
    }

    /// Open (unfinished) jobs — the model checker's quiescence invariant
    /// requires this table to drain once no events remain.
    pub fn open_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// True when any job folded in two observations from the same
    /// `(kind, id)` vantage — the duplicate-observation invariant the
    /// `seen_vantages` dedup exists to uphold.
    pub fn has_duplicate_vantage(&self) -> bool {
        self.jobs.values().any(|s| {
            let mut seen = BTreeSet::new();
            s.observations
                .iter()
                .any(|o| !seen.insert((o.vantage, o.vantage_id)))
        })
    }

    /// Folds the machine's logical state into `d` for model-checker
    /// state canonicalization. Absolute-time fields (`fanout_at_ms`,
    /// `cpu_free_at_ms`, per-record stamps) are excluded: behavior
    /// depends on them only through timer order, which the checker
    /// digests separately as a relative sequence.
    pub fn state_digest(&self, d: &mut Digest) {
        d.write_u64(self.jobs.len() as u64);
        for (job, s) in &self.jobs {
            d.write_u64(job.0);
            d.write_str(&s.domain);
            d.write_str(&format!("{:?}", s.product));
            d.write_str(&format!("{:?}", s.initiator));
            d.write_u64(s.received as u64);
            d.write_u64(s.expected as u64);
            d.write_u64(u64::from(s.day));
            d.write_bool(s.fanned_out);
            d.write_bool(s.assembled);
            d.write_bool(s.submit.is_some());
            d.write_u64(s.observations.len() as u64);
            for o in &s.observations {
                d.write_str(&format!(
                    "{:?}/{}/{}",
                    o.vantage, o.vantage_id, o.amount_eur
                ));
            }
            d.write_u64(s.seen_vantages.len() as u64);
            for (kind, id) in &s.seen_vantages {
                d.write_str(&format!("{kind:?}"));
                d.write_u64(*id);
            }
            match &s.ppcs {
                None => d.write_bool(false),
                Some(ppcs) => {
                    d.write_bool(true);
                    d.write_u64(ppcs.len() as u64);
                    for p in ppcs {
                        d.write_str(&format!("{p:?}"));
                    }
                }
            }
        }
        d.write_u64(self.database.len() as u64);
        self.defense.state_digest(d);
    }
}

/// Envelope validation for a fetch reply: the claimed vantage identity
/// (kind, id, country) must be consistent with the transport-level
/// source address, and peers must actually be on the job's PPC list.
/// Runs before any job-state mutation.
fn validate_envelope(
    from: Address,
    meta: &VantageMeta,
    ppcs: Option<&[Address]>,
    ipc_countries: &[Country],
) -> Result<(), &'static str> {
    match from {
        Address::Peer { id } => {
            if meta.kind != VantageKind::Ppc {
                return Err("peer reply claiming a non-PPC vantage");
            }
            if meta.id != id {
                return Err("vantage id does not match the sending peer");
            }
            match ppcs {
                Some(list) if list.contains(&from) => Ok(()),
                _ => Err("sender is not on the job's PPC list"),
            }
        }
        Address::Ipc { index } => {
            if meta.kind != VantageKind::Ipc {
                return Err("IPC reply claiming a non-IPC vantage");
            }
            if meta.id != index as u64 {
                return Err("vantage id does not match the sending IPC");
            }
            if ipc_countries.is_empty() {
                return Ok(()); // country check disabled
            }
            match ipc_countries.get(index) {
                Some(c) if *c == meta.country => Ok(()),
                Some(_) => Err("IPC reply outside its geographic envelope"),
                None => Err("unknown IPC index"),
            }
        }
        _ => Err("fetch reply from a non-vantage role"),
    }
}

/// Price plausibility: an extracted amount more than `band`× away from
/// the initiator's own observation (either direction) is rejected.
/// Failed fetches (CAPTCHA pages) and missing baselines pass — honest
/// blocking must never score.
fn plausible(obs: &PriceObservation, initiator: Option<&PriceObservation>, band: f64) -> bool {
    let Some(base) = initiator else {
        return true;
    };
    if obs.failed || base.failed {
        return true;
    }
    let (a, b) = (obs.amount_eur, base.amount_eur);
    if a <= 0.0 || b <= 0.0 {
        return true;
    }
    let ratio = if a > b { a / b } else { b / a };
    ratio <= band
}
