//! Canonical FNV-1a state hashing for bounded model checking.
//!
//! `sheriff-model` explores the protocol state space by depth-first
//! search over event interleavings, pruning any state it has already
//! visited. "Already visited" is decided by a canonical digest: each
//! sans-IO machine folds its *logical* state into a [`Digest`], and the
//! checker combines those with the in-flight message set and the armed
//! timer sequence. Two rules keep the digest canonical:
//!
//! - **No absolute time.** Machine behavior depends on virtual time
//!   only through timer *order* (and day boundaries, which bounded
//!   worlds never cross), so fields holding absolute timestamps —
//!   fan-out instants, CPU-free marks, timer due times — are excluded.
//!   States that differ only by a clock translation collapse into one.
//! - **Deterministic iteration.** Every collection folded here is a
//!   `BTreeMap`/`BTreeSet` (a repo-wide convention), so byte order is a
//!   pure function of content, never of insertion history.
//!
//! The hash is FNV-1a over a length-delimited byte stream. It is a
//! search-pruning fingerprint, not a cryptographic commitment; a
//! collision costs completeness of the *search*, never soundness of a
//! reported counterexample (traces are replayed before being reported).

/// Streaming 64-bit FNV-1a hasher over a length-delimited encoding.
#[derive(Clone, Copy, Debug)]
pub struct Digest {
    hash: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Digest {
        Digest { hash: FNV_OFFSET }
    }

    /// Folds raw bytes (caller is responsible for length-delimiting
    /// variable-width runs; the typed writers below do it for you).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one `u64` (little-endian, fixed width).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a boolean as a full word.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Folds a string, length-delimited so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::Digest;

    #[test]
    fn digest_is_order_sensitive_and_length_delimited() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.write_u64(1);
        c.write_u64(2);
        let mut d = Digest::new();
        d.write_u64(2);
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn digest_is_deterministic() {
        let run = || {
            let mut d = Digest::new();
            d.write_str("sheriff");
            d.write_u64(42);
            d.write_bool(true);
            d.finish()
        };
        assert_eq!(run(), run());
    }
}
