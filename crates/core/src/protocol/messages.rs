//! The unified §3.2 protocol message set.
//!
//! One enum serves both backends: the discrete-event simulator carries
//! [`ProtoMsg`] values in memory, the TCP deployment serializes them as
//! internally-tagged JSON (`{"type": "coord_request", ...}`) inside
//! length-prefixed frames. This replaces the old parallel pair of
//! `system::Msg` (sim-only) and `wire::proto::WireMsg` (TCP-only),
//! which had already drifted apart.

use serde::{Deserialize, Serialize};

use sheriff_html::tagspath::TagsPath;
use sheriff_market::{CookieJar, ProductId};

use crate::coordinator::{JobId, PeerId};
use crate::doppelganger::DoppelgangerId;
use crate::measurement::VantageMeta;
use crate::protocol::{Address, Digest};
use crate::records::{PriceCheck, PriceObservation};

/// Every message of the §3.2 price-check protocol, plus the deployment
/// control plane (shutdown, server administration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ProtoMsg {
    /// User highlighted a price (injected at the initiating add-on).
    StartCheck {
        /// Retailer domain.
        domain: String,
        /// Product to check.
        product: ProductId,
        /// Initiator-local request tag.
        local_tag: u64,
    },
    /// Add-on → Coordinator (step 1).
    CoordRequest {
        /// Full product URL.
        url: String,
        /// Requesting peer.
        peer: PeerId,
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → add-on (step 2).
    CoordAssign {
        /// Minted job.
        job: JobId,
        /// Chosen Measurement server.
        server: Address,
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → add-on: request refused.
    CoordReject {
        /// Echoed tag.
        local_tag: u64,
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Coordinator → Measurement server (step 1.1).
    PpcList {
        /// Job the list belongs to.
        job: JobId,
        /// Same-location peers to ask.
        ppcs: Vec<Address>,
    },
    /// Add-on → Measurement server (step 3).
    JobSubmit {
        /// Job id.
        job: JobId,
        /// Retailer domain.
        domain: String,
        /// Product.
        product: ProductId,
        /// The Tags Path built at selection time.
        tags_path: TagsPath,
        /// The initiator's own page (DiffStorage base).
        initiator_html: String,
        /// The initiator's own observation.
        initiator_obs: Box<PriceObservation>,
    },
    /// Measurement server → proxy (steps 3.1/3.2).
    FetchOrder {
        /// Job id.
        job: JobId,
        /// Retailer domain.
        domain: String,
        /// Product.
        product: ProductId,
        /// Per-vantage request sequence (drives per-request A/B arms).
        seq: u64,
    },
    /// Proxy → Measurement server.
    FetchReply {
        /// Job id.
        job: JobId,
        /// Vantage metadata.
        meta: VantageMeta,
        /// Fetched HTML.
        html: String,
    },
    /// PPC → Aggregator (step 3.3).
    DoppIdRequest {
        /// Job the fetch belongs to.
        job: JobId,
        /// Requesting peer.
        peer: u64,
    },
    /// Aggregator → PPC.
    DoppIdReply {
        /// Job echo.
        job: JobId,
        /// The bearer token, if the peer is clustered.
        token: Option<DoppelgangerId>,
    },
    /// PPC → Coordinator (step 3.4, anonymized in deployment).
    DoppStateRequest {
        /// Job echo.
        job: JobId,
        /// Bearer token.
        token: DoppelgangerId,
        /// Domain the fetch targets (budget accounting).
        domain: String,
    },
    /// Coordinator → PPC.
    DoppStateReply {
        /// Job echo.
        job: JobId,
        /// Client-side state, if the token was valid.
        state: Option<CookieJar>,
    },
    /// Coordinator → Aggregator: a token rotated after regeneration.
    TokenRotated {
        /// Old token.
        old: DoppelgangerId,
        /// New token.
        new: DoppelgangerId,
    },
    /// Measurement server → Database server (step 4, v2 only).
    StoreCheck {
        /// Job id.
        job: JobId,
        /// The assembled check.
        check: Box<PriceCheck>,
    },
    /// Database server → Measurement server.
    DbAck {
        /// Job id.
        job: JobId,
    },
    /// Measurement server → Coordinator (Fig. 6 step 4).
    JobComplete {
        /// Finished job.
        job: JobId,
    },
    /// Measurement server → add-on (step 5).
    Results {
        /// Job id.
        job: JobId,
        /// The full result set (the Fig. 2 page's data).
        check: Box<PriceCheck>,
    },
    /// Measurement server → Coordinator liveness.
    Heartbeat {
        /// Index in the Coordinator's server list.
        server_index: usize,
    },
    /// Admin → Coordinator: decommission a Measurement server. The
    /// Coordinator refuses while the server's job queue is non-empty.
    RemoveServer {
        /// Index in the Coordinator's server list.
        index: usize,
    },
    /// Coordinator → admin: outcome of a [`ProtoMsg::RemoveServer`].
    ServerRemoved {
        /// Echoed index.
        index: usize,
        /// Whether the server was actually taken offline.
        removed: bool,
    },
    /// Measurement server → Coordinator: a peer crossed the local
    /// misbehavior threshold (see [`crate::protocol::defense`]). Rides
    /// the reliable channel so a lossy link cannot lose the escalation.
    MisbehaviorReport {
        /// The misbehaving peer.
        peer: u64,
        /// The reporting book's score at quarantine time.
        score: u32,
    },
    /// Coordinator → peer: the peer has been quarantined deployment-wide
    /// (its requests are refused and it is excluded from PPC lists until
    /// parole).
    QuarantineNotice {
        /// The quarantined peer (echoed so an add-on can display it).
        peer: u64,
    },
    /// At-least-once envelope: `inner` rides under a per-sender sequence
    /// number so the receiver can acknowledge and deduplicate retransmits
    /// (see [`crate::protocol::reliable`]).
    Reliable {
        /// Per-sender sequence number.
        seq: u64,
        /// The wrapped control message.
        inner: Box<ProtoMsg>,
    },
    /// Receiver → sender: a [`ProtoMsg::Reliable`] envelope arrived.
    Ack {
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Deployment control: stop the receiving node's event loop.
    Shutdown,
}

impl ProtoMsg {
    /// Folds the message's logical content into a model-checker state
    /// digest: a discriminant tag followed by every field,
    /// length-delimited (see [`crate::protocol::Digest`]).
    ///
    /// Structural rather than `Debug`-formatted on purpose — the model
    /// checker fingerprints every in-flight envelope on every explored
    /// transition, and formatting full messages dominated its profile.
    #[allow(clippy::too_many_lines)] // one arm per variant, all trivial
    pub fn fold_digest(&self, d: &mut Digest) {
        match self {
            ProtoMsg::StartCheck {
                domain,
                product,
                local_tag,
            } => {
                d.write_u64(0);
                d.write_str(domain);
                d.write_u64(u64::from(product.0));
                d.write_u64(*local_tag);
            }
            ProtoMsg::CoordRequest {
                url,
                peer,
                local_tag,
            } => {
                d.write_u64(1);
                d.write_str(url);
                d.write_u64(peer.0);
                d.write_u64(*local_tag);
            }
            ProtoMsg::CoordAssign {
                job,
                server,
                local_tag,
            } => {
                d.write_u64(2);
                d.write_u64(job.0);
                server.fold_digest(d);
                d.write_u64(*local_tag);
            }
            ProtoMsg::CoordReject { local_tag, reason } => {
                d.write_u64(3);
                d.write_u64(*local_tag);
                d.write_str(reason);
            }
            ProtoMsg::PpcList { job, ppcs } => {
                d.write_u64(4);
                d.write_u64(job.0);
                d.write_u64(ppcs.len() as u64);
                for p in ppcs {
                    p.fold_digest(d);
                }
            }
            ProtoMsg::JobSubmit {
                job,
                domain,
                product,
                tags_path,
                initiator_html,
                initiator_obs,
            } => {
                d.write_u64(5);
                d.write_u64(job.0);
                d.write_str(domain);
                d.write_u64(u64::from(product.0));
                fold_tags_path(tags_path, d);
                d.write_str(initiator_html);
                fold_observation(initiator_obs, d);
            }
            ProtoMsg::FetchOrder {
                job,
                domain,
                product,
                seq,
            } => {
                d.write_u64(6);
                d.write_u64(job.0);
                d.write_str(domain);
                d.write_u64(u64::from(product.0));
                d.write_u64(*seq);
            }
            ProtoMsg::FetchReply { job, meta, html } => {
                d.write_u64(7);
                d.write_u64(job.0);
                fold_vantage_meta(meta, d);
                d.write_str(html);
            }
            ProtoMsg::DoppIdRequest { job, peer } => {
                d.write_u64(8);
                d.write_u64(job.0);
                d.write_u64(*peer);
            }
            ProtoMsg::DoppIdReply { job, token } => {
                d.write_u64(9);
                d.write_u64(job.0);
                d.write_bool(token.is_some());
                if let Some(t) = token {
                    d.write_bytes(&t.0);
                }
            }
            ProtoMsg::DoppStateRequest { job, token, domain } => {
                d.write_u64(10);
                d.write_u64(job.0);
                d.write_bytes(&token.0);
                d.write_str(domain);
            }
            ProtoMsg::DoppStateReply { job, state } => {
                d.write_u64(11);
                d.write_u64(job.0);
                d.write_bool(state.is_some());
                if let Some(jar) = state {
                    // CookieJar keeps its store private and iterates
                    // deterministically (BTreeMap), so its Debug
                    // rendering is a stable, if slower, encoding. The
                    // variant never rides the checker's hot paths.
                    d.write_str(&format!("{jar:?}"));
                }
            }
            ProtoMsg::TokenRotated { old, new } => {
                d.write_u64(12);
                d.write_bytes(&old.0);
                d.write_bytes(&new.0);
            }
            ProtoMsg::StoreCheck { job, check } => {
                d.write_u64(13);
                d.write_u64(job.0);
                fold_check(check, d);
            }
            ProtoMsg::DbAck { job } => {
                d.write_u64(14);
                d.write_u64(job.0);
            }
            ProtoMsg::JobComplete { job } => {
                d.write_u64(15);
                d.write_u64(job.0);
            }
            ProtoMsg::Results { job, check } => {
                d.write_u64(16);
                d.write_u64(job.0);
                fold_check(check, d);
            }
            ProtoMsg::Heartbeat { server_index } => {
                d.write_u64(17);
                d.write_u64(*server_index as u64);
            }
            ProtoMsg::RemoveServer { index } => {
                d.write_u64(18);
                d.write_u64(*index as u64);
            }
            ProtoMsg::ServerRemoved { index, removed } => {
                d.write_u64(19);
                d.write_u64(*index as u64);
                d.write_bool(*removed);
            }
            ProtoMsg::MisbehaviorReport { peer, score } => {
                d.write_u64(20);
                d.write_u64(*peer);
                d.write_u64(u64::from(*score));
            }
            ProtoMsg::QuarantineNotice { peer } => {
                d.write_u64(21);
                d.write_u64(*peer);
            }
            ProtoMsg::Reliable { seq, inner } => {
                d.write_u64(22);
                d.write_u64(*seq);
                inner.fold_digest(d);
            }
            ProtoMsg::Ack { seq } => {
                d.write_u64(23);
                d.write_u64(*seq);
            }
            ProtoMsg::Shutdown => d.write_u64(24),
        }
    }
}

fn fold_tags_path(path: &TagsPath, d: &mut Digest) {
    d.write_u64(path.steps.len() as u64);
    for step in &path.steps {
        d.write_str(&step.name);
        d.write_bool(step.class.is_some());
        if let Some(c) = &step.class {
            d.write_str(c);
        }
        d.write_bool(step.id_attr.is_some());
        if let Some(i) = &step.id_attr {
            d.write_str(i);
        }
        d.write_u64(step.nth_of_name as u64);
    }
}

fn fold_vantage_meta(meta: &VantageMeta, d: &mut Digest) {
    d.write_u64(match meta.kind {
        crate::records::VantageKind::Initiator => 0,
        crate::records::VantageKind::Ipc => 1,
        crate::records::VantageKind::Ppc => 2,
    });
    d.write_u64(meta.id);
    d.write_u64(meta.country.index() as u64);
    d.write_bool(meta.city.is_some());
    if let Some(c) = &meta.city {
        d.write_str(c);
    }
    d.write_u64(u64::from(meta.ip.0));
}

fn fold_observation(obs: &PriceObservation, d: &mut Digest) {
    d.write_u64(match obs.vantage {
        crate::records::VantageKind::Initiator => 0,
        crate::records::VantageKind::Ipc => 1,
        crate::records::VantageKind::Ppc => 2,
    });
    d.write_u64(obs.vantage_id);
    d.write_u64(obs.country.index() as u64);
    d.write_bool(obs.city.is_some());
    if let Some(c) = &obs.city {
        d.write_str(c);
    }
    d.write_u64(u64::from(obs.ip.0));
    d.write_str(&obs.raw_text);
    d.write_str(&obs.currency);
    d.write_u64(obs.amount.to_bits());
    d.write_u64(obs.amount_eur.to_bits());
    d.write_bool(obs.low_confidence);
    d.write_bool(obs.failed);
}

fn fold_check(check: &PriceCheck, d: &mut Digest) {
    d.write_u64(check.job_id);
    d.write_str(&check.domain);
    d.write_str(&check.url);
    d.write_u64(u64::from(check.day));
    d.write_u64(check.observations.len() as u64);
    for obs in &check.observations {
        fold_observation(obs, d);
    }
}
