//! The unified §3.2 protocol message set.
//!
//! One enum serves both backends: the discrete-event simulator carries
//! [`ProtoMsg`] values in memory, the TCP deployment serializes them as
//! internally-tagged JSON (`{"type": "coord_request", ...}`) inside
//! length-prefixed frames. This replaces the old parallel pair of
//! `system::Msg` (sim-only) and `wire::proto::WireMsg` (TCP-only),
//! which had already drifted apart.

use serde::{Deserialize, Serialize};

use sheriff_html::tagspath::TagsPath;
use sheriff_market::{CookieJar, ProductId};

use crate::coordinator::{JobId, PeerId};
use crate::doppelganger::DoppelgangerId;
use crate::measurement::VantageMeta;
use crate::protocol::Address;
use crate::records::{PriceCheck, PriceObservation};

/// Every message of the §3.2 price-check protocol, plus the deployment
/// control plane (shutdown, server administration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ProtoMsg {
    /// User highlighted a price (injected at the initiating add-on).
    StartCheck {
        /// Retailer domain.
        domain: String,
        /// Product to check.
        product: ProductId,
        /// Initiator-local request tag.
        local_tag: u64,
    },
    /// Add-on → Coordinator (step 1).
    CoordRequest {
        /// Full product URL.
        url: String,
        /// Requesting peer.
        peer: PeerId,
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → add-on (step 2).
    CoordAssign {
        /// Minted job.
        job: JobId,
        /// Chosen Measurement server.
        server: Address,
        /// Echoed tag.
        local_tag: u64,
    },
    /// Coordinator → add-on: request refused.
    CoordReject {
        /// Echoed tag.
        local_tag: u64,
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Coordinator → Measurement server (step 1.1).
    PpcList {
        /// Job the list belongs to.
        job: JobId,
        /// Same-location peers to ask.
        ppcs: Vec<Address>,
    },
    /// Add-on → Measurement server (step 3).
    JobSubmit {
        /// Job id.
        job: JobId,
        /// Retailer domain.
        domain: String,
        /// Product.
        product: ProductId,
        /// The Tags Path built at selection time.
        tags_path: TagsPath,
        /// The initiator's own page (DiffStorage base).
        initiator_html: String,
        /// The initiator's own observation.
        initiator_obs: Box<PriceObservation>,
    },
    /// Measurement server → proxy (steps 3.1/3.2).
    FetchOrder {
        /// Job id.
        job: JobId,
        /// Retailer domain.
        domain: String,
        /// Product.
        product: ProductId,
        /// Per-vantage request sequence (drives per-request A/B arms).
        seq: u64,
    },
    /// Proxy → Measurement server.
    FetchReply {
        /// Job id.
        job: JobId,
        /// Vantage metadata.
        meta: VantageMeta,
        /// Fetched HTML.
        html: String,
    },
    /// PPC → Aggregator (step 3.3).
    DoppIdRequest {
        /// Job the fetch belongs to.
        job: JobId,
        /// Requesting peer.
        peer: u64,
    },
    /// Aggregator → PPC.
    DoppIdReply {
        /// Job echo.
        job: JobId,
        /// The bearer token, if the peer is clustered.
        token: Option<DoppelgangerId>,
    },
    /// PPC → Coordinator (step 3.4, anonymized in deployment).
    DoppStateRequest {
        /// Job echo.
        job: JobId,
        /// Bearer token.
        token: DoppelgangerId,
        /// Domain the fetch targets (budget accounting).
        domain: String,
    },
    /// Coordinator → PPC.
    DoppStateReply {
        /// Job echo.
        job: JobId,
        /// Client-side state, if the token was valid.
        state: Option<CookieJar>,
    },
    /// Coordinator → Aggregator: a token rotated after regeneration.
    TokenRotated {
        /// Old token.
        old: DoppelgangerId,
        /// New token.
        new: DoppelgangerId,
    },
    /// Measurement server → Database server (step 4, v2 only).
    StoreCheck {
        /// Job id.
        job: JobId,
        /// The assembled check.
        check: Box<PriceCheck>,
    },
    /// Database server → Measurement server.
    DbAck {
        /// Job id.
        job: JobId,
    },
    /// Measurement server → Coordinator (Fig. 6 step 4).
    JobComplete {
        /// Finished job.
        job: JobId,
    },
    /// Measurement server → add-on (step 5).
    Results {
        /// Job id.
        job: JobId,
        /// The full result set (the Fig. 2 page's data).
        check: Box<PriceCheck>,
    },
    /// Measurement server → Coordinator liveness.
    Heartbeat {
        /// Index in the Coordinator's server list.
        server_index: usize,
    },
    /// Admin → Coordinator: decommission a Measurement server. The
    /// Coordinator refuses while the server's job queue is non-empty.
    RemoveServer {
        /// Index in the Coordinator's server list.
        index: usize,
    },
    /// Coordinator → admin: outcome of a [`ProtoMsg::RemoveServer`].
    ServerRemoved {
        /// Echoed index.
        index: usize,
        /// Whether the server was actually taken offline.
        removed: bool,
    },
    /// Measurement server → Coordinator: a peer crossed the local
    /// misbehavior threshold (see [`crate::protocol::defense`]). Rides
    /// the reliable channel so a lossy link cannot lose the escalation.
    MisbehaviorReport {
        /// The misbehaving peer.
        peer: u64,
        /// The reporting book's score at quarantine time.
        score: u32,
    },
    /// Coordinator → peer: the peer has been quarantined deployment-wide
    /// (its requests are refused and it is excluded from PPC lists until
    /// parole).
    QuarantineNotice {
        /// The quarantined peer (echoed so an add-on can display it).
        peer: u64,
    },
    /// At-least-once envelope: `inner` rides under a per-sender sequence
    /// number so the receiver can acknowledge and deduplicate retransmits
    /// (see [`crate::protocol::reliable`]).
    Reliable {
        /// Per-sender sequence number.
        seq: u64,
        /// The wrapped control message.
        inner: Box<ProtoMsg>,
    },
    /// Receiver → sender: a [`ProtoMsg::Reliable`] envelope arrived.
    Ack {
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Deployment control: stop the receiving node's event loop.
    Shutdown,
}
