//! The §3.2 price-check protocol as transport-agnostic (sans-IO) state
//! machines.
//!
//! Every system role — Coordinator, Aggregator, Measurement server,
//! Database server, IPC, PPC/add-on — is a plain struct that consumes
//! typed input events (`on_message` / `on_timer`) and emits
//! [`Output`] commands: `(destination, message)` pairs plus timer
//! requests. The machines know nothing about the netsim simulator or
//! TCP sockets; `core::system` drives them over the discrete-event
//! simulator and `sheriff_wire::deploy` drives the *same* machines over
//! framed TCP, so protocol semantics (job assignment, fan-out,
//! pollution budgets, doppelganger redemption) cannot drift between
//! backends.
//!
//! Destinations are logical [`Address`]es; each backend owns the
//! mapping to its transport endpoints (netsim `NodeId`s, socket
//! addresses). Time enters as plain milliseconds: virtual [`SimTime`]
//! on the DES, elapsed wall-clock on TCP. Randomness enters as an
//! explicit `&mut StdRng` owned by the driver, which keeps DES runs
//! seed-deterministic.
//!
//! [`SimTime`]: sheriff_netsim::SimTime

use serde::{Deserialize, Serialize};

use crate::coordinator::JobId;

mod aggregator;
mod coordinator;
mod database;
pub mod defense;
pub mod digest;
mod ipc;
mod measurement;
pub mod messages;
mod peer;
pub mod reliable;

pub use aggregator::AggregatorProto;
pub use coordinator::CoordinatorProto;
pub use database::{DbEvent, DbProto};
pub use defense::{
    defense_key, DefenseAction, DefenseBook, DefenseParams, DefenseTotals, Standing, IPC_KEY_BASE,
};
pub use digest::Digest;
pub use ipc::IpcProto;
pub use measurement::{MeasEvent, MeasurementParams, MeasurementProto};
pub use messages::ProtoMsg;
pub use peer::{CompletedProtoCheck, PeerProto};
pub use reliable::{Channel, ReliableConfig};

/// Logical destination of a protocol message, independent of transport.
///
/// Struct variants throughout: the vendored serde derive supports only
/// unit and struct variants inside internally-tagged enums.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(tag = "role", rename_all = "snake_case")]
pub enum Address {
    /// The Coordinator (one per deployment).
    Coordinator,
    /// The Aggregator (one per deployment).
    Aggregator,
    /// The dedicated Database server (v2 only).
    Database,
    /// Measurement server `index` (the Coordinator's server-list index).
    Server {
        /// Index in the Coordinator's server list.
        index: usize,
    },
    /// Infrastructure Proxy Client `index`.
    Ipc {
        /// Index into the configured IPC locations.
        index: usize,
    },
    /// PPC / browser add-on of peer `id`.
    Peer {
        /// Stable peer id.
        id: u64,
    },
}

impl Address {
    /// Folds the address into a model-checker state digest as a
    /// discriminant tag plus the scoping id (see [`digest::Digest`]).
    pub fn fold_digest(self, d: &mut Digest) {
        match self {
            Address::Coordinator => d.write_u64(0),
            Address::Aggregator => d.write_u64(1),
            Address::Database => d.write_u64(2),
            Address::Server { index } => {
                d.write_u64(3);
                d.write_u64(index as u64);
            }
            Address::Ipc { index } => {
                d.write_u64(4);
                d.write_u64(index as u64);
            }
            Address::Peer { id } => {
                d.write_u64(5);
                d.write_u64(id);
            }
        }
    }
}

/// A timer a state machine asked its driver to arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// Give-up deadline for a job's outstanding fetches.
    JobDeadline(JobId),
    /// Modeled extraction/assembly CPU time elapsed.
    ProcDone(JobId),
    /// Modeled database store time elapsed.
    DbDone(JobId),
    /// Periodic Measurement-server liveness beacon.
    Heartbeat,
    /// Retransmission check for an unacknowledged reliable sequence
    /// number (see [`reliable::Channel`]).
    Retransmit(u64),
    /// Periodic Coordinator sweep: expire lapsed heartbeats and requeue
    /// jobs stuck on offline servers.
    CoordSweep,
    /// A peer's quarantine ends (moves to parole); scoped by peer id
    /// (see [`defense::DefenseBook`]).
    Quarantine(u64),
    /// A peer's parole ends (full reinstatement when clean); scoped by
    /// peer id.
    Parole(u64),
}

const TIMER_DEADLINE: u64 = 0;
const TIMER_PROC_DONE: u64 = 1;
const TIMER_DB_DONE: u64 = 2;
const TIMER_HEARTBEAT: u64 = 3;
const TIMER_RETRANSMIT: u64 = 4;
const TIMER_COORD_SWEEP: u64 = 5;
const TIMER_QUARANTINE: u64 = 6;
const TIMER_PAROLE: u64 = 7;

impl TimerKind {
    /// Packs the timer into the u64 token space drivers carry
    /// (`scope * 8 + kind`, where scope is the job id or reliable seq;
    /// bare tokens 3 and 5 are the scope-free heartbeat and sweep —
    /// collision-free because `JobId`s start at 1 and no job-scoped
    /// kind shares their residues).
    pub fn token(self) -> u64 {
        match self {
            TimerKind::JobDeadline(job) => job.0 * 8 + TIMER_DEADLINE,
            TimerKind::ProcDone(job) => job.0 * 8 + TIMER_PROC_DONE,
            TimerKind::DbDone(job) => job.0 * 8 + TIMER_DB_DONE,
            TimerKind::Heartbeat => TIMER_HEARTBEAT,
            TimerKind::Retransmit(seq) => seq * 8 + TIMER_RETRANSMIT,
            TimerKind::CoordSweep => TIMER_COORD_SWEEP,
            TimerKind::Quarantine(peer) => peer * 8 + TIMER_QUARANTINE,
            TimerKind::Parole(peer) => peer * 8 + TIMER_PAROLE,
        }
    }

    /// Inverse of [`TimerKind::token`]. Unknown kinds map to `None`;
    /// drivers must count those (`protocol.unknown_timers`) rather than
    /// drop them silently.
    pub fn from_token(token: u64) -> Option<TimerKind> {
        if token == TIMER_HEARTBEAT {
            return Some(TimerKind::Heartbeat);
        }
        if token == TIMER_COORD_SWEEP {
            return Some(TimerKind::CoordSweep);
        }
        let scope = token / 8;
        match token % 8 {
            TIMER_DEADLINE => Some(TimerKind::JobDeadline(JobId(scope))),
            TIMER_PROC_DONE => Some(TimerKind::ProcDone(JobId(scope))),
            TIMER_DB_DONE => Some(TimerKind::DbDone(JobId(scope))),
            TIMER_RETRANSMIT => Some(TimerKind::Retransmit(scope)),
            TIMER_QUARANTINE => Some(TimerKind::Quarantine(scope)),
            TIMER_PAROLE => Some(TimerKind::Parole(scope)),
            _ => None,
        }
    }
}

/// One command a state machine hands back to its driver.
#[derive(Debug)]
pub enum Output {
    /// Deliver `msg` to `to` over the transport.
    Send {
        /// Logical destination.
        to: Address,
        /// Payload.
        msg: ProtoMsg,
    },
    /// Deliver the result of a page fetch: the transport incurs (DES:
    /// samples; TCP: actually spends) the proxy fetch latency first.
    SendFetched {
        /// Logical destination.
        to: Address,
        /// Payload (always a `FetchReply`).
        msg: ProtoMsg,
    },
    /// Arm a timer that fires back into `on_timer` after `delay_ms`.
    Timer {
        /// Delay in (virtual or real) milliseconds.
        delay_ms: u64,
        /// Which timer.
        kind: TimerKind,
    },
}

impl Output {
    /// Shorthand for [`Output::Send`].
    pub fn send(to: Address, msg: ProtoMsg) -> Output {
        Output::Send { to, msg }
    }
}

/// Day index derived from a millisecond clock (§6's study calendar).
pub fn day_of_ms(now_ms: u64) -> u32 {
    (now_ms / 86_400_000) as u32
}

/// Quarter-of-day index derived from a millisecond clock.
pub fn quarter_of_ms(now_ms: u64) -> u8 {
    ((now_ms % 86_400_000) / 21_600_000) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tokens_round_trip() {
        let kinds = [
            TimerKind::JobDeadline(JobId(1)),
            TimerKind::ProcDone(JobId(7)),
            TimerKind::DbDone(JobId(123)),
            TimerKind::Heartbeat,
            TimerKind::Retransmit(0),
            TimerKind::Retransmit(9_999),
            TimerKind::CoordSweep,
            TimerKind::Quarantine(100),
            TimerKind::Parole(107),
        ];
        for k in kinds {
            assert_eq!(TimerKind::from_token(k.token()), Some(k));
        }
        // All eight residues are assigned now (6/7 went to the defense
        // layer's quarantine/parole timers in peer-id scope).
        assert_eq!(TimerKind::from_token(14), Some(TimerKind::Quarantine(1)));
        assert_eq!(TimerKind::from_token(15), Some(TimerKind::Parole(1)));
    }

    #[test]
    fn scoped_tokens_never_collide_with_bare_tokens() {
        // Bare tokens 3 (heartbeat) and 5 (sweep) sit below every scoped
        // token: jobs start at 1 and retransmit seqs use residue 4.
        for job in 1..100 {
            for k in [
                TimerKind::JobDeadline(JobId(job)),
                TimerKind::ProcDone(JobId(job)),
                TimerKind::DbDone(JobId(job)),
            ] {
                assert!(k.token() > TIMER_COORD_SWEEP);
            }
        }
        for seq in 0..100 {
            let t = TimerKind::Retransmit(seq).token();
            assert_ne!(t, TIMER_HEARTBEAT);
            assert_ne!(t, TIMER_COORD_SWEEP);
        }
    }

    #[test]
    fn address_serde_round_trips() {
        for a in [
            Address::Coordinator,
            Address::Aggregator,
            Address::Database,
            Address::Server { index: 3 },
            Address::Ipc { index: 17 },
            Address::Peer { id: 42 },
        ] {
            let v = serde::Serialize::to_value(&a);
            assert_eq!(<Address as serde::Deserialize>::from_value(&v), Ok(a));
        }
    }
}
