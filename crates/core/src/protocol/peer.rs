//! PPC / browser-add-on role: initiating price checks, serving remote
//! fetches under the pollution budget, doppelganger redemption.

use std::collections::BTreeMap;

use sheriff_html::tagspath::TagsPath;
use sheriff_html::Document;
use sheriff_market::{CookieJar, ProductId, World};

use crate::coordinator::{JobId, PeerId};
use crate::measurement::{process_response, VantageMeta};
use crate::pollution::FetchMode;
use crate::protocol::{day_of_ms, quarter_of_ms, Address, Output, ProtoMsg};
use crate::proxy::PpcEngine;
use crate::records::{PriceCheck, VantageKind};

/// A completed price check as recorded by the initiating add-on.
#[derive(Clone, Debug)]
pub struct CompletedProtoCheck {
    /// The result set.
    pub check: PriceCheck,
    /// Initiator-local request tag.
    pub local_tag: u64,
    /// Millisecond time the user clicked.
    pub submitted_ms: u64,
    /// Millisecond time the result page finished.
    pub completed_ms: u64,
}

struct PendingFetch {
    reply_to: Address,
    domain: String,
    product: ProductId,
    seq: u64,
}

/// The PPC / browser add-on as a sans-IO state machine.
pub struct PeerProto {
    /// Browser state, pollution ledger, identity.
    pub engine: PpcEngine,
    /// City label for observations, when known.
    pub city: Option<String>,
    /// Currency of the result page.
    pub target_currency: String,
    /// Ask for doppelganger state when over budget.
    pub doppelgangers_enabled: bool,
    /// Own requests in flight: local_tag → (domain, product, submitted_ms).
    /// `BTreeMap` throughout this struct: command emission order must be
    /// seed-pure, so no hash-ordered container may feed it.
    own_pending: BTreeMap<u64, (String, ProductId, u64)>,
    /// Jobs assigned: job → local_tag (to find submit data).
    job_tags: BTreeMap<JobId, u64>,
    /// Remote fetches waiting on doppelganger state.
    dopp_pending: BTreeMap<JobId, PendingFetch>,
    /// Completed own checks, in completion order.
    pub completed: Vec<CompletedProtoCheck>,
    /// Rejected own checks: (local_tag, reason).
    pub rejected: Vec<(u64, String)>,
    /// `ServerRemoved` acks observed (when this peer plays admin).
    pub server_removals: Vec<(usize, bool)>,
    /// Sandbox failures observed while serving (must stay 0).
    pub sandbox_violations: usize,
    /// Remote fetches served per mode: [clean, real-state, doppelganger].
    pub fetches_by_mode: [u64; 3],
    /// Quarantine notices received from the Coordinator (the add-on
    /// surfaces these to the user).
    pub quarantine_notices: Vec<u64>,
}

impl PeerProto {
    /// Wraps a configured engine.
    pub fn new(
        engine: PpcEngine,
        city: Option<String>,
        target_currency: String,
        doppelgangers_enabled: bool,
    ) -> Self {
        PeerProto {
            engine,
            city,
            target_currency,
            doppelgangers_enabled,
            own_pending: BTreeMap::new(),
            job_tags: BTreeMap::new(),
            dopp_pending: BTreeMap::new(),
            completed: Vec::new(),
            rejected: Vec::new(),
            server_removals: Vec::new(),
            sandbox_violations: 0,
            fetches_by_mode: [0; 3],
            quarantine_notices: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the FetchOrder fields
    fn serve_fetch(
        &mut self,
        now_ms: u64,
        job: JobId,
        reply_to: Address,
        domain: &str,
        product: ProductId,
        seq: u64,
        dopp_state: Option<&CookieJar>,
        world: &mut World,
        out: &mut Vec<Output>,
    ) {
        let day = day_of_ms(now_ms);
        let quarter = quarter_of_ms(now_ms);
        let Some(fetch) = self.engine.remote_fetch(
            world, domain, product, day, quarter, now_ms, seq, dopp_state,
        ) else {
            return;
        };
        if fetch.sandbox.is_some_and(|r| !r.is_clean()) {
            self.sandbox_violations += 1;
        }
        let slot = match fetch.mode {
            FetchMode::CleanOwnState => 0,
            FetchMode::RealOwnState => 1,
            FetchMode::Doppelganger => 2,
        };
        if let Some(count) = self.fetches_by_mode.get_mut(slot) {
            *count += 1;
        }
        let meta = VantageMeta {
            kind: VantageKind::Ppc,
            id: self.engine.peer_id,
            country: self.engine.country,
            city: self.city.clone(),
            ip: self.engine.ip,
        };
        out.push(Output::SendFetched {
            to: reply_to,
            msg: ProtoMsg::FetchReply {
                job,
                meta,
                html: fetch.html,
            },
        });
    }

    /// The reliable channel exhausted its retransmit budget for `msg`
    /// and will never deliver it. Release whatever bookkeeping was
    /// pinned on that send — otherwise a sustained partition leaves
    /// `own_pending`/`job_tags`/`dopp_pending` entries behind forever
    /// (the leak the routing-matrix audit surfaced).
    pub fn on_send_abandoned(&mut self, msg: &ProtoMsg) {
        match msg {
            // The initial request never reached the coordinator: the
            // check is over before it began.
            ProtoMsg::CoordRequest { local_tag, .. } => {
                let Some(_slot) = self.own_pending.remove(local_tag) else {
                    return;
                };
                self.rejected
                    .push((*local_tag, "coordinator unreachable".to_string()));
            }
            // The submission never reached the measurement server: the
            // coordinator will expire the job on its own deadline, but
            // the local slot must not wait for that.
            ProtoMsg::JobSubmit { job, .. } => {
                if let Some(tag) = self.job_tags.remove(job) {
                    if self.own_pending.remove(&tag).is_some() {
                        self.rejected
                            .push((tag, "measurement server unreachable".to_string()));
                    }
                }
            }
            // A doppelganger lookup died in flight: the fetch it was
            // blocking can never be served, so drop the slot.
            ProtoMsg::DoppIdRequest { job, .. } | ProtoMsg::DoppStateRequest { job, .. } => {
                self.dopp_pending.remove(job);
            }
            _ => {}
        }
    }

    /// In-flight bookkeeping sizes:
    /// `(own_pending, job_tags, dopp_pending)`. Leak regression tests
    /// assert these drain back to zero.
    pub fn pending_counts(&self) -> (usize, usize, usize) {
        (
            self.own_pending.len(),
            self.job_tags.len(),
            self.dopp_pending.len(),
        )
    }

    /// Feeds one delivered message.
    #[allow(clippy::too_many_lines)] // one arm per protocol step
    pub fn on_message(
        &mut self,
        now_ms: u64,
        from: Address,
        msg: ProtoMsg,
        world: &mut World,
        out: &mut Vec<Output>,
    ) {
        match msg {
            ProtoMsg::StartCheck {
                domain,
                product,
                local_tag,
            } => {
                self.own_pending
                    .insert(local_tag, (domain.clone(), product, now_ms));
                let url = format!("{domain}/product/{}", product.0);
                out.push(Output::send(
                    Address::Coordinator,
                    ProtoMsg::CoordRequest {
                        url,
                        peer: PeerId(self.engine.peer_id),
                        local_tag,
                    },
                ));
            }
            ProtoMsg::CoordAssign {
                job,
                server,
                local_tag,
            } => {
                // Any failure to produce a selection (CAPTCHA on the
                // initiator's own fetch, vanished product page) must
                // release the job at the Coordinator, or its pending
                // counter would leak (§10.3's corrective concern).
                let abort = |me: &mut Self, out: &mut Vec<Output>| {
                    me.own_pending.remove(&local_tag);
                    me.job_tags.remove(&job);
                    out.push(Output::send(
                        Address::Coordinator,
                        ProtoMsg::JobComplete { job },
                    ));
                };
                let Some((domain, product, _)) = self.own_pending.get(&local_tag).cloned() else {
                    out.push(Output::send(
                        Address::Coordinator,
                        ProtoMsg::JobComplete { job },
                    ));
                    return;
                };
                self.job_tags.insert(job, local_tag);
                // The user is on the page: fetch it as a real visit, select
                // the price, build the Tags Path (Fig. 4).
                let day = day_of_ms(now_ms);
                let quarter = quarter_of_ms(now_ms);
                let Some(html) = self.engine.initiator_fetch(
                    world,
                    &domain,
                    product,
                    day,
                    quarter,
                    now_ms,
                    job.0 * 100,
                ) else {
                    abort(self, out);
                    return;
                };
                let template = world.retailer(&domain).map_or(0, |r| r.template);
                let selection_el = sheriff_market::page::price_markup(template);
                let doc = Document::parse(&html);
                let Some(el) = doc.find_by_class(selection_el.0, selection_el.1) else {
                    abort(self, out);
                    return;
                };
                let Some(tags_path) = TagsPath::from_node(&doc, el) else {
                    abort(self, out);
                    return;
                };
                let meta = VantageMeta {
                    kind: VantageKind::Initiator,
                    id: self.engine.peer_id,
                    country: self.engine.country,
                    city: self.city.clone(),
                    ip: self.engine.ip,
                };
                let obs = process_response(
                    &html,
                    &tags_path,
                    &meta,
                    &self.target_currency,
                    &world.rates.clone(),
                );
                out.push(Output::send(
                    server,
                    ProtoMsg::JobSubmit {
                        job,
                        domain,
                        product,
                        tags_path,
                        initiator_html: html,
                        initiator_obs: Box::new(obs),
                    },
                ));
            }
            ProtoMsg::CoordReject { local_tag, reason } => {
                self.own_pending.remove(&local_tag);
                self.rejected.push((local_tag, reason));
            }
            ProtoMsg::FetchOrder {
                job,
                domain,
                product,
                seq,
            } => {
                let needs_dopp = self.doppelgangers_enabled
                    && self.engine.peek_mode(&domain) == FetchMode::Doppelganger;
                if needs_dopp {
                    self.dopp_pending.insert(
                        job,
                        PendingFetch {
                            reply_to: from,
                            domain: domain.clone(),
                            product,
                            seq,
                        },
                    );
                    out.push(Output::send(
                        Address::Aggregator,
                        ProtoMsg::DoppIdRequest {
                            job,
                            peer: self.engine.peer_id,
                        },
                    ));
                } else {
                    self.serve_fetch(now_ms, job, from, &domain, product, seq, None, world, out);
                }
            }
            ProtoMsg::DoppIdReply { job, token } => match (token, self.dopp_pending.get(&job)) {
                (Some(token), Some(p)) => {
                    let domain = p.domain.clone();
                    out.push(Output::send(
                        Address::Coordinator,
                        ProtoMsg::DoppStateRequest { job, token, domain },
                    ));
                }
                (None, Some(_)) => {
                    // Unclustered peer: fall back to a clean sandboxed fetch.
                    if let Some(p) = self.dopp_pending.remove(&job) {
                        self.serve_fetch(
                            now_ms,
                            job,
                            p.reply_to,
                            &p.domain.clone(),
                            p.product,
                            p.seq,
                            None,
                            world,
                            out,
                        );
                    }
                }
                _ => {}
            },
            ProtoMsg::DoppStateReply { job, state } => {
                if let Some(p) = self.dopp_pending.remove(&job) {
                    self.serve_fetch(
                        now_ms,
                        job,
                        p.reply_to,
                        &p.domain.clone(),
                        p.product,
                        p.seq,
                        state.as_ref(),
                        world,
                        out,
                    );
                }
            }
            ProtoMsg::Results { job, check } => {
                if let Some(tag) = self.job_tags.remove(&job) {
                    if let Some((_, _, submitted_ms)) = self.own_pending.remove(&tag) {
                        self.completed.push(CompletedProtoCheck {
                            check: *check,
                            local_tag: tag,
                            submitted_ms,
                            completed_ms: now_ms,
                        });
                    }
                }
            }
            ProtoMsg::ServerRemoved { index, removed } => {
                self.server_removals.push((index, removed));
            }
            ProtoMsg::QuarantineNotice { peer } => {
                self.quarantine_notices.push(peer);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use sheriff_geo::{Country, IpAllocator};
    use sheriff_market::pricing::{Browser, Os};
    use sheriff_market::world::WorldConfig;
    use sheriff_market::UserAgent;

    use super::*;
    use crate::browser::BrowserProfile;
    use crate::pollution::PollutionLedger;

    fn peer() -> PeerProto {
        let mut alloc = IpAllocator::new();
        let engine = PpcEngine {
            peer_id: 7,
            browser: BrowserProfile::new(),
            ledger: PollutionLedger::new(),
            ip: alloc.allocate(Country::ES, 0),
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: Os::Windows,
                browser: Browser::Chrome,
            },
            affluence: 0.5,
            logged_in_domains: vec![],
        };
        PeerProto::new(engine, None, "EUR".to_string(), true)
    }

    #[test]
    fn abandoned_coord_request_releases_the_pending_check() {
        // Regression for the retransmit give-up leak: before the channel
        // reported abandoned sends, a peer whose CoordRequest died under a
        // partition kept the own_pending slot forever.
        let mut world = World::build(&WorldConfig::small(), 11);
        let mut p = peer();
        let mut out = Vec::new();
        p.on_message(
            0,
            Address::Peer { id: 7 },
            ProtoMsg::StartCheck {
                domain: "jcpenney.com".to_string(),
                product: ProductId(1),
                local_tag: 42,
            },
            &mut world,
            &mut out,
        );
        assert_eq!(p.pending_counts(), (1, 0, 0));
        let sent = out
            .iter()
            .find_map(|o| match o {
                Output::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .expect("StartCheck emits a CoordRequest");
        assert!(matches!(sent, ProtoMsg::CoordRequest { .. }));

        p.on_send_abandoned(&sent);
        assert_eq!(p.pending_counts(), (0, 0, 0));
        assert_eq!(p.rejected.len(), 1);
        assert!(p.rejected[0].1.contains("unreachable"), "{:?}", p.rejected);
    }

    #[test]
    fn abandoned_dopp_lookup_drops_the_blocked_fetch_slot() {
        let mut p = peer();
        p.dopp_pending.insert(
            JobId(3),
            PendingFetch {
                reply_to: Address::Server { index: 0 },
                domain: "jcpenney.com".to_string(),
                product: ProductId(1),
                seq: 0,
            },
        );
        p.on_send_abandoned(&ProtoMsg::DoppIdRequest {
            job: JobId(3),
            peer: 7,
        });
        assert_eq!(p.pending_counts(), (0, 0, 0));
    }

    #[test]
    fn abandoned_unrelated_message_is_a_noop() {
        let mut p = peer();
        p.on_send_abandoned(&ProtoMsg::Shutdown);
        assert_eq!(p.pending_counts(), (0, 0, 0));
        assert!(p.rejected.is_empty());
    }
}
