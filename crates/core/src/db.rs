//! The Database server (paper §3.1.1, §10.2.1) and its cost model.
//!
//! The v1 $heriff ran an RDBMS *inside* each Measurement server — the
//! bottleneck Table 1 quantifies; v2 moved to a single dedicated server
//! with tuned connection-thread pools and stored procedures. The storage
//! itself here is an in-memory table; the [`DbCostModel`] prices each
//! check's writes under concurrency so the `system` module can reproduce
//! the old-vs-new response-time contrast.

use crate::records::PriceCheck;

/// Where the RDBMS runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbDeployment {
    /// v1: integrated into the Measurement server — untuned, effectively
    /// one connection, competing with the server's own CPU.
    Integrated,
    /// v2: dedicated host, tuned (connection threads kept in memory,
    /// stored procedures, OS tweaks).
    Dedicated,
}

/// Pricing of database work.
#[derive(Clone, Copy, Debug)]
pub struct DbCostModel {
    /// Deployment flavor.
    pub deployment: DbDeployment,
    /// Base service time per row write, ms.
    pub write_ms: f64,
    /// Connection threads available.
    pub connection_threads: u32,
    /// Extra per-connection setup cost (v1 re-creates connections; v2
    /// keeps them in memory), ms.
    pub connection_setup_ms: f64,
    /// Write-ahead-log append cost per observation row, ms (sequential
    /// I/O, so much cheaper than the indexed table write).
    pub wal_append_ms_per_row: f64,
    /// Cost of one durability barrier (the fsync-equivalent), ms.
    pub barrier_ms: f64,
    /// Compaction I/O per stored check when a snapshot is installed, ms.
    pub compaction_ms_per_check: f64,
}

impl DbCostModel {
    /// The v1 integrated configuration.
    pub fn integrated() -> Self {
        DbCostModel {
            deployment: DbDeployment::Integrated,
            write_ms: 110.0,
            connection_threads: 1,
            connection_setup_ms: 220.0,
            wal_append_ms_per_row: 4.0,
            barrier_ms: 30.0,
            compaction_ms_per_check: 6.0,
        }
    }

    /// The v2 dedicated/tuned configuration (battery-backed write cache,
    /// so the barrier is cheap).
    pub fn dedicated() -> Self {
        DbCostModel {
            deployment: DbDeployment::Dedicated,
            write_ms: 18.0,
            connection_threads: 8,
            connection_setup_ms: 0.0,
            wal_append_ms_per_row: 0.5,
            barrier_ms: 8.0,
            compaction_ms_per_check: 1.5,
        }
    }

    /// Milliseconds to persist a check of `rows` rows while `concurrent`
    /// other connections are active: writes serialize once concurrency
    /// exceeds the thread pool.
    pub fn store_cost_ms(&self, rows: usize, concurrent: u32) -> u64 {
        let queueing = f64::from(concurrent.max(1))
            .div_euclid(f64::from(self.connection_threads))
            .max(1.0);
        let cost = self.connection_setup_ms + rows as f64 * self.write_ms * queueing;
        cost.round() as u64
    }

    /// Milliseconds to append a `rows`-row check to the write-ahead log
    /// (sequential, unaffected by connection-pool queueing).
    pub fn wal_cost_ms(&self, rows: usize) -> u64 {
        (rows as f64 * self.wal_append_ms_per_row).round() as u64
    }

    /// Milliseconds for one durability barrier (fsync-equivalent).
    pub fn barrier_cost_ms(&self) -> u64 {
        self.barrier_ms.round() as u64
    }

    /// Milliseconds to fold `checks` stored checks into a snapshot and
    /// truncate the log.
    pub fn compaction_cost_ms(&self, checks: usize) -> u64 {
        (checks as f64 * self.compaction_ms_per_check).round() as u64
    }
}

/// The in-memory database: every stored price check, queryable the way the
/// analyses need.
#[derive(Debug, Default)]
pub struct Database {
    checks: Vec<PriceCheck>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a completed check (the Fig. 1 step-4 write).
    pub fn store(&mut self, check: PriceCheck) {
        self.checks.push(check);
    }

    /// All checks.
    pub fn checks(&self) -> &[PriceCheck] {
        &self.checks
    }

    /// Checks against one domain.
    pub fn checks_for_domain(&self, domain: &str) -> Vec<&PriceCheck> {
        self.checks.iter().filter(|c| c.domain == domain).collect()
    }

    /// Distinct domains seen.
    pub fn distinct_domains(&self) -> usize {
        let mut domains: Vec<&str> = self.checks.iter().map(|c| c.domain.as_str()).collect();
        domains.sort_unstable();
        domains.dedup();
        domains.len()
    }

    /// Distinct (domain, url) products seen.
    pub fn distinct_products(&self) -> usize {
        let mut products: Vec<(&str, &str)> = self
            .checks
            .iter()
            .map(|c| (c.domain.as_str(), c.url.as_str()))
            .collect();
        products.sort_unstable();
        products.dedup();
        products.len()
    }

    /// Total observation rows stored (the paper's "responses").
    pub fn total_observations(&self) -> usize {
        self.checks.iter().map(|c| c.observations.len()).sum()
    }

    /// Number of stored checks.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{PriceObservation, VantageKind};
    use sheriff_geo::{Country, IpV4};

    fn check(domain: &str, url: &str, n_obs: usize) -> PriceCheck {
        PriceCheck {
            job_id: 1,
            domain: domain.into(),
            url: url.into(),
            day: 0,
            observations: (0..n_obs)
                .map(|i| PriceObservation {
                    vantage: VantageKind::Ipc,
                    vantage_id: i as u64,
                    country: Country::ES,
                    city: None,
                    ip: IpV4(i as u32),
                    raw_text: "EUR1".into(),
                    currency: "EUR".into(),
                    amount: 1.0,
                    amount_eur: 1.0,
                    low_confidence: false,
                    failed: false,
                })
                .collect(),
        }
    }

    #[test]
    fn storage_and_queries() {
        let mut db = Database::new();
        db.store(check("a.com", "/p/1", 3));
        db.store(check("a.com", "/p/2", 2));
        db.store(check("b.com", "/p/1", 1));
        assert_eq!(db.len(), 3);
        assert_eq!(db.distinct_domains(), 2);
        assert_eq!(db.distinct_products(), 3);
        assert_eq!(db.total_observations(), 6);
        assert_eq!(db.checks_for_domain("a.com").len(), 2);
    }

    #[test]
    fn dedicated_is_much_cheaper_than_integrated() {
        let v1 = DbCostModel::integrated();
        let v2 = DbCostModel::dedicated();
        let rows = 33;
        assert!(
            v1.store_cost_ms(rows, 1) > 3 * v2.store_cost_ms(rows, 1),
            "v1={} v2={}",
            v1.store_cost_ms(rows, 1),
            v2.store_cost_ms(rows, 1)
        );
    }

    #[test]
    fn integrated_degrades_with_concurrency() {
        let v1 = DbCostModel::integrated();
        let at1 = v1.store_cost_ms(33, 1);
        let at10 = v1.store_cost_ms(33, 10);
        assert!(at10 >= 5 * at1 / 2, "at1={at1} at10={at10}");
    }

    #[test]
    fn durability_overhead_keeps_the_table1_contrast() {
        // Charging WAL appends and barriers per query must not invert
        // the integrated-vs-dedicated contrast Table 1 reports.
        let v1 = DbCostModel::integrated();
        let v2 = DbCostModel::dedicated();
        let rows = 33;
        let durable_v2 = v2.store_cost_ms(rows, 1) + v2.wal_cost_ms(rows) + v2.barrier_cost_ms();
        assert!(
            v1.store_cost_ms(rows, 1) > 3 * durable_v2,
            "v1={} durable v2={durable_v2}",
            v1.store_cost_ms(rows, 1),
        );
        // And the log append is sequential I/O: cheaper than the table
        // write it guards.
        assert!(v2.wal_cost_ms(rows) < v2.store_cost_ms(rows, 1));
    }

    #[test]
    fn dedicated_absorbs_moderate_concurrency() {
        let v2 = DbCostModel::dedicated();
        let at1 = v2.store_cost_ms(33, 1);
        let at8 = v2.store_cost_ms(33, 8);
        assert_eq!(at1, at8, "within the thread pool no queueing occurs");
    }
}
