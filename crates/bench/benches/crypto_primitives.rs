//! Crypto building blocks of §3.8: encryption, blinded distance rounds,
//! centroid aggregation, and discrete logs, across group sizes.

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_crypto::dlog::DlogTable;
use sheriff_crypto::elgamal::SecretKey;
use sheriff_crypto::ipfe::{client_vector, server_vector};
use sheriff_crypto::protocol::{aggregate_cluster, coordinator_evaluate, BlindedQuery};
use sheriff_crypto::GroupParams;

use sheriff_bench::synthetic_points;

fn bench_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("elgamal_encrypt_m50");
    for bits in [64usize, 128, 256] {
        let params = GroupParams::baked(bits);
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&params, 52, &mut rng);
        let pk = sk.public_key();
        let point: Vec<u64> = synthetic_points(1, 50, 8, 2)[0].clone();
        let cvec = client_vector(&point);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| pk.encrypt(std::hint::black_box(&cvec), &mut rng));
        });
    }
    group.finish();
}

fn bench_blinded_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("blinded_distance_round_m50");
    group.sample_size(20);
    for bits in [64usize, 128] {
        let params = GroupParams::baked(bits);
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<u64> = synthetic_points(1, 50, 8, 4)[0].clone();
        let bpt: Vec<u64> = synthetic_points(1, 50, 8, 5)[0].clone();
        let sk = SecretKey::generate(&params, a.len() + 2, &mut rng);
        let ct = sk.public_key().encrypt(&client_vector(&a), &mut rng);
        let s = server_vector(&bpt);
        let table = DlogTable::build(&params, 50 * 64 + 1);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                let q = BlindedQuery::blind(&params, &ct, &mut rng);
                let resp = coordinator_evaluate(&sk, &q.blinded, &s);
                q.unblind(&params, &resp, &table)
            });
        });
    }
    group.finish();
}

fn bench_centroid_aggregation(c: &mut Criterion) {
    let params = GroupParams::test_64();
    let mut rng = StdRng::seed_from_u64(7);
    let sk = SecretKey::generate(&params, 52, &mut rng);
    let pk = sk.public_key();
    let cts: Vec<_> = synthetic_points(20, 50, 8, 8)
        .iter()
        .map(|p| pk.encrypt(&client_vector(p), &mut rng))
        .collect();
    let refs: Vec<_> = cts.iter().collect();
    c.bench_function("aggregate_cluster_20x50", |b| {
        b.iter(|| aggregate_cluster(&params, std::hint::black_box(&refs)));
    });
}

fn bench_dlog(c: &mut Criterion) {
    let params = GroupParams::test_64();
    let mut group = c.benchmark_group("bsgs_dlog");
    for bound in [1_000u64, 100_000, 1_000_000] {
        let table = DlogTable::build(&params, bound);
        let target = params.g_pow(&sheriff_bigint::Big::from_u64(bound - 7));
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, _| {
            b.iter(|| table.solve(std::hint::black_box(&target)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encrypt,
    bench_blinded_distance,
    bench_centroid_aggregation,
    bench_dlog
);
criterion_main!(benches);
