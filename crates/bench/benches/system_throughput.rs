//! End-to-end simulated price checks through the v1 and v2 architectures —
//! the Table 1 contrast expressed as wall-clock cost of simulating one
//! complete check (plus the DES engine's raw event throughput, and the
//! TCP reactor backend's real-socket check latency — the number the
//! `reactor-soak` CI stage archives before/after to gate regressions).

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
use sheriff_geo::Country;
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::SimTime;

fn peers(n: u64) -> Vec<PpcSpec> {
    (0..n)
        .map(|i| PpcSpec {
            peer_id: 100 + i,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: Os::Linux,
                browser: Browser::Firefox,
            },
            affluence: 0.2,
            logged_in_domains: vec![],
        })
        .collect()
}

fn bench_price_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_price_check");
    group.sample_size(10);
    for version in ["v1", "v2"] {
        group.bench_with_input(BenchmarkId::from_parameter(version), &version, |b, &v| {
            b.iter(|| {
                let world = World::build(&WorldConfig::small(), 31);
                let mut cfg = if v == "v1" {
                    SheriffConfig::v1(31)
                } else {
                    SheriffConfig::v2(31, 2)
                };
                // Shrink virtual fetch times: wall-clock cost is event
                // processing, not virtual waiting.
                cfg.ipc_fetch_median_ms = 200;
                cfg.ipc_overload_ms = 2_000;
                cfg.fetch_kill_ms = 1_000;
                cfg.ppc_fetch_median_ms = 20;
                cfg.job_deadline_ms = 1_500;
                let mut sheriff = PriceSheriff::new(cfg, world, &peers(4));
                sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(0));
                sheriff.run_until(SimTime::from_mins(1));
                assert_eq!(sheriff.completed().len(), 1);
            });
        });
    }
    group.finish();
}

fn bench_des_engine(c: &mut Criterion) {
    // Raw engine throughput: ping-pong messages between two nodes.
    use sheriff_netsim::{ConstantLatency, Ctx, Node, NodeId, Simulator};

    struct Echo;
    impl Node<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    c.bench_function("des_10k_events", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> =
                Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(1))), 7);
            let a = sim.add_node(Box::new(Echo));
            let bnode = sim.add_node(Box::new(Echo));
            sim.inject(SimTime::ZERO, a, bnode, 10_000);
            sim.run_until_idle(20_000)
        });
    });
}

fn bench_tcp_reactor(c: &mut Criterion) {
    // Real sockets through the sharded reactor backend: one deployment,
    // reused across samples (starting it is the expensive part and not
    // what this gates). 64 peers is big enough that several reactor
    // shards are in play. v2 configuration: on this backend virtual
    // milliseconds are real, so v1's integrated-RDBMS store cost
    // (~660 ms/check, the Table 1 bottleneck) would swamp the transport
    // signal this bench exists to gate.
    use sheriff_wire::MiniDeployment;

    let world = World::build(&WorldConfig::small(), 31);
    let mut cfg = SheriffConfig::v2(31, 2);
    cfg.ipc_locations.clear();
    cfg.proc_per_reply_ms = 2.0;
    cfg.context_switch_alpha = 0.0;
    cfg.job_deadline_ms = 8_000;
    cfg.heartbeat_every_ms = 3_600_000;
    let d = MiniDeployment::start_with(world, cfg, &peers(64)).expect("deployment starts");
    let d = &d;

    let mut group = c.benchmark_group("tcp_reactor");
    group.sample_size(10);
    group.bench_function("price_check_64_peers", |b| {
        b.iter(|| {
            d.run_check(100, "steampowered.com", ProductId(0))
                .expect("check completes")
        });
    });
    group.bench_function("concurrent_checks_x16", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for i in 0..16u64 {
                    s.spawn(move || {
                        d.run_check(100 + (i % 64), "steampowered.com", ProductId(0))
                            .expect("check completes")
                    });
                }
            });
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_price_check,
    bench_des_engine,
    bench_tcp_reactor
);
criterion_main!(benches);
