//! The Measurement-server hot path (§3.3/§10.5): HTML parsing, Tags-Path
//! extraction, and DiffStorage on realistic product pages.

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sheriff_bench::synthetic_page;
use sheriff_html::tagspath::{extract_text_by_path, TagsPath};
use sheriff_html::{DiffStorage, Document};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("html_parse");
    for blocks in [10usize, 50, 200] {
        let page = synthetic_page("EUR654.00", blocks);
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| Document::parse(std::hint::black_box(&page)));
        });
    }
    group.finish();
}

fn bench_tags_path_roundtrip(c: &mut Criterion) {
    let page = synthetic_page("EUR654.00", 50);
    let doc = Document::parse(&page);
    let el = doc.find_by_class("span", "price").expect("price present");
    let path = TagsPath::from_node(&doc, el).expect("path");

    c.bench_function("tags_path_construct", |b| {
        b.iter(|| TagsPath::from_node(std::hint::black_box(&doc), el));
    });

    // Extraction on a *different* page (remote proxy response).
    let remote = synthetic_page("CAD912.00", 60);
    let remote_doc = Document::parse(&remote);
    c.bench_function("tags_path_extract_remote", |b| {
        b.iter(|| extract_text_by_path(std::hint::black_box(&remote_doc), &path));
    });
}

fn bench_diff_storage(c: &mut Criterion) {
    let base = synthetic_page("EUR654.00", 120);
    let mut group = c.benchmark_group("diff_storage_store");
    for label in ["similar", "disjoint"] {
        let variant = if label == "similar" {
            base.replace("EUR654.00", "CAD912.00")
        } else {
            synthetic_page("JPY88,204", 120).replace("block", "kcolb")
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let mut store = DiffStorage::new(std::hint::black_box(&base));
                store.store(&variant)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_tags_path_roundtrip,
    bench_diff_storage
);
criterion_main!(benches);
