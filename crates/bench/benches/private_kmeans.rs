//! Fig. 8c as a Criterion bench: one private k-means iteration across
//! (k, m) and thread counts. Small sizes keep the bench runnable in CI;
//! the `fig8c_private_kmeans_timing` binary sweeps paper sizes.

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_bench::synthetic_points;
use sheriff_crypto::GroupParams;
use sheriff_kmeans::{run_private_with_init, PrivateConfig};

fn bench_private_iteration(c: &mut Criterion) {
    let params = GroupParams::test_64();
    let mut group = c.benchmark_group("private_kmeans_iteration");
    group.sample_size(10);
    for (n, k, m) in [(20usize, 4usize, 20usize), (20, 8, 20), (40, 4, 20)] {
        let points = synthetic_points(n, m, 8, 11);
        let init = synthetic_points(k, m, 8, 13);
        for threads in [1usize, 4] {
            let label = format!("n{n}_k{k}_m{m}_t{threads}");
            group.bench_with_input(BenchmarkId::from_parameter(&label), &label, |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(17);
                    let cfg = PrivateConfig {
                        k,
                        max_iters: 1,
                        halt_changed_fraction: 0.0,
                        scale: 8,
                        threads,
                    };
                    run_private_with_init(
                        &params,
                        std::hint::black_box(&points),
                        &cfg,
                        Some(init.clone()),
                        &mut rng,
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_plain_kmeans_baseline(c: &mut Criterion) {
    // The cleartext baseline the private protocol is compared against.
    use sheriff_kmeans::{kmeans, to_unit_f64, KmeansConfig};
    let points: Vec<Vec<f64>> = synthetic_points(200, 50, 16, 19)
        .iter()
        .map(|p| to_unit_f64(p, 16))
        .collect();
    c.bench_function("plain_kmeans_n200_k8_m50", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(23);
            kmeans(
                std::hint::black_box(&points),
                &KmeansConfig {
                    k: 8,
                    max_iters: 20,
                    ..Default::default()
                },
                &mut rng,
            )
        });
    });
}

criterion_group!(
    benches,
    bench_private_iteration,
    bench_plain_kmeans_baseline
);
criterion_main!(benches);
