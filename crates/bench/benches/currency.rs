//! The §3.5 currency detection and conversion algorithm across the
//! notation styles of Fig. 2.

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sheriff_currency::{detect_and_convert, detect_price, FixedRates};

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_price");
    for (label, text) in [
        ("iso_concat", "EUR654"),
        ("iso_spaced", "654.00 EUR"),
        ("custom_notation", "US$ 699"),
        ("ambiguous_symbol", "$1,234.56"),
        ("eu_grouping", "1.234,56 €"),
        ("zero_decimals", "JPY88,204"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &text, |b, &t| {
            b.iter(|| detect_price(std::hint::black_box(t)));
        });
    }
    group.finish();
}

fn bench_detect_and_convert(c: &mut Criterion) {
    let rates = FixedRates::paper_era();
    c.bench_function("detect_and_convert_fig2_row", |b| {
        b.iter(|| detect_and_convert(std::hint::black_box("KRW829,075"), "EUR", &rates));
    });
}

fn bench_rejections(c: &mut Criterion) {
    // Failure paths must be cheap: the add-on validates every selection.
    c.bench_function("detect_reject_no_currency", |b| {
        b.iter(|| detect_price(std::hint::black_box("999 credits")));
    });
    c.bench_function("detect_reject_too_long", |b| {
        b.iter(|| detect_price(std::hint::black_box("this selection is way too long 123")));
    });
}

criterion_group!(
    benches,
    bench_detect,
    bench_detect_and_convert,
    bench_rejections
);
criterion_main!(benches);
