//! Criterion benchmark harness for the Price $heriff reproduction.
//!
//! Five benches, one per performance-bearing piece of the paper:
//!
//! * `crypto_primitives` — ElGamal encryption, blinded dot-product rounds,
//!   BSGS discrete logs across group sizes (the §3.8 building blocks);
//! * `private_kmeans` — one protocol iteration across (k, m, threads), the
//!   Fig. 8c sweep;
//! * `extraction` — Tags-Path construction + extraction and DiffStorage on
//!   realistic product pages (the Measurement-server hot path, §3.3/§10.5);
//! * `currency` — the §3.5 detection/conversion algorithm across formats;
//! * `system_throughput` — end-to-end simulated price checks in the v1 and
//!   v2 architectures (Table 1's contrast, in events per wall-second).
//!
//! Shared helpers live here so every bench builds its fixtures the same
//! way.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic quantized profile points for clustering benches.
pub fn synthetic_points(n: usize, m: usize, scale: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..m).map(|_| rng.gen_range(0..=scale)).collect())
        .collect()
}

/// A realistic product page with `extra_blocks` of layout noise.
pub fn synthetic_page(price_text: &str, extra_blocks: usize) -> String {
    let mut html = String::from("<!DOCTYPE html><html><head><title>p</title></head><body>");
    for i in 0..extra_blocks {
        html.push_str(&format!(
            "<div class=\"block b{i}\"><span class=\"label\">item {i}</span>\
             <span class=\"meta\">meta {i}</span></div>"
        ));
    }
    html.push_str(&format!(
        "<div class=\"product\"><h1>product</h1>\
         <span class=\"price\">{price_text}</span></div>"
    ));
    html.push_str("</body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(synthetic_points(3, 4, 8, 1), synthetic_points(3, 4, 8, 1));
        let page = synthetic_page("EUR9.99", 5);
        assert!(page.contains("EUR9.99"));
        assert!(page.matches("class=\"block").count() == 5);
    }
}
