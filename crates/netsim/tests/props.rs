//! Property tests for the simulation engine: causality (no event fires
//! before its cause), determinism under a seed, and conservation of
//! messages.

use proptest::prelude::*;

use sheriff_netsim::{ConstantLatency, Ctx, LognormalLatency, Node, NodeId, SimTime, Simulator};

/// Records every delivery with its timestamp.
#[derive(Default)]
struct Recorder {
    log: Vec<(u64, u32)>, // (time, payload)
    forward_to: Option<NodeId>,
}

impl Node<u32> for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        self.log.push((ctx.now.as_millis(), msg));
        if let Some(next) = self.forward_to {
            if msg > 0 {
                ctx.send(next, msg - 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_is_monotone_at_every_node(
        latency_ms in 1u64..500,
        hops in 1u32..40,
    ) {
        let mut sim: Simulator<u32> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(latency_ms))), 1);
        let a = sim.add_node(Box::new(Recorder::default()));
        let b = sim.add_node(Box::new(Recorder::default()));
        sim.node_mut::<Recorder>(a).expect("a").forward_to = Some(b);
        sim.node_mut::<Recorder>(b).expect("b").forward_to = Some(a);
        sim.inject(SimTime::ZERO, a, b, hops);
        sim.run_until_idle(10_000);
        for node in [a, b] {
            let log = &sim.node_ref::<Recorder>(node).expect("node").log;
            for w in log.windows(2) {
                prop_assert!(w[1].0 >= w[0].0, "time went backwards");
            }
        }
    }

    #[test]
    fn message_conservation(hops in 1u32..60, latency_ms in 1u64..100) {
        let mut sim: Simulator<u32> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(latency_ms))), 2);
        let a = sim.add_node(Box::new(Recorder::default()));
        let b = sim.add_node(Box::new(Recorder::default()));
        sim.node_mut::<Recorder>(a).expect("a").forward_to = Some(b);
        sim.node_mut::<Recorder>(b).expect("b").forward_to = Some(a);
        sim.inject(SimTime::ZERO, a, b, hops);
        sim.run_until_idle(100_000);
        let total: usize = [a, b]
            .iter()
            .map(|&n| sim.node_ref::<Recorder>(n).expect("node").log.len())
            .sum();
        // The chain counts down hops..0 inclusive: exactly hops+1 deliveries.
        prop_assert_eq!(total, hops as usize + 1);
        prop_assert_eq!(sim.delivered(), u64::from(hops) + 1);
    }

    #[test]
    fn deterministic_under_seed_with_jitter(seed in 0u64..10_000, hops in 1u32..30) {
        let run = |seed: u64| {
            let mut sim: Simulator<u32> = Simulator::new(
                Box::new(LognormalLatency {
                    base: SimTime::from_millis(50),
                    sigma: 0.5,
                }),
                seed,
            );
            let a = sim.add_node(Box::new(Recorder::default()));
            let b = sim.add_node(Box::new(Recorder::default()));
            sim.node_mut::<Recorder>(a).expect("a").forward_to = Some(b);
            sim.node_mut::<Recorder>(b).expect("b").forward_to = Some(a);
            sim.inject(SimTime::ZERO, a, b, hops);
            sim.run_until_idle(100_000);
            (
                sim.now(),
                sim.node_ref::<Recorder>(a).expect("a").log.clone(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn run_until_never_overshoots_queue(deadline_ms in 0u64..5_000) {
        let mut sim: Simulator<u32> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(100))), 3);
        let a = sim.add_node(Box::new(Recorder::default()));
        let b = sim.add_node(Box::new(Recorder::default()));
        sim.node_mut::<Recorder>(a).expect("a").forward_to = Some(b);
        sim.node_mut::<Recorder>(b).expect("b").forward_to = Some(a);
        sim.inject(SimTime::ZERO, a, b, 100);
        sim.run_until(SimTime::from_millis(deadline_ms));
        // Every delivered event fired at or before the deadline.
        for node in [a, b] {
            for &(t, _) in &sim.node_ref::<Recorder>(node).expect("node").log {
                prop_assert!(t <= deadline_ms);
            }
        }
        prop_assert_eq!(sim.now(), SimTime::from_millis(deadline_ms));
    }
}
