//! Latency models.
//!
//! §5 notes that "some PlanetLab servers are sometimes overloaded, imposing
//! delay on our proxy servers response time" — a heavy tail the production
//! system bounded with a 2-minute per-request kill. The models here let the
//! performance experiments reproduce those shapes deterministically.

use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::{NodeId, SimTime};

/// Prices the network delay of one message on the (from, to) edge.
pub trait LatencyModel {
    /// Latency for a single message; may consult `rng` for jitter.
    fn latency(&mut self, from: NodeId, to: NodeId, rng: &mut StdRng) -> SimTime;
}

/// Fixed latency on every edge.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub SimTime);

impl LatencyModel for ConstantLatency {
    fn latency(&mut self, _from: NodeId, _to: NodeId, _rng: &mut StdRng) -> SimTime {
        self.0
    }
}

/// Lognormal jitter around a base latency: `base · exp(σ·Z)` with standard
/// normal `Z` — the classic shape of wide-area RTTs.
#[derive(Clone, Copy, Debug)]
pub struct LognormalLatency {
    /// Median latency.
    pub base: SimTime,
    /// Log-space standard deviation (0.3–0.6 is realistic).
    pub sigma: f64,
}

impl LognormalLatency {
    fn sample(&self, rng: &mut StdRng) -> SimTime {
        let z = sample_standard_normal(rng);
        let factor = (self.sigma * z).exp();
        SimTime::from_millis((self.base.as_millis() as f64 * factor).round() as u64)
    }
}

impl LatencyModel for LognormalLatency {
    fn latency(&mut self, _from: NodeId, _to: NodeId, rng: &mut StdRng) -> SimTime {
        self.sample(rng)
    }
}

/// Lognormal body with an overload tail: with probability `p_overload` the
/// message instead takes `overload_latency` (an overloaded PlanetLab node),
/// optionally clipped by the production system's kill bound.
#[derive(Clone, Copy, Debug)]
pub struct HeavyTailLatency {
    /// The well-behaved body.
    pub body: LognormalLatency,
    /// Probability of hitting an overloaded node.
    pub p_overload: f64,
    /// Latency in the overloaded case.
    pub overload_latency: SimTime,
    /// Upper clip (the 2-minute kill bound); `None` = unbounded.
    pub kill_bound: Option<SimTime>,
}

impl LatencyModel for HeavyTailLatency {
    fn latency(&mut self, _from: NodeId, _to: NodeId, rng: &mut StdRng) -> SimTime {
        let raw = if rng.gen::<f64>() < self.p_overload {
            self.overload_latency
        } else {
            self.body.sample(rng)
        };
        match self.kill_bound {
            Some(bound) if raw > bound => bound,
            _ => raw,
        }
    }
}

/// Box–Muller standard normal sample.
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantLatency(SimTime::from_millis(25));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.latency(NodeId(0), NodeId(1), &mut r),
                SimTime::from_millis(25)
            );
        }
    }

    #[test]
    fn lognormal_centers_on_base() {
        let mut m = LognormalLatency {
            base: SimTime::from_millis(100),
            sigma: 0.4,
        };
        let mut r = rng();
        let samples: Vec<f64> = (0..5000)
            .map(|_| m.latency(NodeId(0), NodeId(1), &mut r).as_millis() as f64)
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - 100.0).abs() < 10.0, "median={median}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn heavy_tail_produces_overloads() {
        let mut m = HeavyTailLatency {
            body: LognormalLatency {
                base: SimTime::from_millis(100),
                sigma: 0.3,
            },
            p_overload: 0.1,
            overload_latency: SimTime::from_secs(300),
            kill_bound: None,
        };
        let mut r = rng();
        let overloads = (0..2000)
            .filter(|_| m.latency(NodeId(0), NodeId(1), &mut r) == SimTime::from_secs(300))
            .count();
        let frac = overloads as f64 / 2000.0;
        assert!((frac - 0.1).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn kill_bound_clips_tail() {
        let mut m = HeavyTailLatency {
            body: LognormalLatency {
                base: SimTime::from_millis(100),
                sigma: 0.3,
            },
            p_overload: 1.0,
            overload_latency: SimTime::from_secs(600),
            kill_bound: Some(SimTime::from_mins(2)),
        };
        let mut r = rng();
        assert_eq!(
            m.latency(NodeId(0), NodeId(1), &mut r),
            SimTime::from_mins(2)
        );
    }

    #[test]
    fn normal_sampler_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
