//! The simulation engine: virtual clock, event queue, node arena.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sheriff_telemetry::{Counter, Gauge, Registry};

use crate::fault::{FaultPlan, FaultStats};
use crate::latency::LatencyModel;

/// Virtual time in milliseconds since simulation start.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Builds from minutes.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Milliseconds value.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds as a float (reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition.
    pub fn plus(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

/// Handle to a node in the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A simulated network endpoint: a pure event-driven state machine.
///
/// Implementations must not block, sleep, or read wall-clock time — all
/// temporal behaviour goes through [`Ctx::set_timer`].
pub trait Node<M: 'static>: Any {
    /// A message arrived from `from`.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}

    /// The node just came back from a scheduled crash window (see
    /// [`FaultPlan::with_crash`]): in-flight deliveries were lost and
    /// pending timers were deferred to this instant. The engine keeps
    /// the node's struct intact — a node that models a process with
    /// volatile state (e.g. a database with a durable log) must itself
    /// discard that state here and rebuild from whatever it considers
    /// persistent, so the same crash schedule yields the same recovery
    /// on every replay.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// What a node may do during a callback.
enum Action<M> {
    Send {
        to: NodeId,
        msg: M,
        extra_delay: SimTime,
    },
    Timer {
        delay: SimTime,
        token: u64,
    },
}

/// Callback context handed to nodes.
pub struct Ctx<'a, M> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node being invoked.
    pub self_id: NodeId,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut StdRng,
}

impl<'a, M> Ctx<'a, M> {
    /// Sends `msg` to `to`; arrival is `now + latency(self, to)`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send {
            to,
            msg,
            extra_delay: SimTime::ZERO,
        });
    }

    /// Sends after an additional local delay (e.g. processing time) on top
    /// of network latency.
    pub fn send_after(&mut self, delay: SimTime, to: NodeId, msg: M) {
        self.actions.push(Action::Send {
            to,
            msg,
            extra_delay: delay,
        });
    }

    /// Arms a timer on the current node.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

enum Event<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
    Restart { node: NodeId },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulator: node arena + event queue + clock.
///
/// ```
/// use sheriff_netsim::{ConstantLatency, Ctx, Node, NodeId, SimTime, Simulator};
///
/// struct Echo;
/// impl Node<u32> for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
///         if msg > 0 {
///             ctx.send(from, msg - 1);
///         }
///     }
/// }
///
/// let mut sim: Simulator<u32> =
///     Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(10))), 1);
/// let a = sim.add_node(Box::new(Echo));
/// let b = sim.add_node(Box::new(Echo));
/// sim.inject(SimTime::ZERO, a, b, 5);
/// sim.run_until_idle(100);
/// assert_eq!(sim.delivered(), 6);            // 5,4,3,2,1,0
/// assert_eq!(sim.now(), SimTime::from_millis(50)); // 10 ms per hop
/// ```
pub struct Simulator<M: 'static> {
    nodes: Vec<Box<dyn Node<M>>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    latency: Box<dyn LatencyModel>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    delivered: u64,
    telemetry: Option<SimTelemetry>,
    fault: Option<FaultPlan>,
    // Set alongside `fault` (which requires `M: Clone`); lets `step` clone
    // messages for duplication without bounding the whole impl.
    cloner: Option<fn(&M) -> M>,
}

/// Cached metric handles: the per-event hot path touches only atomics,
/// never the registry's name maps.
struct SimTelemetry {
    registry: Arc<Registry>,
    delivered: Arc<Counter>,
    timers_fired: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_depth_max: Arc<Gauge>,
    node_backlog: Vec<Arc<Gauge>>,
    faults_dropped: Arc<Counter>,
    faults_duplicated: Arc<Counter>,
    faults_delayed: Arc<Counter>,
    faults_partition_drops: Arc<Counter>,
    faults_crash_dropped: Arc<Counter>,
    faults_node_restarts: Arc<Counter>,
    faults_timers_deferred: Arc<Counter>,
}

impl SimTelemetry {
    fn new(registry: Arc<Registry>) -> Self {
        SimTelemetry {
            delivered: registry.counter("netsim.messages_delivered"),
            timers_fired: registry.counter("netsim.timers_fired"),
            queue_depth: registry.gauge("netsim.queue_depth"),
            queue_depth_max: registry.gauge("netsim.queue_depth_max"),
            node_backlog: Vec::new(),
            faults_dropped: registry.counter("faults.dropped"),
            faults_duplicated: registry.counter("faults.duplicated"),
            faults_delayed: registry.counter("faults.delayed"),
            faults_partition_drops: registry.counter("faults.partition_drops"),
            faults_crash_dropped: registry.counter("faults.crash_dropped"),
            faults_node_restarts: registry.counter("faults.node_restarts"),
            faults_timers_deferred: registry.counter("faults.timers_deferred"),
            registry,
        }
    }

    /// Folds the plan's running totals into the registry as deltas (the
    /// plan is consulted per send; counters must only ever increase).
    fn fault_deltas(&self, before: FaultStats, after: FaultStats) {
        self.faults_dropped.add(after.dropped - before.dropped);
        self.faults_duplicated
            .add(after.duplicated - before.duplicated);
        self.faults_delayed.add(after.delayed - before.delayed);
        self.faults_partition_drops
            .add(after.partition_drops - before.partition_drops);
    }

    fn backlog(&mut self, node: NodeId) -> &Arc<Gauge> {
        while self.node_backlog.len() <= node.0 {
            let idx = self.node_backlog.len();
            self.node_backlog.push(
                self.registry
                    .gauge(&format!("netsim.node.{idx:03}.backlog")),
            );
        }
        &self.node_backlog[node.0]
    }

    /// An event entered the queue (`deliver_to` set for message events).
    fn pushed(&mut self, deliver_to: Option<NodeId>) {
        self.queue_depth.add(1);
        let depth = self.queue_depth.get();
        if depth > self.queue_depth_max.get() {
            self.queue_depth_max.set(depth);
        }
        if let Some(to) = deliver_to {
            self.backlog(to).add(1);
        }
    }

    /// An event left the queue and fired.
    fn popped(&mut self, deliver_to: Option<NodeId>) {
        self.queue_depth.add(-1);
        match deliver_to {
            Some(to) => {
                self.delivered.inc();
                self.backlog(to).add(-1);
            }
            None => self.timers_fired.inc(),
        }
    }
}

impl<M: 'static> Simulator<M> {
    /// Creates a simulator with the given latency model and RNG seed.
    pub fn new(latency: Box<dyn LatencyModel>, seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            latency,
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            delivered: 0,
            telemetry: None,
            fault: None,
            cloner: None,
        }
    }

    /// Attaches a telemetry registry; the engine publishes event-queue
    /// depth, delivered-message and timer counters, and per-node backlog
    /// gauges into it. Gauges are seeded from events already queued, so
    /// attaching mid-run stays consistent. Without a registry attached the
    /// engine's behaviour (and cost) is unchanged.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        let mut tel = SimTelemetry::new(registry);
        for Reverse(sched) in &self.queue {
            match sched.event {
                Event::Deliver { to, .. } => tel.pushed(Some(to)),
                Event::Timer { .. } | Event::Restart { .. } => tel.pushed(None),
            }
        }
        self.telemetry = Some(tel);
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Registers a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Typed access to a node's state (for test assertions and result
    /// harvesting; deployment code communicates only via messages).
    pub fn node_ref<T: Node<M>>(&self, id: NodeId) -> Option<&T> {
        let node: &dyn Any = self.nodes.get(id.0)?.as_ref();
        node.downcast_ref::<T>()
    }

    /// Mutable typed access to a node's state.
    pub fn node_mut<T: Node<M>>(&mut self, id: NodeId) -> Option<&mut T> {
        let node: &mut dyn Any = self.nodes.get_mut(id.0)?.as_mut();
        node.downcast_mut::<T>()
    }

    /// Injects a message from "outside" the simulation (e.g. a user click),
    /// delivered to `to` at `at`.
    pub fn inject(&mut self, at: SimTime, to: NodeId, from: NodeId, msg: M) {
        let seq = self.bump_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            event: Event::Deliver { to, from, msg },
        }));
        if let Some(t) = &mut self.telemetry {
            t.pushed(Some(to));
        }
    }

    /// Arms a timer on `node` from outside the simulation.
    pub fn inject_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        let seq = self.bump_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            event: Event::Timer { node, token },
        }));
        if let Some(t) = &mut self.telemetry {
            t.pushed(None);
        }
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Runs until the queue drains or `max_events` fire. Returns the number
    /// of events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            if !self.step() {
                break;
            }
            processed += 1;
        }
        processed
    }

    /// Runs until virtual time exceeds `deadline` or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Processes a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(sched)) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(sched.at);
        let now_ms = self.now.as_millis();
        let mut actions: Vec<Action<M>> = Vec::new();

        type Invoke<'a, M> = Box<dyn FnOnce(&mut dyn Node<M>, &mut Ctx<'_, M>) + 'a>;
        let (node_id, invoke): (NodeId, Invoke<'_, M>) = match sched.event {
            Event::Deliver { to, from, msg } => {
                // A crashed receiver loses in-flight deliveries outright.
                if self
                    .fault
                    .as_ref()
                    .is_some_and(|f| f.is_crashed(to.0, now_ms))
                {
                    if let Some(t) = &mut self.telemetry {
                        t.queue_depth.add(-1);
                        t.backlog(to).add(-1);
                        t.faults_crash_dropped.inc();
                    }
                    return true;
                }
                self.delivered += 1;
                if let Some(t) = &mut self.telemetry {
                    t.popped(Some(to));
                }
                (
                    to,
                    Box::new(move |node, ctx| node.on_message(ctx, from, msg)),
                )
            }
            Event::Timer { node, token } => {
                // Timers owed to a crashed node fire at its restart
                // instant instead (deferred, never lost).
                if let Some(restart) = self
                    .fault
                    .as_ref()
                    .and_then(|f| f.restart_at(node.0, now_ms))
                {
                    let seq = self.bump_seq();
                    self.queue.push(Reverse(Scheduled {
                        at: SimTime::from_millis(restart),
                        seq,
                        event: Event::Timer { node, token },
                    }));
                    if let Some(t) = &mut self.telemetry {
                        t.faults_timers_deferred.inc();
                    }
                    return true;
                }
                if let Some(t) = &mut self.telemetry {
                    t.popped(None);
                }
                (
                    node,
                    Box::new(move |node_ref, ctx| node_ref.on_timer(ctx, token)),
                )
            }
            Event::Restart { node } => {
                if let Some(t) = &mut self.telemetry {
                    t.queue_depth.add(-1);
                }
                // With overlapping crash windows only the last restart
                // actually brings the node back.
                if self
                    .fault
                    .as_ref()
                    .is_some_and(|f| f.is_crashed(node.0, now_ms))
                {
                    return true;
                }
                if let Some(t) = &mut self.telemetry {
                    t.faults_node_restarts.inc();
                }
                (node, Box::new(Node::on_restart))
            }
        };

        if let Some(node) = self.nodes.get_mut(node_id.0) {
            let mut ctx = Ctx {
                now: self.now,
                self_id: node_id,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            invoke(node.as_mut(), &mut ctx);
        }

        for action in actions {
            match action {
                Action::Send {
                    to,
                    msg,
                    extra_delay,
                } => {
                    // Latency is drawn from the shared RNG *before* the plan
                    // is consulted, so a plan — active or not — never shifts
                    // the RNG stream a plan-free run would draw.
                    let lat = self.latency.latency(node_id, to, &mut self.rng);
                    let mut at = self.now.plus(extra_delay).plus(lat);
                    let mut dup_msg: Option<M> = None;
                    if let Some(plan) = self.fault.as_mut().filter(|p| p.is_active()) {
                        let before = plan.stats;
                        let decision = plan.decide(now_ms, node_id.0, to.0);
                        let after = plan.stats;
                        if let Some(t) = &self.telemetry {
                            t.fault_deltas(before, after);
                        }
                        if decision.drop {
                            continue;
                        }
                        at = at.plus(SimTime::from_millis(decision.extra_delay_ms));
                        if decision.duplicate {
                            let clone = self.cloner.expect("cloner is set with the plan");
                            dup_msg = Some(clone(&msg));
                        }
                    }
                    let seq = self.bump_seq();
                    self.queue.push(Reverse(Scheduled {
                        at,
                        seq,
                        event: Event::Deliver {
                            to,
                            from: node_id,
                            msg,
                        },
                    }));
                    if let Some(t) = &mut self.telemetry {
                        t.pushed(Some(to));
                    }
                    if let Some(copy) = dup_msg {
                        let seq = self.bump_seq();
                        self.queue.push(Reverse(Scheduled {
                            at,
                            seq,
                            event: Event::Deliver {
                                to,
                                from: node_id,
                                msg: copy,
                            },
                        }));
                        if let Some(t) = &mut self.telemetry {
                            t.pushed(Some(to));
                        }
                    }
                }
                Action::Timer { delay, token } => {
                    let at = self.now.plus(delay);
                    let seq = self.bump_seq();
                    self.queue.push(Reverse(Scheduled {
                        at,
                        seq,
                        event: Event::Timer {
                            node: node_id,
                            token,
                        },
                    }));
                    if let Some(t) = &mut self.telemetry {
                        t.pushed(None);
                    }
                }
            }
        }
        true
    }
}

impl<M: Clone + 'static> Simulator<M> {
    /// Installs a fault schedule. A restart event is queued for every crash
    /// window so nodes get their [`Node::on_restart`] callback the instant
    /// they come back. Requires `M: Clone` so duplicated deliveries can
    /// carry a second copy of the message.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for window in plan.crash_windows() {
            let seq = self.bump_seq();
            self.queue.push(Reverse(Scheduled {
                at: SimTime::from_millis(window.until_ms),
                seq,
                event: Event::Restart {
                    node: NodeId(window.node),
                },
            }));
            if let Some(t) = &mut self.telemetry {
                t.pushed(None);
            }
        }
        self.cloner = Some(|m: &M| m.clone());
        self.fault = Some(plan);
    }

    /// Running decision totals of the installed plan, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|p| p.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    #[derive(Default)]
    struct Echo {
        received: Vec<(NodeId, u32)>,
    }

    impl Node<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.received.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn sim() -> Simulator<u32> {
        Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(10))), 1)
    }

    #[test]
    fn telemetry_tracks_queue_and_deliveries() {
        let registry = Arc::new(Registry::new());
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        let b = s.add_node(Box::<Echo>::default());
        s.set_telemetry(Arc::clone(&registry));
        s.inject(SimTime::ZERO, a, b, 5);
        s.inject_timer(SimTime::from_millis(5), a, 1);
        s.run_until_idle(1000);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["netsim.messages_delivered"], s.delivered());
        assert_eq!(snap.counters["netsim.timers_fired"], 1);
        assert_eq!(snap.gauges["netsim.queue_depth"], 0, "queue drained");
        assert!(snap.gauges["netsim.queue_depth_max"] >= 1);
        assert_eq!(snap.gauges["netsim.node.000.backlog"], 0);
        assert_eq!(snap.gauges["netsim.node.001.backlog"], 0);
    }

    #[test]
    fn telemetry_attached_mid_run_seeds_queue_gauges() {
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        let b = s.add_node(Box::<Echo>::default());
        s.inject(SimTime::ZERO, a, b, 5);
        s.inject(SimTime::from_millis(1), b, a, 2);
        let registry = Arc::new(Registry::new());
        s.set_telemetry(Arc::clone(&registry));
        assert_eq!(registry.snapshot().gauges["netsim.queue_depth"], 2);
        s.run_until_idle(1000);
        assert_eq!(registry.snapshot().gauges["netsim.queue_depth"], 0);
    }

    #[test]
    fn ping_pong_terminates() {
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        let b = s.add_node(Box::<Echo>::default());
        s.inject(SimTime::ZERO, a, b, 5);
        let events = s.run_until_idle(1000);
        assert_eq!(events, 6, "5..0 inclusive");
        // Total messages: a gets 5,3,1; b gets 4,2,0.
        assert_eq!(s.node_ref::<Echo>(a).unwrap().received.len(), 3);
        assert_eq!(s.node_ref::<Echo>(b).unwrap().received.len(), 3);
        // Each hop costs 10ms; last delivery at t=50.
        assert_eq!(s.now(), SimTime::from_millis(50));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut s = sim();
            let a = s.add_node(Box::<Echo>::default());
            let b = s.add_node(Box::<Echo>::default());
            s.inject(SimTime::ZERO, a, b, 20);
            s.run_until_idle(10_000);
            (s.now(), s.delivered())
        };
        assert_eq!(run(), run());
    }

    #[derive(Default)]
    struct TimerNode {
        fired: Vec<(u64, SimTime)>,
    }

    impl Node<u32> for TimerNode {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, _msg: u32) {
            ctx.set_timer(SimTime::from_millis(100), 7);
            ctx.set_timer(SimTime::from_millis(50), 8);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: u64) {
            self.fired.push((token, ctx.now));
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut s = sim();
        let n = s.add_node(Box::<TimerNode>::default());
        s.inject(SimTime::ZERO, n, n, 0);
        s.run_until_idle(100);
        let fired = &s.node_ref::<TimerNode>(n).unwrap().fired;
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0], (8, SimTime::from_millis(50)));
        assert_eq!(fired[1], (7, SimTime::from_millis(100)));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = sim();
        let n = s.add_node(Box::<TimerNode>::default());
        s.inject(SimTime::ZERO, n, n, 0);
        s.run_until(SimTime::from_millis(60));
        let fired_count = s.node_ref::<TimerNode>(n).unwrap().fired.len();
        assert_eq!(fired_count, 1, "only the 50ms timer fires by t=60");
        assert_eq!(s.now(), SimTime::from_millis(60));
    }

    #[test]
    fn same_time_events_fifo() {
        // Two messages injected at the same instant arrive in injection
        // order (stable by sequence number).
        #[derive(Default)]
        struct Recorder {
            seen: Vec<u32>,
        }
        impl Node<u32> for Recorder {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
                self.seen.push(msg);
            }
        }
        let mut s: Simulator<u32> = Simulator::new(Box::new(ConstantLatency(SimTime::ZERO)), 3);
        let r = s.add_node(Box::<Recorder>::default());
        for v in 0..10 {
            s.inject(SimTime::from_millis(5), r, r, v);
        }
        s.run_until_idle(100);
        assert_eq!(
            s.node_ref::<Recorder>(r).unwrap().seen,
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wrong_downcast_is_none() {
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        assert!(s.node_ref::<TimerNode>(a).is_none());
        assert!(s.node_ref::<Echo>(NodeId(99)).is_none());
    }

    use crate::fault::{FaultPlan, LinkFaults};

    #[test]
    fn zero_probability_plan_is_a_strict_noop() {
        let run = |plan: Option<FaultPlan>| {
            let mut s = sim();
            let a = s.add_node(Box::<Echo>::default());
            let b = s.add_node(Box::<Echo>::default());
            if let Some(p) = plan {
                s.set_fault_plan(p);
            }
            s.inject(SimTime::ZERO, a, b, 20);
            s.run_until_idle(10_000);
            let seen = s.node_ref::<Echo>(a).unwrap().received.clone();
            (s.now(), s.delivered(), seen)
        };
        assert_eq!(run(None), run(Some(FaultPlan::new(42))));
    }

    #[test]
    fn drop_all_links_silence_replies_but_not_injections() {
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        let b = s.add_node(Box::<Echo>::default());
        s.set_fault_plan(FaultPlan::new(1).with_default_link(LinkFaults {
            drop: 1.0,
            ..LinkFaults::NONE
        }));
        // The injected message is external (exempt); a's reply is eaten.
        s.inject(SimTime::ZERO, a, b, 5);
        s.run_until_idle(1000);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.fault_stats().unwrap().dropped, 1);
    }

    #[test]
    fn duplicate_links_deliver_twice() {
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        let b = s.add_node(Box::<Echo>::default());
        s.set_fault_plan(FaultPlan::new(1).with_link(
            a.0,
            b.0,
            LinkFaults {
                duplicate: 1.0,
                ..LinkFaults::NONE
            },
        ));
        // b receives the injected 5 and replies 4 to a (clean link); a's
        // reply of 3 crosses the duplicated a→b link, so b sees 3 twice.
        s.inject(SimTime::ZERO, b, a, 5);
        s.run_until_idle(1000);
        let b_seen = &s.node_ref::<Echo>(b).unwrap().received;
        assert_eq!(b_seen.iter().filter(|(_, v)| *v == 3).count(), 2);
        assert!(s.fault_stats().unwrap().duplicated >= 1);
    }

    #[derive(Default)]
    struct CrashProbe {
        fired_at: Vec<SimTime>,
        restarts: Vec<SimTime>,
    }
    impl Node<u32> for CrashProbe {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, _msg: u32) {
            ctx.set_timer(SimTime::from_millis(100), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _token: u64) {
            self.fired_at.push(ctx.now);
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_, u32>) {
            self.restarts.push(ctx.now);
        }
    }

    #[test]
    fn crash_defers_timers_and_invokes_on_restart() {
        let registry = Arc::new(Registry::new());
        let mut s = sim();
        let n = s.add_node(Box::<CrashProbe>::default());
        s.set_telemetry(Arc::clone(&registry));
        // Timer armed at t=10 (message arrives then) fires at t=110 — but
        // the node is dead on [50, 400), so it fires at t=400 instead.
        s.set_fault_plan(FaultPlan::new(9).with_crash(n.0, 50, 400));
        s.inject(SimTime::ZERO, n, n, 0);
        s.run_until_idle(1000);
        let probe = s.node_ref::<CrashProbe>(n).unwrap();
        assert_eq!(probe.restarts, vec![SimTime::from_millis(400)]);
        assert_eq!(probe.fired_at, vec![SimTime::from_millis(400)]);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["faults.timers_deferred"], 1);
        assert_eq!(snap.counters["faults.node_restarts"], 1);
    }

    #[test]
    fn deliveries_to_a_crashed_node_are_lost() {
        let registry = Arc::new(Registry::new());
        let mut s = sim();
        let a = s.add_node(Box::<Echo>::default());
        let b = s.add_node(Box::<Echo>::default());
        s.set_telemetry(Arc::clone(&registry));
        s.set_fault_plan(FaultPlan::new(9).with_crash(b.0, 0, 1000));
        s.inject(SimTime::ZERO, b, a, 5);
        s.run_until_idle(1000);
        assert_eq!(s.delivered(), 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["faults.crash_dropped"], 1);
        assert_eq!(snap.gauges["netsim.queue_depth"], 0);
    }

    #[test]
    fn simtime_arithmetic() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(
            SimTime::from_millis(30).plus(SimTime::from_millis(12)),
            SimTime::from_millis(42)
        );
        assert_eq!(
            SimTime::from_millis(30).since(SimTime::from_millis(40)),
            SimTime::ZERO
        );
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
