//! Seed-deterministic fault injection for the delivery path.
//!
//! A [`FaultPlan`] describes per-link loss/duplication/delay probabilities,
//! scheduled node crash+restart windows, and network partitions. The same
//! plan drives both backends: the discrete-event engine consults it on each
//! [`crate::Simulator`] send, and the TCP deployment consults it in its
//! socket shim — so one seeded schedule exercises the protocol identically
//! under simulation and over real sockets.
//!
//! Determinism contract: every per-message decision is a pure function of
//! `(plan seed, from, to, n)` where `n` is the per-directed-link occurrence
//! counter. The plan owns a *private* RNG stream per message (derived by
//! hashing, never shared with the simulator's RNG), so installing a plan of
//! all-zero probabilities and no crash windows perturbs nothing: the engine
//! draws exactly the same shared-RNG sequence as with no plan at all.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Loss/duplication/delay probabilities for one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is held back by an extra delay.
    pub delay: f64,
    /// Inclusive bounds (ms) for the extra delay when it applies.
    pub delay_ms: (u64, u64),
    /// Probability a message is held back long enough to overtake later
    /// traffic on the same link (reordering, modelled as a larger hold).
    pub reorder: f64,
    /// Inclusive bounds (ms) for the reorder hold when it applies.
    pub reorder_ms: (u64, u64),
}

impl LinkFaults {
    /// A perfectly reliable link (all probabilities zero).
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        delay_ms: (0, 0),
        reorder: 0.0,
        reorder_ms: (0, 0),
    };

    /// True when every probability is zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay == 0.0 && self.reorder == 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// A scheduled crash: the node is dead on `[from_ms, until_ms)` and
/// restarts (with its state intact but its timers deferred) at `until_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// Fault index of the crashed node.
    pub node: usize,
    /// First dead millisecond.
    pub from_ms: u64,
    /// First millisecond back up (exclusive end of the window).
    pub until_ms: u64,
}

/// A network partition: messages crossing the island boundary (either
/// direction) during the window are dropped deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Nodes cut off from everyone outside this set.
    pub island: Vec<usize>,
    /// Partition start (ms).
    pub from_ms: u64,
    /// Partition heal time (ms, exclusive).
    pub until_ms: u64,
}

/// What the plan decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// Drop the message entirely (loss, partition cut, or dead receiver).
    pub drop: bool,
    /// Deliver a second copy as well.
    pub duplicate: bool,
    /// Extra hold (ms) on top of normal transport latency.
    pub extra_delay_ms: u64,
}

impl FaultDecision {
    /// Normal delivery, untouched.
    pub const DELIVER: FaultDecision = FaultDecision {
        drop: false,
        duplicate: false,
        extra_delay_ms: 0,
    };

    /// Deterministic drop (partition / dead node), no RNG involved.
    pub const DROP: FaultDecision = FaultDecision {
        drop: true,
        duplicate: false,
        extra_delay_ms: 0,
    };
}

/// Running totals kept by the plan itself (transport-independent; each
/// backend additionally folds these into its own telemetry registry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by link-loss probability.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages held back (delay or reorder).
    pub delayed: u64,
    /// Messages cut by an active partition.
    pub partition_drops: u64,
}

/// The full fault schedule for one run. See the module docs for the
/// determinism contract.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: BTreeMap<(usize, usize), LinkFaults>,
    crashes: Vec<CrashWindow>,
    partitions: Vec<Partition>,
    counts: BTreeMap<(usize, usize), u64>,
    scripts: BTreeMap<(usize, usize, u64), FaultDecision>,
    /// Running decision totals.
    pub stats: FaultStats,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults) under `seed`; add links/crashes/partitions
    /// with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::NONE,
            links: BTreeMap::new(),
            crashes: Vec::new(),
            partitions: Vec::new(),
            counts: BTreeMap::new(),
            scripts: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Sets the fault profile applied to every link without an override.
    pub fn with_default_link(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Overrides the profile of one directed link.
    pub fn with_link(mut self, from: usize, to: usize, faults: LinkFaults) -> Self {
        self.links.insert((from, to), faults);
        self
    }

    /// Pins the fate of the `occurrence`-th message (0-based) on the
    /// directed link `from → to`, bypassing that message's probability
    /// draws. This is how `sheriff-model` counterexamples are replayed
    /// under the DES: a model trace names exact per-link message ordinals
    /// to drop or duplicate, and a scripted plan reproduces those exact
    /// decisions regardless of seed. Unscripted messages on the same
    /// link still follow the link's probabilistic profile.
    pub fn with_scripted(
        mut self,
        from: usize,
        to: usize,
        occurrence: u64,
        decision: FaultDecision,
    ) -> Self {
        self.scripts.insert((from, to, occurrence), decision);
        self
    }

    /// Schedules a crash window (restart at `until_ms`).
    pub fn with_crash(mut self, node: usize, from_ms: u64, until_ms: u64) -> Self {
        assert!(from_ms < until_ms, "crash window must be non-empty");
        self.crashes.push(CrashWindow {
            node,
            from_ms,
            until_ms,
        });
        self
    }

    /// Schedules the same crash window over a whole node set — the
    /// correlated-failure shape a dead reactor shard produces: every
    /// node a thread owns goes dark together and returns together.
    pub fn with_crash_all(mut self, nodes: &[usize], from_ms: u64, until_ms: u64) -> Self {
        for &node in nodes {
            self = self.with_crash(node, from_ms, until_ms);
        }
        self
    }

    /// Schedules a partition isolating `island` during the window.
    pub fn with_partition(mut self, island: Vec<usize>, from_ms: u64, until_ms: u64) -> Self {
        assert!(from_ms < until_ms, "partition window must be non-empty");
        self.partitions.push(Partition {
            island,
            from_ms,
            until_ms,
        });
        self
    }

    /// True when the plan can ever alter a delivery — used by drivers to
    /// skip the consult entirely on the common fault-free path.
    pub fn is_active(&self) -> bool {
        !self.default_link.is_none()
            || self.links.values().any(|l| !l.is_none())
            || !self.crashes.is_empty()
            || !self.partitions.is_empty()
            || !self.scripts.is_empty()
    }

    /// The crash windows (for drivers that schedule restart events).
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// True when `node` is dead at `now_ms`.
    pub fn is_crashed(&self, node: usize, now_ms: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && now_ms >= c.from_ms && now_ms < c.until_ms)
    }

    /// When `node` is dead at `now_ms`, the millisecond it comes back.
    pub fn restart_at(&self, node: usize, now_ms: u64) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.node == node && now_ms >= c.from_ms && now_ms < c.until_ms)
            .map(|c| c.until_ms)
            .max()
    }

    /// True when an active partition separates `from` and `to` at `now_ms`.
    pub fn partitioned(&self, from: usize, to: usize, now_ms: u64) -> bool {
        self.partitions.iter().any(|p| {
            now_ms >= p.from_ms
                && now_ms < p.until_ms
                && (p.island.contains(&from) != p.island.contains(&to))
        })
    }

    /// Decides the fate of the next message on the directed link
    /// `from → to` sent at `now_ms`. Advances the link's occurrence
    /// counter; decisions never touch any RNG outside this call.
    pub fn decide(&mut self, now_ms: u64, from: usize, to: usize) -> FaultDecision {
        let n = self.counts.entry((from, to)).or_insert(0);
        let occurrence = *n;
        *n += 1;

        // Scripted ordinals win over everything: a replayed counterexample
        // must reproduce the model's exact decision for this message.
        if let Some(&decision) = self.scripts.get(&(from, to, occurrence)) {
            if decision.drop {
                self.stats.dropped += 1;
            }
            if decision.duplicate {
                self.stats.duplicated += 1;
            }
            if decision.extra_delay_ms > 0 {
                self.stats.delayed += 1;
            }
            return decision;
        }

        if self.partitioned(from, to, now_ms) {
            self.stats.partition_drops += 1;
            return FaultDecision::DROP;
        }

        let link = *self.links.get(&(from, to)).unwrap_or(&self.default_link);
        if link.is_none() {
            return FaultDecision::DELIVER;
        }

        // One private RNG per message, derived purely from (seed, link, n):
        // both backends reach the same decision for the n-th message on a
        // link regardless of wall-clock or virtual timing.
        let per_msg = splitmix64(
            self.seed ^ splitmix64(((from as u64) << 32) | to as u64).wrapping_add(occurrence),
        );
        let mut rng = StdRng::seed_from_u64(per_msg);

        // Fixed draw order so adding one fault kind never shifts another.
        let dropped = link.drop > 0.0 && rng.gen_bool(link.drop.min(1.0));
        let duplicated = link.duplicate > 0.0 && rng.gen_bool(link.duplicate.min(1.0));
        let delayed = link.delay > 0.0 && rng.gen_bool(link.delay.min(1.0));
        let delay_ms = if link.delay_ms.1 > link.delay_ms.0 {
            rng.gen_range(link.delay_ms.0..=link.delay_ms.1)
        } else {
            link.delay_ms.0
        };
        let reordered = link.reorder > 0.0 && rng.gen_bool(link.reorder.min(1.0));
        let reorder_ms = if link.reorder_ms.1 > link.reorder_ms.0 {
            rng.gen_range(link.reorder_ms.0..=link.reorder_ms.1)
        } else {
            link.reorder_ms.0
        };

        if dropped {
            self.stats.dropped += 1;
            return FaultDecision::DROP;
        }
        let mut extra = 0;
        if delayed {
            extra += delay_ms;
        }
        if reordered {
            extra += reorder_ms;
        }
        if extra > 0 {
            self.stats.delayed += 1;
        }
        if duplicated {
            self.stats.duplicated += 1;
        }
        FaultDecision {
            drop: false,
            duplicate: duplicated,
            extra_delay_ms: extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> LinkFaults {
        LinkFaults {
            drop: 0.3,
            duplicate: 0.2,
            delay: 0.4,
            delay_ms: (5, 50),
            reorder: 0.1,
            reorder_ms: (60, 120),
        }
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_link_and_occurrence() {
        let run = || {
            let mut plan = FaultPlan::new(99).with_default_link(lossy());
            (0..200)
                .map(|i| plan.decide(i * 7, i as usize % 3, (i as usize + 1) % 3))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn interleaving_across_links_does_not_change_per_link_decisions() {
        // Backend A sends link (0,1) and (1,0) strictly alternating;
        // backend B sends all of (0,1) first. Per-link decision sequences
        // must match — this is what licenses DES↔TCP parity.
        let mut a = FaultPlan::new(7).with_default_link(lossy());
        let mut b = FaultPlan::new(7).with_default_link(lossy());
        let mut a01 = Vec::new();
        let mut a10 = Vec::new();
        for i in 0..50 {
            a01.push(a.decide(i, 0, 1));
            a10.push(a.decide(i + 1000, 1, 0));
        }
        let b01: Vec<_> = (0..50).map(|i| b.decide(i * 3, 0, 1)).collect();
        let b10: Vec<_> = (0..50).map(|i| b.decide(i * 5, 1, 0)).collect();
        assert_eq!(a01, b01);
        assert_eq!(a10, b10);
    }

    #[test]
    fn crash_all_is_one_shared_window_per_node() {
        let plan = FaultPlan::new(3).with_crash_all(&[2, 6, 10], 50, 5_000);
        for node in [2, 6, 10] {
            assert!(plan.is_crashed(node, 60));
            assert_eq!(plan.restart_at(node, 60), Some(5_000));
            assert!(!plan.is_crashed(node, 5_000), "restart is at until_ms");
        }
        assert!(!plan.is_crashed(4, 60), "nodes outside the set are spared");
    }

    #[test]
    fn zero_probability_plan_always_delivers_and_is_inactive() {
        let mut plan = FaultPlan::new(1);
        assert!(!plan.is_active());
        for i in 0..100 {
            assert_eq!(plan.decide(i, 0, 1), FaultDecision::DELIVER);
        }
        assert_eq!(plan.stats, FaultStats::default());
    }

    #[test]
    fn crash_windows_and_restart_times() {
        let plan = FaultPlan::new(2).with_crash(3, 100, 250);
        assert!(plan.is_active());
        assert!(!plan.is_crashed(3, 99));
        assert!(plan.is_crashed(3, 100));
        assert!(plan.is_crashed(3, 249));
        assert!(!plan.is_crashed(3, 250));
        assert!(!plan.is_crashed(2, 150));
        assert_eq!(plan.restart_at(3, 150), Some(250));
        assert_eq!(plan.restart_at(3, 250), None);
    }

    #[test]
    fn partitions_cut_island_boundary_both_ways_only_during_window() {
        let mut plan = FaultPlan::new(3).with_partition(vec![0, 1], 50, 100);
        assert!(plan.partitioned(0, 2, 60));
        assert!(plan.partitioned(2, 1, 60));
        assert!(!plan.partitioned(0, 1, 60), "inside the island is fine");
        assert!(!plan.partitioned(2, 3, 60), "outside the island is fine");
        assert!(!plan.partitioned(0, 2, 49));
        assert!(!plan.partitioned(0, 2, 100));
        assert_eq!(plan.decide(60, 0, 2), FaultDecision::DROP);
        assert_eq!(plan.stats.partition_drops, 1);
    }

    #[test]
    fn stats_add_up() {
        let mut plan = FaultPlan::new(4).with_default_link(LinkFaults {
            drop: 1.0,
            ..LinkFaults::NONE
        });
        for i in 0..10 {
            assert!(plan.decide(i, 0, 1).drop);
        }
        assert_eq!(plan.stats.dropped, 10);
    }

    #[test]
    fn scripted_ordinals_override_only_their_own_message() {
        // A fully reliable plan with one scripted drop: exactly the 2nd
        // message on (0, 1) dies, everything else is untouched.
        let mut plan = FaultPlan::new(11).with_scripted(0, 1, 1, FaultDecision::DROP);
        assert!(plan.is_active(), "a scripted plan can alter deliveries");
        assert_eq!(plan.decide(0, 0, 1), FaultDecision::DELIVER);
        assert_eq!(plan.decide(5, 0, 1), FaultDecision::DROP);
        assert_eq!(plan.decide(9, 0, 1), FaultDecision::DELIVER);
        assert_eq!(plan.decide(9, 1, 0), FaultDecision::DELIVER, "other link");
        assert_eq!(plan.stats.dropped, 1);

        // Scripts beat the link's probability profile (drop: 1.0 would
        // kill everything, the scripted ordinal still delivers + dups).
        let mut lossy_plan = FaultPlan::new(12)
            .with_default_link(LinkFaults {
                drop: 1.0,
                ..LinkFaults::NONE
            })
            .with_scripted(
                2,
                3,
                0,
                FaultDecision {
                    drop: false,
                    duplicate: true,
                    extra_delay_ms: 0,
                },
            );
        let d = lossy_plan.decide(0, 2, 3);
        assert!(!d.drop);
        assert!(d.duplicate);
        assert!(lossy_plan.decide(1, 2, 3).drop, "ordinal 1 is unscripted");
    }

    #[test]
    fn duplicate_only_links_duplicate_without_dropping() {
        let mut plan = FaultPlan::new(5).with_link(
            0,
            1,
            LinkFaults {
                duplicate: 1.0,
                ..LinkFaults::NONE
            },
        );
        let d = plan.decide(0, 0, 1);
        assert!(!d.drop);
        assert!(d.duplicate);
        // The override applies only to its own directed link.
        assert_eq!(plan.decide(0, 1, 0), FaultDecision::DELIVER);
    }
}
