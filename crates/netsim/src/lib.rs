//! Deterministic discrete-event network simulation.
//!
//! The Price $heriff is a distributed system — add-ons, Coordinator,
//! Measurement servers, Database server, proxy clients — whose interesting
//! behaviour (Table 1's old-vs-new throughput, the request-distribution
//! protocol of Fig. 6) is shaped by queueing and latency rather than by
//! real packets. This engine runs the whole system as event-driven state
//! machines on a virtual clock:
//!
//! * [`Simulator`] owns the nodes and the event queue; time only advances
//!   when events fire, so runs are bit-for-bit reproducible under a seed;
//! * [`Node`] is the state-machine trait — `on_message` and `on_timer`,
//!   nothing else, in the spirit of event-driven network stacks;
//! * [`LatencyModel`] prices each (from, to) edge; [`latency`] ships a
//!   constant model, a seeded lognormal jitter model, and a heavy-tailed
//!   "overloaded PlanetLab node" model (§5 observes exactly that tail and
//!   the production system's 2-minute kill bound for it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod engine;
pub mod fault;
pub mod latency;

pub use byzantine::{ByzDecision, ByzProfile, ByzStats, ByzantinePlan, CodecAttack};
pub use engine::{Ctx, Node, NodeId, SimTime, Simulator};
pub use fault::{CrashWindow, FaultDecision, FaultPlan, FaultStats, LinkFaults, Partition};
pub use latency::{ConstantLatency, HeavyTailLatency, LatencyModel, LognormalLatency};
