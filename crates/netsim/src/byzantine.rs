//! Seed-deterministic Byzantine *peer* misbehavior for the delivery path.
//!
//! Where [`crate::fault::FaultPlan`] models an unreliable network (drops,
//! duplicates, delays, crashes), a [`ByzantinePlan`] models unreliable
//! *participants*: peers that lie. Each misbehaving node carries a
//! [`ByzProfile`] describing how it corrupts its own outbound traffic —
//! price equivocation (different values to different recipients),
//! fabricated vantage metadata, stale-replay of old content, flooding,
//! and codec-boundary attacks (malformed / oversized / slow-loris
//! frames). The plan only *decides*; the protocol-typed mutation lives in
//! `sheriff-core` (which knows the message shapes), and both backends
//! apply it at the sender's edge: the DES dispatch path and the TCP
//! reactor's write edge.
//!
//! Determinism contract, identical to `FaultPlan`'s: every decision is a
//! pure function of `(plan seed, from, to, n)` where `n` is the
//! per-directed-link occurrence counter, drawn from a *private* hashed
//! RNG stream. A plan with no profiles (or all-zero profiles) is a
//! strict no-op: [`ByzantinePlan::is_active`] is `false` and no driver
//! consults it at all. Because decisions are counted at the *sender's*
//! edge — before network faults, before any socket — the running
//! [`ByzStats`] totals are identical across backends by construction.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How one Byzantine node corrupts its outbound traffic. All
/// probabilities are per-eligible-message; `flood_copies` is a count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ByzProfile {
    /// Probability an outbound price reply is *equivocated*: skewed by a
    /// recipient-dependent amount, so two recipients see two different
    /// prices for the same fetch.
    pub equivocate: f64,
    /// Probability the vantage metadata is fabricated (identity / geo /
    /// currency envelope forged).
    pub fabricate: f64,
    /// Probability the payload is replaced with stale replayed content
    /// (old page bytes, expired doppelganger tokens).
    pub stale_replay: f64,
    /// Junk messages injected alongside each eligible send (Ack-flood /
    /// request-flood). Zero disables.
    pub flood_copies: u32,
    /// Probability the frame is written malformed (valid length prefix,
    /// garbage payload) — a codec-boundary attack. Under DES, where no
    /// codec exists, the message is simply destroyed.
    pub codec_garbage: f64,
    /// Probability the frame lies about its length (`MAX_FRAME_LEN + 1`).
    pub codec_oversize: f64,
    /// Probability the frame is written partially and abandoned
    /// (slow-loris: the receiver waits on bytes that never come).
    pub slow_loris: f64,
}

impl ByzProfile {
    /// A perfectly honest node (all probabilities zero, no flooding).
    pub const HONEST: ByzProfile = ByzProfile {
        equivocate: 0.0,
        fabricate: 0.0,
        stale_replay: 0.0,
        flood_copies: 0,
        codec_garbage: 0.0,
        codec_oversize: 0.0,
        slow_loris: 0.0,
    };

    /// True when every knob is zero.
    pub fn is_honest(&self) -> bool {
        self.equivocate == 0.0
            && self.fabricate == 0.0
            && self.stale_replay == 0.0
            && self.flood_copies == 0
            && self.codec_garbage == 0.0
            && self.codec_oversize == 0.0
            && self.slow_loris == 0.0
    }
}

impl Default for ByzProfile {
    fn default() -> Self {
        ByzProfile::HONEST
    }
}

/// Which codec-boundary attack a send was turned into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecAttack {
    /// Well-formed length prefix, garbage payload bytes.
    Garbage,
    /// Length prefix claiming more than the receiver's frame cap.
    Oversize,
    /// Partial frame then silence (slow-loris).
    SlowLoris,
}

/// What the plan decided for one outbound message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByzDecision {
    /// Recipient-dependent skew salt when equivocating.
    pub equivocate_salt: Option<u64>,
    /// Forge the vantage metadata.
    pub fabricate: bool,
    /// Replace the payload with stale replayed content.
    pub stale_replay: bool,
    /// Junk messages to inject alongside this send.
    pub flood_copies: u32,
    /// Turn the frame itself into a codec-boundary attack (the payload
    /// never reaches the receiving machine on either backend).
    pub codec: Option<CodecAttack>,
    /// Occurrence number of this message on its directed link — the
    /// mutation layer salts deterministic junk (tags, token bits) with it.
    pub occurrence: u64,
}

impl ByzDecision {
    /// Honest delivery, untouched.
    pub const HONEST: ByzDecision = ByzDecision {
        equivocate_salt: None,
        fabricate: false,
        stale_replay: false,
        flood_copies: 0,
        codec: None,
        occurrence: 0,
    };

    /// True when the decision leaves the message untouched.
    pub fn is_honest(&self) -> bool {
        self.equivocate_salt.is_none()
            && !self.fabricate
            && !self.stale_replay
            && self.flood_copies == 0
            && self.codec.is_none()
    }
}

/// Running totals kept by the plan itself. Counted at decision time —
/// the sender's edge — so the same plan yields the same totals on the
/// DES and TCP backends regardless of what the defense layer later
/// rejects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByzStats {
    /// Messages skewed per-recipient.
    pub equivocated: u64,
    /// Messages with forged vantage metadata.
    pub fabricated: u64,
    /// Messages replaced with stale replayed content.
    pub stale_replayed: u64,
    /// Junk messages injected by flooding.
    pub flooded: u64,
    /// Frames destroyed at the codec boundary (garbage + oversize +
    /// slow-loris).
    pub codec_attacks: u64,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-node misbehavior schedule. Nodes are identified by the same
/// fault indices `FaultPlan` uses (`coordinator, aggregator, db?,
/// servers…, ipcs…, ppcs…`), so one index map serves both plans.
#[derive(Clone, Debug, Default)]
pub struct ByzantinePlan {
    seed: u64,
    profiles: BTreeMap<usize, ByzProfile>,
    /// Per-directed-link occurrence counters (send order on a link is
    /// FIFO on both backends, so the counters advance identically).
    counts: BTreeMap<(usize, usize), u64>,
    /// Running decision totals.
    pub stats: ByzStats,
}

impl ByzantinePlan {
    /// An empty (honest) plan under `seed`.
    pub fn new(seed: u64) -> Self {
        ByzantinePlan {
            seed,
            profiles: BTreeMap::new(),
            counts: BTreeMap::new(),
            stats: ByzStats::default(),
        }
    }

    /// Marks node `node` Byzantine with `profile`.
    pub fn with_profile(mut self, node: usize, profile: ByzProfile) -> Self {
        self.profiles.insert(node, profile);
        self
    }

    /// True when any node carries a non-honest profile. Drivers skip the
    /// plan entirely when inactive, which is what makes an all-zero plan
    /// a strict no-op.
    pub fn is_active(&self) -> bool {
        self.profiles.values().any(|p| !p.is_honest())
    }

    /// Nodes with a non-honest profile, ascending.
    pub fn byzantine_nodes(&self) -> Vec<usize> {
        self.profiles
            .iter()
            .filter(|(_, p)| !p.is_honest())
            .map(|(&n, _)| n)
            .collect()
    }

    /// Decides the corruption of the next message on the directed link
    /// `from → to`. Advances the link's occurrence counter; decisions
    /// never touch any RNG outside this call. `price_bearing` marks
    /// messages whose payload carries a price/metadata surface the
    /// content arms (equivocate / fabricate / stale-replay) can attack;
    /// flooding and codec attacks apply to any message.
    pub fn decide(&mut self, from: usize, to: usize, price_bearing: bool) -> ByzDecision {
        let n = self.counts.entry((from, to)).or_insert(0);
        let occurrence = *n;
        *n += 1;

        let Some(profile) = self.profiles.get(&from).copied() else {
            return ByzDecision::HONEST;
        };
        if profile.is_honest() {
            return ByzDecision::HONEST;
        }

        // One private RNG per message, derived purely from (seed, link,
        // n) — the FaultPlan recipe, under a distinct domain separator so
        // combining both plans never correlates their draws.
        let per_msg = splitmix64(
            self.seed
                ^ 0xB12A_17EE_5EED_C0DE
                ^ splitmix64(((from as u64) << 32) | to as u64).wrapping_add(occurrence),
        );
        let mut rng = StdRng::seed_from_u64(per_msg);

        // Fixed draw order so enabling one arm never shifts another.
        let equivocate = profile.equivocate > 0.0 && rng.gen_bool(profile.equivocate.min(1.0));
        let fabricate = profile.fabricate > 0.0 && rng.gen_bool(profile.fabricate.min(1.0));
        let stale = profile.stale_replay > 0.0 && rng.gen_bool(profile.stale_replay.min(1.0));
        let garbage = profile.codec_garbage > 0.0 && rng.gen_bool(profile.codec_garbage.min(1.0));
        let oversize =
            profile.codec_oversize > 0.0 && rng.gen_bool(profile.codec_oversize.min(1.0));
        let loris = profile.slow_loris > 0.0 && rng.gen_bool(profile.slow_loris.min(1.0));
        // The skew salt binds to the recipient: the same fetch answered
        // to two destinations lands on two different link streams and
        // thus two different salts — that *is* the equivocation.
        let salt = splitmix64(per_msg ^ (to as u64));

        let mut d = ByzDecision {
            occurrence,
            ..ByzDecision::HONEST
        };
        // Codec attacks destroy the frame outright and dominate the
        // content arms; precedence garbage > oversize > slow-loris.
        if garbage {
            d.codec = Some(CodecAttack::Garbage);
        } else if oversize {
            d.codec = Some(CodecAttack::Oversize);
        } else if loris {
            d.codec = Some(CodecAttack::SlowLoris);
        }
        if let Some(_attack) = d.codec {
            self.stats.codec_attacks += 1;
            return d;
        }
        if price_bearing {
            if equivocate {
                d.equivocate_salt = Some(salt);
                self.stats.equivocated += 1;
            }
            if fabricate {
                d.fabricate = true;
                self.stats.fabricated += 1;
            }
            if stale {
                d.stale_replay = true;
                self.stats.stale_replayed += 1;
            }
        }
        if profile.flood_copies > 0 {
            d.flood_copies = profile.flood_copies;
            self.stats.flooded += u64::from(profile.flood_copies);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lying(p: f64) -> ByzProfile {
        ByzProfile {
            equivocate: p,
            fabricate: p,
            stale_replay: p,
            ..ByzProfile::HONEST
        }
    }

    #[test]
    fn empty_and_all_zero_plans_are_inactive() {
        assert!(!ByzantinePlan::new(7).is_active());
        let p = ByzantinePlan::new(7).with_profile(3, ByzProfile::HONEST);
        assert!(!p.is_active());
        assert!(p.byzantine_nodes().is_empty());
    }

    #[test]
    fn honest_nodes_are_never_corrupted() {
        let mut p = ByzantinePlan::new(7).with_profile(3, lying(1.0));
        for _ in 0..50 {
            assert!(p.decide(4, 0, true).is_honest(), "node 4 is honest");
        }
        assert_eq!(p.stats, ByzStats::default());
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_link_and_occurrence() {
        let mut a = ByzantinePlan::new(42).with_profile(3, lying(0.5));
        let mut b = ByzantinePlan::new(42).with_profile(3, lying(0.5));
        for i in 0..100 {
            assert_eq!(a.decide(3, 0, true), b.decide(3, 0, true), "msg {i}");
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn equivocation_salt_differs_per_recipient() {
        let mut p = ByzantinePlan::new(42).with_profile(
            3,
            ByzProfile {
                equivocate: 1.0,
                ..ByzProfile::HONEST
            },
        );
        let to_a = p.decide(3, 0, true).equivocate_salt.expect("skewed");
        let to_b = p.decide(3, 1, true).equivocate_salt.expect("skewed");
        assert_ne!(to_a, to_b, "two recipients, two prices");
    }

    #[test]
    fn non_price_bearing_messages_escape_the_content_arms() {
        let mut p = ByzantinePlan::new(42).with_profile(3, lying(1.0));
        let d = p.decide(3, 0, false);
        assert!(d.is_honest());
        assert_eq!(p.stats.equivocated, 0);
    }

    #[test]
    fn flooding_and_codec_attacks_apply_to_any_message() {
        let mut p = ByzantinePlan::new(42).with_profile(
            3,
            ByzProfile {
                flood_copies: 4,
                ..ByzProfile::HONEST
            },
        );
        let d = p.decide(3, 0, false);
        assert_eq!(d.flood_copies, 4);
        assert_eq!(p.stats.flooded, 4);

        let mut p = ByzantinePlan::new(42).with_profile(
            3,
            ByzProfile {
                codec_oversize: 1.0,
                ..ByzProfile::HONEST
            },
        );
        let d = p.decide(3, 0, false);
        assert_eq!(d.codec, Some(CodecAttack::Oversize));
        assert_eq!(p.stats.codec_attacks, 1);
    }

    #[test]
    fn codec_attacks_dominate_content_arms() {
        let mut p = ByzantinePlan::new(42).with_profile(
            3,
            ByzProfile {
                equivocate: 1.0,
                codec_garbage: 1.0,
                flood_copies: 2,
                ..ByzProfile::HONEST
            },
        );
        let d = p.decide(3, 0, true);
        assert_eq!(d.codec, Some(CodecAttack::Garbage));
        assert!(d.equivocate_salt.is_none(), "frame is destroyed anyway");
        assert_eq!(d.flood_copies, 0, "no flood rides a destroyed frame");
    }

    #[test]
    fn occurrence_counters_advance_even_for_honest_senders() {
        // The counter is per-link bookkeeping, not per-profile: adding a
        // profile to a node mid-plan must not rewind its history.
        let mut p = ByzantinePlan::new(42).with_profile(3, lying(1.0));
        let first = p.decide(3, 0, true);
        let second = p.decide(3, 0, true);
        assert_eq!(first.occurrence, 0);
        assert_eq!(second.occurrence, 1);
    }
}
