//! Property tests for the market: pricing determinism, strategy-class
//! invariants, and page extractability under arbitrary fetch contexts.

use proptest::prelude::*;

use sheriff_currency::{detect_price, detect_price_with_hint};
use sheriff_geo::{Country, IpAllocator};
use sheriff_html::Document;
use sheriff_market::pricing::{Browser, FetchContext, Os};
use sheriff_market::world::WorldConfig;
use sheriff_market::{
    format_price, CookieJar, FetchResult, PriceFormat, ProductId, UserAgent, World,
};

fn arb_country() -> impl Strategy<Value = Country> {
    (0..Country::count()).prop_map(|i| Country::all().nth(i).expect("in range"))
}

fn ctx_for(jar: &CookieJar, country: Country, seq: u64, day: u32, quarter: u8) -> FetchContext<'_> {
    let mut alloc = IpAllocator::new();
    FetchContext {
        ip: alloc.allocate(country, 0),
        country,
        cookies: jar,
        user_agent: UserAgent {
            os: Os::Linux,
            browser: Browser::Firefox,
        },
        logged_in: false,
        day,
        time_quarter: quarter,
        request_seq: seq,
        client_id: seq,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pricing_is_a_pure_function_of_context(
        country in arb_country(),
        seq in 0u64..10_000,
        day in 0u32..60,
        quarter in 0u8..4,
        product in 0u32..8,
    ) {
        let world = World::build(&WorldConfig::small(), 5);
        let jar = CookieJar::new();
        let mut c = ctx_for(&jar, country, seq, day, quarter);
        c.time_quarter = quarter;
        for domain in ["steampowered.com", "jcpenney.com", "amazon.com"] {
            let r = world.retailer(domain).expect("domain");
            let a = r.price_eur(ProductId(product), &c);
            let b = r.price_eur(ProductId(product), &c);
            prop_assert_eq!(a, b, "{} nondeterministic", domain);
        }
    }

    #[test]
    fn prices_are_positive_and_bounded(
        country in arb_country(),
        seq in 0u64..10_000,
        product in 0u32..8,
    ) {
        let world = World::build(&WorldConfig::small(), 5);
        let jar = CookieJar::new();
        let c = ctx_for(&jar, country, seq, 0, 0);
        for domain in ["steampowered.com", "abercrombie.com", "chegg.com"] {
            let r = world.retailer(domain).expect("domain");
            let base = r.product(ProductId(product)).expect("product").base_price_eur;
            let p = r.price_eur(ProductId(product), &c).expect("priced");
            prop_assert!(p > 0.0);
            // No strategy stack in this world moves a price beyond 5x base.
            prop_assert!(p < base * 5.0, "{domain}: {p} vs base {base}");
        }
    }

    #[test]
    fn every_fetch_yields_an_extractable_parsable_price(
        country in arb_country(),
        seq in 0u64..10_000,
        product in 0u32..8,
    ) {
        let mut world = World::build(&WorldConfig::small(), 5);
        let rates = world.rates.clone();
        let jar = CookieJar::new();
        let c = ctx_for(&jar, country, seq, 0, 0);
        for domain in ["steampowered.com", "jcpenney.com", "luisaviaroma.com"] {
            let template = world.retailer(domain).expect("d").template;
            let r = world.retailer_mut(domain).expect("domain");
            let result = r
                .fetch(ProductId(product), &c, 0, &rates, 0.3, seq)
                .expect("product");
            let FetchResult::Page { html, price_quoted, currency, .. } = result else {
                continue; // no bot detectors in this set
            };
            let doc = Document::parse(&html);
            let (tag, class) = sheriff_market::page::price_markup(template);
            let el = doc.find_by_class(tag, class).expect("price element");
            let text = doc.text_content(el);
            let detected =
                detect_price_with_hint(&text, country.currency()).expect("parses");
            prop_assert!((detected.amount - price_quoted).abs() < 0.005,
                "{domain}: printed {price_quoted} {currency}, parsed {}", detected.amount);
        }
    }

    #[test]
    fn format_price_roundtrips_for_all_formats(
        amount_cents in 1u64..100_000_000,
        fmt_idx in 0usize..4,
    ) {
        let amount = amount_cents as f64 / 100.0;
        let fmt = [
            PriceFormat::CodeConcat,
            PriceFormat::CodeSuffix,
            PriceFormat::SymbolPrefix,
            PriceFormat::SymbolSuffixEu,
        ][fmt_idx];
        for cur in ["EUR", "USD", "JPY"] {
            let text = format_price(amount, cur, fmt);
            if text.chars().count() >= 25 {
                continue; // the selection-length guard would refuse it anyway
            }
            let detected = detect_price(&text).expect("parses");
            let expect = if cur == "JPY" { amount.round() } else { amount };
            prop_assert!((detected.amount - expect).abs() < 0.005, "{text}");
        }
    }

    #[test]
    fn uniform_stores_never_vary(
        c1 in arb_country(),
        c2 in arb_country(),
        seq1 in 0u64..10_000,
        seq2 in 0u64..10_000,
        product in 0u32..8,
    ) {
        let world = World::build(&WorldConfig::small(), 5);
        let domain = world
            .domains()
            .find(|d| d.starts_with("store-"))
            .expect("plain store")
            .to_string();
        let jar = CookieJar::new();
        let r = world.retailer(&domain).expect("domain");
        let p1 = r.price_eur(ProductId(product), &ctx_for(&jar, c1, seq1, 0, 0));
        let p2 = r.price_eur(ProductId(product), &ctx_for(&jar, c2, seq2, 3, 2));
        prop_assert_eq!(p1, p2, "uniform store varied");
    }
}
