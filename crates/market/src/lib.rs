//! The e-commerce world simulator.
//!
//! The deployed $heriff measured 1994 live e-commerce sites; this crate is
//! the synthetic equivalent, generating retailers whose *pricing behaviours*
//! span everything the paper observed so that every detector and analysis
//! path can run against known ground truth:
//!
//! * **location-based PD** — per-country multiplicative factors (×2.55
//!   steampowered-style extremes, Table 3);
//! * **A/B testing** — per-request or sticky-bucket price arms (the §7.4
//!   France-uniform vs UK-biased contrast);
//! * **VAT-by-identification** — logged-in customers see category VAT for
//!   their country, guests see base prices (§7.3's amazon case);
//! * **PDI-PD** — tracker-informed markups, the behaviour the paper hunted
//!   for; the simulator can generate it as a positive control even though
//!   the paper concluded the wild domains don't do it;
//! * **temporal strategies** — successive small drops with rare large jumps
//!   (Fig. 14) and slow drift (Fig. 15), plus intra-day algorithmic
//!   repricing;
//! * plus the *plumbing* the measurement system must survive: localized
//!   currencies and formats, layout/ad noise in product pages, third-party
//!   trackers, cookies, and per-IP bot detection with CAPTCHAs (§3.2).
//!
//! Everything is deterministic: randomized behaviours (A/B arms, jump days,
//! ad blocks) are driven by split-mix hashes of stable identifiers, never by
//! shared mutable RNG state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bot;
pub mod cookies;
pub mod page;
pub mod pricing;
pub mod product;
pub mod retailer;
pub mod tracker;
pub mod world;

pub use cookies::{Cookie, CookieJar};
pub use page::{format_price, PriceFormat};
pub use pricing::{FetchContext, PricingStrategy, UserAgent};
pub use product::{Product, ProductId};
pub use retailer::{FetchResult, Retailer};
pub use world::World;

/// SplitMix64: the deterministic hash behind every "random" retailer
/// behaviour. Public because experiments reuse it for stable assignment.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hashes a sequence of values into one word (order-sensitive).
pub fn hash_mix(parts: &[u64]) -> u64 {
    let mut acc = 0x51ed_2701_93a4_c1e7u64;
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// Hashes a string deterministically (FNV-1a folded through splitmix).
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_eq!(hash_mix(&[1, 2, 3]), hash_mix(&[1, 2, 3]));
        assert_eq!(hash_str("amazon.com"), hash_str("amazon.com"));
    }

    #[test]
    fn hashes_are_order_sensitive() {
        assert_ne!(hash_mix(&[1, 2]), hash_mix(&[2, 1]));
        assert_ne!(hash_str("a.com"), hash_str("b.com"));
    }

    #[test]
    fn hash_distribution_rough_uniformity() {
        // Buckets of consecutive inputs should spread.
        let mut buckets = [0u32; 16];
        for i in 0..16_000u64 {
            buckets[(splitmix64(i) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
