//! World construction: the synthetic equivalent of the 1994 live domains.
//!
//! The world carries ground truth: every retailer's strategy stack is
//! known, so analyses can be validated (did the pipeline flag exactly the
//! discriminating domains?). The roster mirrors the paper:
//!
//! * the **case-study domains** §6–§7 names, with their measured shapes —
//!   steampowered's ×2.55, abercrombie's ×2.38, luisaviaroma's €1201
//!   absolute gap, digitalrev's €34.5k–46k Phase One camera, jcpenney's
//!   UK-sticky 7% A/B arms, chegg's 3–7% spread, amazon's VAT-by-login;
//! * ~63 further location-discriminating domains (76 total, §6.2);
//! * plain domains that price uniformly (the other ~96% of the 1994);
//! * the Alexa top-400 (§7.6), none of which vary within a country.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sheriff_currency::FixedRates;
use sheriff_geo::{Country, ProductCategory};

use crate::bot::BotDetector;
use crate::page::PriceFormat;
use crate::pricing::PricingStrategy;
use crate::product::{generate_catalog, Product, ProductId};
use crate::retailer::Retailer;
use crate::tracker::Tracker;

/// Sizing knobs for world construction.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Generic location-discriminating domains (besides the named ones).
    pub n_generic_discriminating: usize,
    /// Uniformly-priced domains.
    pub n_plain: usize,
    /// Alexa-top uniformly-priced domains (§7.6's sweep set).
    pub n_alexa: usize,
    /// Products per generated retailer.
    pub products_per_retailer: usize,
}

impl WorldConfig {
    /// Paper-scale world: 1994 checked domains (76 of them price-
    /// discriminating, §6.2) + 400 Alexa.
    pub fn paper_scale() -> Self {
        WorldConfig {
            n_generic_discriminating: 62,
            n_plain: 1918,
            n_alexa: 400,
            products_per_retailer: 30,
        }
    }

    /// Small world for unit/integration tests.
    pub fn small() -> Self {
        WorldConfig {
            n_generic_discriminating: 5,
            n_plain: 12,
            n_alexa: 10,
            products_per_retailer: 8,
        }
    }
}

/// The synthetic e-commerce world.
///
/// ```
/// use sheriff_market::world::{World, WorldConfig};
///
/// let world = World::build(&WorldConfig::small(), 42);
/// // Ground truth is known by construction: which domains discriminate,
/// // which vary within a country, which use personal data.
/// assert!(world.discriminating_domains().contains(&"steampowered.com"));
/// assert!(world.within_country_domains().contains(&"jcpenney.com"));
/// assert!(world.pdipd_domains().is_empty());
/// ```
pub struct World {
    retailers: Vec<Retailer>,
    index: HashMap<String, usize>,
    /// The exchange-rate snapshot every storefront quotes with.
    pub rates: FixedRates,
}

impl World {
    /// Builds a world. All randomness flows from `seed`.
    pub fn build(cfg: &WorldConfig, seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut retailers = Vec::new();

        named_case_studies(&mut rng, &mut retailers);

        // Generic location discriminators: random factor spreads.
        for i in 0..cfg.n_generic_discriminating {
            let spread = 1.1 + rng.gen::<f64>() * 0.9; // 1.1–2.0
            let mut factors = BTreeMap::new();
            for c in Country::all() {
                if rng.gen::<f64>() < 0.4 {
                    let f = 1.0 + rng.gen::<f64>() * (spread - 1.0);
                    factors.insert(c.code().to_string(), f);
                }
            }
            let home = random_country(&mut rng);
            retailers.push(Retailer::new(
                &format!("geo-store-{i}.example"),
                home,
                rng.gen::<f64>() < 0.5,
                random_format(&mut rng),
                rng.gen_range(0..5),
                generate_catalog(
                    cfg.products_per_retailer,
                    random_category(&mut rng),
                    &mut rng,
                ),
                vec![PricingStrategy::CountryMultiplier {
                    factors,
                    dampen_expensive: true,
                }],
                vec![Tracker::by_index(rng.gen_range(0..8))],
                None,
            ));
        }

        // Plain domains: uniform pricing worldwide.
        for i in 0..cfg.n_plain {
            retailers.push(Retailer::new(
                &format!("store-{i}.example"),
                random_country(&mut rng),
                rng.gen::<f64>() < 0.5,
                random_format(&mut rng),
                rng.gen_range(0..5),
                generate_catalog(
                    cfg.products_per_retailer,
                    random_category(&mut rng),
                    &mut rng,
                ),
                vec![],
                vec![Tracker::by_index(rng.gen_range(0..8))],
                None,
            ));
        }

        // Alexa top-N: uniform pricing (the paper found no within-country
        // variation among them), but busy sites with bot defenses.
        for i in 0..cfg.n_alexa {
            retailers.push(Retailer::new(
                &format!("alexa-{i:03}.example"),
                random_country(&mut rng),
                true,
                random_format(&mut rng),
                rng.gen_range(0..5),
                generate_catalog(
                    cfg.products_per_retailer,
                    random_category(&mut rng),
                    &mut rng,
                ),
                vec![],
                vec![Tracker::by_index(rng.gen_range(0..8))],
                Some(BotDetector::new(60_000, 120)),
            ));
        }

        let index = retailers
            .iter()
            .enumerate()
            .map(|(i, r)| (r.domain.clone(), i))
            .collect();
        World {
            retailers,
            index,
            rates: FixedRates::paper_era(),
        }
    }

    /// Retailer by domain.
    pub fn retailer(&self, domain: &str) -> Option<&Retailer> {
        self.index.get(domain).and_then(|&i| self.retailers.get(i))
    }

    /// Mutable retailer by domain.
    pub fn retailer_mut(&mut self, domain: &str) -> Option<&mut Retailer> {
        let i = *self.index.get(domain)?;
        self.retailers.get_mut(i)
    }

    /// All domains, in construction order (named case studies first).
    pub fn domains(&self) -> impl Iterator<Item = &str> {
        self.retailers.iter().map(|r| r.domain.as_str())
    }

    /// Number of retailers.
    pub fn len(&self) -> usize {
        self.retailers.len()
    }

    /// True when the world is empty.
    pub fn is_empty(&self) -> bool {
        self.retailers.is_empty()
    }

    /// Ground truth: domains whose stack can vary prices across locations.
    pub fn discriminating_domains(&self) -> Vec<&str> {
        self.retailers
            .iter()
            .filter(|r| !r.strategies.is_empty())
            .map(|r| r.domain.as_str())
            .collect()
    }

    /// Ground truth: domains that can vary prices *within* a country.
    pub fn within_country_domains(&self) -> Vec<&str> {
        self.retailers
            .iter()
            .filter(|r| {
                r.strategies
                    .iter()
                    .any(super::pricing::PricingStrategy::within_country_varying)
            })
            .map(|r| r.domain.as_str())
            .collect()
    }

    /// Ground truth: domains using personal data (PDI-PD).
    pub fn pdipd_domains(&self) -> Vec<&str> {
        self.retailers
            .iter()
            .filter(|r| {
                r.strategies
                    .iter()
                    .any(super::pricing::PricingStrategy::personal_data_driven)
            })
            .map(|r| r.domain.as_str())
            .collect()
    }

    /// The Alexa sweep set.
    pub fn alexa_domains(&self) -> Vec<&str> {
        self.retailers
            .iter()
            .filter(|r| r.domain.starts_with("alexa-"))
            .map(|r| r.domain.as_str())
            .collect()
    }

    /// Adds a retailer after construction (tests and positive controls).
    pub fn add_retailer(&mut self, retailer: Retailer) {
        self.index
            .insert(retailer.domain.clone(), self.retailers.len());
        self.retailers.push(retailer);
    }
}

fn random_country(rng: &mut StdRng) -> Country {
    let all: Vec<Country> = Country::all().collect();
    all[rng.gen_range(0..all.len())]
}

fn random_category(rng: &mut StdRng) -> ProductCategory {
    ProductCategory::ALL[rng.gen_range(0..ProductCategory::ALL.len())]
}

fn random_format(rng: &mut StdRng) -> PriceFormat {
    match rng.gen_range(0..4) {
        0 => PriceFormat::CodeConcat,
        1 => PriceFormat::CodeSuffix,
        2 => PriceFormat::SymbolPrefix,
        _ => PriceFormat::SymbolSuffixEu,
    }
}

/// Multiplicative factor maps for the named domains, shaped to the paper's
/// Table 3 / Fig. 9 observations.
fn factor_map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(c, f)| (c.to_string(), *f)).collect()
}

fn named_case_studies(rng: &mut StdRng, out: &mut Vec<Retailer>) {
    // steampowered.com — computer games, ×2.55 extremes (Table 3), regional
    // pricing in local currencies.
    out.push(Retailer::new(
        "steampowered.com",
        Country::US,
        true,
        PriceFormat::SymbolPrefix,
        1,
        generate_catalog(30, ProductCategory::Games, rng),
        vec![PricingStrategy::CountryMultiplier {
            factors: factor_map(&[
                ("US", 1.0),
                ("BR", 1.05),
                ("ES", 1.55),
                ("FR", 1.55),
                ("DE", 1.60),
                ("GB", 1.70),
                ("JP", 1.45),
                ("NZ", 2.55),
                ("CH", 2.10),
                ("NO", 2.30),
            ]),
            dampen_expensive: true,
        }],
        vec![Tracker::by_index(0)],
        None,
    ));

    // abercrombie.com — clothing, ×2.38, median diff near 40% (Fig. 9).
    out.push(Retailer::new(
        "abercrombie.com",
        Country::US,
        true,
        PriceFormat::SymbolPrefix,
        0,
        generate_catalog(30, ProductCategory::Clothing, rng),
        vec![PricingStrategy::CountryMultiplier {
            factors: factor_map(&[
                ("US", 1.0),
                ("ES", 1.40),
                ("FR", 1.42),
                ("DE", 1.45),
                ("GB", 1.38),
                ("JP", 2.38),
                ("KR", 2.20),
                ("HK", 1.80),
                ("CA", 1.15),
            ]),
            dampen_expensive: true,
        }],
        vec![Tracker::by_index(1)],
        None,
    ));

    // luisaviaroma.com — luxury clothing, ×2.32 / €1201 absolute (Table 3).
    out.push(Retailer::new(
        "luisaviaroma.com",
        Country::IT,
        false,
        PriceFormat::SymbolSuffixEu,
        2,
        generate_catalog(30, ProductCategory::Clothing, rng),
        vec![PricingStrategy::CountryMultiplier {
            factors: factor_map(&[
                ("IT", 1.0),
                ("ES", 1.05),
                ("US", 1.65),
                ("JP", 2.32),
                ("KR", 2.18),
                ("RU", 1.90),
                ("CN", 2.05),
            ]),
            dampen_expensive: true,
        }],
        vec![Tracker::by_index(2)],
        None,
    ));

    // digitalrev.com — cameras; the €34.5k Phase One IQ280 case (§6.2).
    let mut digitalrev_products = generate_catalog(29, ProductCategory::Electronics, rng);
    digitalrev_products.push(Product {
        id: ProductId(29),
        name: "Phase One IQ280 digital back".into(),
        category: ProductCategory::Electronics,
        base_price_eur: 34_500.0,
        popularity: 0.9,
    });
    out.push(Retailer::new(
        "digitalrev.com",
        Country::HK,
        true,
        PriceFormat::CodeConcat,
        1,
        digitalrev_products,
        vec![PricingStrategy::CountryMultiplier {
            factors: factor_map(&[
                ("HK", 1.0),
                ("ES", 1.0),
                ("FR", 1.0),
                ("DE", 1.0),
                ("US", 1.19),
                ("CA", 1.30),
                ("BR", 1.34),
            ]),
            // The camera price points are the paper's own observations
            // (€34.5k EU → €46k BR); no synthetic dampening on top.
            dampen_expensive: false,
        }],
        vec![Tracker::by_index(3)],
        None,
    ));

    // Other Table 3 / Fig. 9 domains with moderate spreads.
    for (domain, home, cat, top_factor) in [
        (
            "overstock.com",
            Country::US,
            ProductCategory::Household,
            1.48,
        ),
        (
            "suitsupply.com",
            Country::NL,
            ProductCategory::Clothing,
            2.08,
        ),
        (
            "aeropostale.com",
            Country::US,
            ProductCategory::Clothing,
            2.16,
        ),
        (
            "raffaello-network.com",
            Country::IT,
            ProductCategory::Accessories,
            2.03,
        ),
        (
            "bookdepository.com",
            Country::GB,
            ProductCategory::Books,
            2.03,
        ),
        ("anntaylor.com", Country::US, ProductCategory::Clothing, 4.2),
        (
            "tuscanyleather.it",
            Country::IT,
            ProductCategory::Accessories,
            1.9,
        ),
    ] {
        let mut factors = BTreeMap::new();
        for c in Country::all() {
            if c == home {
                continue;
            }
            if rng.gen::<f64>() < 0.5 {
                factors.insert(
                    c.code().to_string(),
                    1.0 + rng.gen::<f64>() * (top_factor - 1.0),
                );
            }
        }
        // Ensure the extreme factor exists somewhere.
        factors.insert("JP".to_string(), top_factor);
        // These storefronts print explicit ISO codes: a non-localizing
        // retailer with a bare `$` symbol would be low-confidence at every
        // vantage point and drop out of the automated analysis entirely
        // (the paper handled those via the red-asterisk manual converter).
        out.push(Retailer::new(
            domain,
            home,
            rng.gen::<f64>() < 0.5,
            PriceFormat::CodeConcat,
            rng.gen_range(0..5),
            generate_catalog(30, cat, rng),
            vec![PricingStrategy::CountryMultiplier {
                factors,
                dampen_expensive: true,
            }],
            vec![Tracker::by_index(rng.gen_range(0..8))],
            None,
        ));
    }

    // jcpenney.com — §7.3/§7.4/§7.5: non-sticky small arms on the
    // continent, sticky 7% arms in the UK, daily drift with rare jumps,
    // mild intraday repricing (3.7% daily fluctuation).
    out.push(Retailer::new(
        "jcpenney.com",
        Country::US,
        true,
        PriceFormat::SymbolPrefix,
        0,
        generate_catalog(30, ProductCategory::Clothing, rng),
        vec![
            PricingStrategy::AbTest {
                amplitude: 0.0,
                arms: 4,
                sticky: false,
                country_amplitude: factor_map(&[
                    ("ES", 0.009),
                    ("FR", 0.008),
                    ("DE", 0.008),
                    ("US", 0.01),
                ]),
                product_fraction: 0.62,
                country_fraction: factor_map(&[
                    ("ES", 0.59),
                    ("FR", 0.67),
                    ("GB", 0.58),
                    ("DE", 0.35),
                ]),
            },
            PricingStrategy::AbTest {
                amplitude: 0.0,
                arms: 2,
                sticky: true,
                country_amplitude: factor_map(&[("GB", 0.035)]),
                product_fraction: 0.58,
                country_fraction: BTreeMap::new(),
            },
            PricingStrategy::TemporalDrift {
                daily_drift: -0.004,
                jump_prob: 0.025,
                jump_size: 0.28,
            },
            PricingStrategy::IntradayRepricing { amplitude: 0.034 },
        ],
        vec![Tracker::by_index(0), Tracker::by_index(1)],
        None,
    ));

    // chegg.com — textbook rentals: 3–7% uniform spread, strongest in
    // Spain; slow temporal drift, 8.3% daily fluctuation (Fig. 15).
    // Textbook rentals sit in the €10–€100 band ("typical prices for
    // textbooks carried by the site", §7.3).
    let mut chegg_products = generate_catalog(30, ProductCategory::Books, rng);
    for p in &mut chegg_products {
        if p.base_price_eur > 120.0 {
            p.base_price_eur = 10.0 + (p.base_price_eur % 90.0);
        }
    }
    out.push(Retailer::new(
        "chegg.com",
        Country::US,
        true,
        PriceFormat::SymbolPrefix,
        3,
        chegg_products,
        vec![
            PricingStrategy::AbTest {
                amplitude: 0.0,
                arms: 5,
                sticky: false,
                country_amplitude: factor_map(&[("ES", 0.025), ("GB", 0.025), ("DE", 0.02)]),
                product_fraction: 0.0,
                country_fraction: factor_map(&[("ES", 0.39), ("GB", 0.16), ("DE", 0.025)]),
            },
            PricingStrategy::TemporalDrift {
                daily_drift: -0.001,
                jump_prob: 0.02,
                jump_size: 0.2,
            },
            PricingStrategy::IntradayRepricing { amplitude: 0.075 },
        ],
        vec![Tracker::by_index(2)],
        None,
    ));

    // amazon.com — VAT applied when the customer is identified (§7.3).
    out.push(Retailer::new(
        "amazon.com",
        Country::US,
        true,
        PriceFormat::SymbolPrefix,
        4,
        generate_catalog(30, ProductCategory::Electronics, rng),
        vec![PricingStrategy::VatWhenIdentified],
        vec![Tracker::by_index(0), Tracker::by_index(3)],
        None,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cookies::CookieJar;
    use crate::pricing::{Browser, FetchContext, Os, UserAgent};
    use sheriff_geo::IpAllocator;

    fn ctx<'a>(jar: &'a CookieJar, country: Country, seq: u64) -> FetchContext<'a> {
        let mut alloc = IpAllocator::new();
        FetchContext {
            ip: alloc.allocate(country, 0),
            country,
            cookies: jar,
            user_agent: UserAgent {
                os: Os::Linux,
                browser: Browser::Firefox,
            },
            logged_in: false,
            day: 0,
            time_quarter: 0,
            request_seq: seq,
            client_id: seq,
        }
    }

    #[test]
    fn small_world_builds_with_named_domains() {
        let w = World::build(&WorldConfig::small(), 1);
        for d in [
            "steampowered.com",
            "abercrombie.com",
            "jcpenney.com",
            "chegg.com",
            "amazon.com",
            "digitalrev.com",
        ] {
            assert!(w.retailer(d).is_some(), "{d} missing");
        }
        assert!(w.len() > 30);
    }

    #[test]
    fn ground_truth_classification() {
        let w = World::build(&WorldConfig::small(), 1);
        let within = w.within_country_domains();
        assert!(within.contains(&"jcpenney.com"));
        assert!(within.contains(&"chegg.com"));
        assert!(within.contains(&"amazon.com"));
        assert!(!within.contains(&"steampowered.com"));
        assert!(w.pdipd_domains().is_empty(), "no PDI-PD in the paper world");
        assert_eq!(w.alexa_domains().len(), 10);
    }

    #[test]
    fn steam_has_large_cross_country_spread() {
        let w = World::build(&WorldConfig::small(), 1);
        let r = w.retailer("steampowered.com").unwrap();
        let jar = CookieJar::new();
        let us = r
            .price_eur(ProductId(0), &ctx(&jar, Country::US, 1))
            .unwrap();
        let nz = r
            .price_eur(ProductId(0), &ctx(&jar, Country::NZ, 1))
            .unwrap();
        assert!((nz / us - 2.55).abs() < 0.02, "nz/us = {}", nz / us);
    }

    #[test]
    fn digitalrev_camera_matches_paper_prices() {
        let w = World::build(&WorldConfig::small(), 1);
        let r = w.retailer("digitalrev.com").unwrap();
        let jar = CookieJar::new();
        let eu = r
            .price_eur(ProductId(29), &ctx(&jar, Country::ES, 1))
            .unwrap();
        let ca = r
            .price_eur(ProductId(29), &ctx(&jar, Country::CA, 1))
            .unwrap();
        let us = r
            .price_eur(ProductId(29), &ctx(&jar, Country::US, 1))
            .unwrap();
        let br = r
            .price_eur(ProductId(29), &ctx(&jar, Country::BR, 1))
            .unwrap();
        assert!((eu - 34_500.0).abs() < 1.0);
        assert!((44_000.0..46_500.0).contains(&ca), "ca={ca}");
        assert!((40_000.0..42_000.0).contains(&us), "us={us}");
        assert!(br > 46_000.0, "br={br}");
        // >€10k between extremes (§6.2).
        assert!(br - eu > 10_000.0);
    }

    #[test]
    fn amazon_varies_only_by_login() {
        let w = World::build(&WorldConfig::small(), 1);
        let r = w.retailer("amazon.com").unwrap();
        let jar = CookieJar::new();
        let guest = r
            .price_eur(ProductId(5), &ctx(&jar, Country::ES, 1))
            .unwrap();
        let mut logged = ctx(&jar, Country::ES, 2);
        logged.logged_in = true;
        let member = r.price_eur(ProductId(5), &logged).unwrap();
        assert!((member / guest - 1.21).abs() < 0.001, "ES VAT 21%");
    }

    #[test]
    fn plain_stores_price_uniformly() {
        let w = World::build(&WorldConfig::small(), 1);
        let domain = w
            .domains()
            .find(|d| d.starts_with("store-"))
            .unwrap()
            .to_string();
        let r = w.retailer(&domain).unwrap();
        let jar = CookieJar::new();
        let prices: Vec<f64> = [Country::ES, Country::US, Country::JP, Country::BR]
            .iter()
            .map(|&c| r.price_eur(ProductId(0), &ctx(&jar, c, 1)).unwrap())
            .collect();
        assert!(prices.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    fn world_is_deterministic() {
        let w1 = World::build(&WorldConfig::small(), 42);
        let w2 = World::build(&WorldConfig::small(), 42);
        assert_eq!(w1.len(), w2.len());
        let jar = CookieJar::new();
        for d in ["steampowered.com", "jcpenney.com"] {
            let p1 = w1
                .retailer(d)
                .unwrap()
                .price_eur(ProductId(3), &ctx(&jar, Country::FR, 9));
            let p2 = w2
                .retailer(d)
                .unwrap()
                .price_eur(ProductId(3), &ctx(&jar, Country::FR, 9));
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn paper_scale_world_counts() {
        let w = World::build(&WorldConfig::paper_scale(), 7);
        // 14 named + 62 generic + 1918 plain + 400 alexa
        assert_eq!(w.len(), 14 + 62 + 1918 + 400);
        assert_eq!(w.alexa_domains().len(), 400);
        // 76 location-discriminating checked domains (named + generic).
        assert_eq!(w.discriminating_domains().len(), 76);
    }
}
