//! Product-page HTML generation.
//!
//! Pages are where the measurement system earns its keep: "retailers use
//! complex site layouts … and pack multiple recommendations in the same
//! page" (§2.1 req. 3), and remote fetches see "different ads or content
//! tailored to the corresponding user or the location of the proxy client"
//! (§3.3). Each retailer renders through one of several structural
//! templates; ad blocks and recommendation strips vary deterministically
//! with the fetch, so two fetches of the same product rarely produce
//! byte-identical HTML.

use crate::hash_mix;
use crate::product::Product;
use crate::tracker::Tracker;

/// How a retailer prints prices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriceFormat {
    /// `EUR654.00` — code glued to the amount (Fig. 2's rows).
    CodeConcat,
    /// `654.00 EUR` — code after the amount.
    CodeSuffix,
    /// `$1,234.56` — symbol before, US grouping.
    SymbolPrefix,
    /// `1.234,56 €` — symbol after, EU grouping.
    SymbolSuffixEu,
}

/// Formats `amount` of `currency` per `format`, respecting the currency's
/// customary decimal count (JPY/KRW print none).
pub fn format_price(amount: f64, currency: &str, format: PriceFormat) -> String {
    let decimals = sheriff_currency::CurrencyCatalog::by_iso(currency).map_or(2, |c| c.decimals);
    let symbol = sheriff_currency::CurrencyCatalog::by_iso(currency).map_or("", |c| c.symbol);
    match format {
        PriceFormat::CodeConcat => {
            format!("{currency}{}", group_us(amount, decimals))
        }
        PriceFormat::CodeSuffix => {
            format!("{} {currency}", group_us(amount, decimals))
        }
        PriceFormat::SymbolPrefix => {
            format!("{symbol}{}", group_us(amount, decimals))
        }
        PriceFormat::SymbolSuffixEu => {
            format!("{} {symbol}", group_eu(amount, decimals))
        }
    }
}

fn group_digits(int_part: u64, sep: char) -> String {
    let s = int_part.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(sep);
        }
        out.push(ch);
    }
    out
}

fn group_us(amount: f64, decimals: u8) -> String {
    let scale = 10f64.powi(i32::from(decimals));
    let minor = (amount * scale).round() as u64;
    let int = minor / scale as u64;
    let frac = minor % scale as u64;
    if decimals == 0 {
        group_digits(int, ',')
    } else {
        format!(
            "{}.{:0width$}",
            group_digits(int, ','),
            frac,
            width = decimals as usize
        )
    }
}

fn group_eu(amount: f64, decimals: u8) -> String {
    let scale = 10f64.powi(i32::from(decimals));
    let minor = (amount * scale).round() as u64;
    let int = minor / scale as u64;
    let frac = minor % scale as u64;
    if decimals == 0 {
        group_digits(int, '.')
    } else {
        format!(
            "{},{:0width$}",
            group_digits(int, '.'),
            frac,
            width = decimals as usize
        )
    }
}

/// Per-template markup of the price element: (tag, class).
const PRICE_MARKUP: &[(&str, &str)] = &[
    ("span", "price"),
    ("div", "product-price"),
    ("span", "prc-now"),
    ("b", "price-value"),
    ("span", "a-price-whole"),
];

/// The price element markup for a template index.
pub fn price_markup(template: u8) -> (&'static str, &'static str) {
    let i = template as usize % PRICE_MARKUP.len();
    PRICE_MARKUP
        .get(i)
        .copied()
        .unwrap_or(("span", "price-value"))
}

/// Everything needed to render one product page.
#[derive(Debug)]
pub struct PageSpec<'a> {
    /// Retailer domain (for titles and tracker URLs).
    pub domain: &'a str,
    /// The product shown.
    pub product: &'a Product,
    /// Pre-formatted price text, e.g. `EUR654.00`.
    pub price_text: String,
    /// Structural template index.
    pub template: u8,
    /// Seed for fetch-dependent noise (ads, banners).
    pub noise_seed: u64,
    /// Trackers to embed as third-party script tags.
    pub trackers: &'a [Tracker],
    /// Recommendation strip: (name, price text) of other products.
    pub recommendations: &'a [(String, String)],
}

/// Renders the page.
pub fn render(spec: &PageSpec<'_>) -> String {
    let (tag, class) = price_markup(spec.template);
    let mut html = String::with_capacity(8192);
    html.push_str("<!DOCTYPE html>\n<html>\n<head>\n");
    html.push_str(&format!(
        "<title>{} - {}</title>\n",
        spec.product.name, spec.domain
    ));
    // Static site chrome: identical on every fetch of this retailer, like
    // the navigation/footer boilerplate dominating real product pages —
    // and the reason DiffStorage pays off (§10.5).
    html.push_str("<meta charset=\"utf-8\">\n");
    for i in 0..18 {
        html.push_str(&format!(
            "<link rel=\"stylesheet\" href=\"/static/css/part-{i:02}.css\">\n"
        ));
    }
    for t in spec.trackers {
        html.push_str(&format!(
            "<script src=\"https://{}/tag.js\"></script>\n",
            t.domain
        ));
    }
    html.push_str("</head>\n<body>\n");
    html.push_str("<nav class=\"site-nav\">\n");
    for section in [
        "home",
        "new-arrivals",
        "clothing",
        "electronics",
        "books",
        "games",
        "cosmetics",
        "jewelry",
        "household",
        "furniture",
        "sale",
        "gift-cards",
        "stores",
        "help",
        "account",
    ] {
        html.push_str(&format!(
            "<a class=\"nav-item nav-{section}\" href=\"/{section}\">{section}</a>\n"
        ));
    }
    html.push_str("</nav>\n");

    // Location/user-tailored banner noise: count and flavor vary by seed.
    let n_ads = (hash_mix(&[spec.noise_seed, 0xad]) % 4) as usize;
    for i in 0..n_ads {
        let flavor = hash_mix(&[spec.noise_seed, 0xad, i as u64]) % 1000;
        html.push_str(&format!(
            "<div class=\"ad-banner\" data-campaign=\"c{flavor}\">Special offer {flavor}!</div>\n"
        ));
    }

    // Structural templates differ in nesting around the price element.
    let price_el = format!(
        "<{tag} class=\"{class}\">{}</{tag}>",
        escape(&spec.price_text)
    );
    match spec.template % 3 {
        0 => {
            html.push_str("<div class=\"product\">\n");
            html.push_str(&format!("<h1>{}</h1>\n", spec.product.name));
            html.push_str(&format!(
                "<img src=\"{}.jpg\" alt=\"Product View\">\n",
                spec.product.id.0
            ));
            html.push_str(&price_el);
            html.push('\n');
            html.push_str("</div>\n");
        }
        1 => {
            html.push_str("<main><section class=\"item-page\">\n");
            html.push_str(&format!("<h2>{}</h2>\n", spec.product.name));
            html.push_str("<div class=\"buy-box\"><div class=\"price-wrap\">\n");
            html.push_str(&price_el);
            html.push('\n');
            html.push_str("</div><button>Add to cart</button></div>\n");
            html.push_str("</section></main>\n");
        }
        _ => {
            html.push_str("<table class=\"layout\"><tr><td class=\"info\">\n");
            html.push_str(&format!("<h1>{}</h1>\n", spec.product.name));
            html.push_str("</td><td class=\"purchase\">\n");
            html.push_str(&price_el);
            html.push('\n');
            html.push_str("</td></tr></table>\n");
        }
    }

    // Recommendation strip: other products with their own price elements —
    // the multi-price ambiguity §3.3 warns about.
    if !spec.recommendations.is_empty() {
        html.push_str("<div class=\"reco-strip\">\n");
        for (name, price) in spec.recommendations {
            html.push_str(&format!(
                "<div class=\"reco\"><span class=\"reco-name\">{}</span> <{tag} class=\"{class}\">{}</{tag}></div>\n",
                escape(name),
                escape(price),
            ));
        }
        html.push_str("</div>\n");
    }

    html.push_str("<footer class=\"site-footer\">\n");
    for line in [
        "About us",
        "Careers",
        "Press",
        "Investors",
        "Sustainability",
        "Shipping &amp; returns",
        "Size guides",
        "Contact",
        "Privacy policy",
        "Terms of service",
        "Cookie settings",
        "Accessibility statement",
        "Store locator",
        "Gift registry",
        "Affiliate program",
    ] {
        html.push_str(&format!("<div class=\"footer-line\">{line}</div>\n"));
    }
    html.push_str(&format!(
        "<div class=\"copyright\">&copy; {} — all rights reserved</div>\n",
        spec.domain
    ));
    html.push_str("</footer>\n");
    html.push_str("</body>\n</html>\n");
    html
}

/// Renders a CAPTCHA interstitial (bot detection tripped, §3.2).
pub fn render_captcha(domain: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html><head><title>Are you human? - {domain}</title></head>\
         <body><div class=\"captcha\">Please verify you are not a robot.</div></body></html>\n"
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::{Product, ProductId};
    use sheriff_currency::detect_price;
    use sheriff_geo::ProductCategory;
    use sheriff_html::Document;

    fn product() -> Product {
        Product {
            id: ProductId(3),
            name: "camera deluxe".into(),
            category: ProductCategory::Electronics,
            base_price_eur: 654.0,
            popularity: 0.9,
        }
    }

    #[test]
    fn formats_parse_back() {
        let cases = [
            (PriceFormat::CodeConcat, 654.0, "EUR", "EUR654.00"),
            (PriceFormat::CodeSuffix, 654.0, "EUR", "654.00 EUR"),
            (PriceFormat::SymbolPrefix, 1234.56, "USD", "$1,234.56"),
            (PriceFormat::SymbolSuffixEu, 1234.56, "EUR", "1.234,56 €"),
            (PriceFormat::CodeConcat, 88204.0, "JPY", "JPY88,204"),
        ];
        for (fmt, amount, cur, expect) in cases {
            let text = format_price(amount, cur, fmt);
            assert_eq!(text, expect);
            // And the detector must recover the amount.
            let det = detect_price(&text).unwrap();
            assert!(
                (det.amount - amount).abs() < 0.005,
                "{text}: {} vs {amount}",
                det.amount
            );
        }
    }

    #[test]
    fn page_contains_extractable_price() {
        for template in 0..5u8 {
            let p = product();
            let spec = PageSpec {
                domain: "shop.example",
                product: &p,
                price_text: "EUR654.00".into(),
                template,
                noise_seed: 42,
                trackers: &[Tracker::by_index(0)],
                recommendations: &[],
            };
            let html = render(&spec);
            let doc = Document::parse(&html);
            let (tag, class) = price_markup(template);
            let el = doc.find_by_class(tag, class).unwrap();
            assert_eq!(doc.text_content(el), "EUR654.00", "template {template}");
        }
    }

    #[test]
    fn noise_varies_with_seed() {
        let p = product();
        let mk = |seed| {
            render(&PageSpec {
                domain: "shop.example",
                product: &p,
                price_text: "EUR654.00".into(),
                template: 0,
                noise_seed: seed,
                trackers: &[],
                recommendations: &[],
            })
        };
        // Some pair among a few seeds must differ (ad count/flavor).
        let pages: Vec<String> = (0..6).map(mk).collect();
        assert!(pages.windows(2).any(|w| w[0] != w[1]));
        // Same seed → identical page.
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    fn trackers_embedded_as_scripts() {
        let p = product();
        let spec = PageSpec {
            domain: "shop.example",
            product: &p,
            price_text: "EUR1.00".into(),
            template: 1,
            noise_seed: 0,
            trackers: &[Tracker::by_index(0), Tracker::by_index(1)],
            recommendations: &[],
        };
        let html = render(&spec);
        assert!(html.contains(&Tracker::by_index(0).domain));
        assert!(html.contains(&Tracker::by_index(1).domain));
    }

    #[test]
    fn recommendations_share_price_markup() {
        let p = product();
        let spec = PageSpec {
            domain: "shop.example",
            product: &p,
            price_text: "EUR654.00".into(),
            template: 0,
            noise_seed: 1,
            trackers: &[],
            recommendations: &[("other thing".into(), "EUR9.99".into())],
        };
        let html = render(&spec);
        let doc = Document::parse(&html);
        let (tag, class) = price_markup(0);
        // Two price elements on the page: ambiguity the Tags Path resolves.
        let count = doc
            .descendants(doc.root())
            .into_iter()
            .filter(|&id| doc.name(id) == Some(tag) && doc.attr(id, "class") == Some(class))
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn captcha_page_has_no_price() {
        let html = render_captcha("shop.example");
        assert!(html.contains("captcha"));
        assert!(!html.contains("price"));
    }

    #[test]
    fn grouping_edge_cases() {
        assert_eq!(group_us(0.994, 2), "0.99");
        assert_eq!(group_us(1_000_000.0, 2), "1,000,000.00");
        assert_eq!(group_eu(1_000.5, 2), "1.000,50");
        assert_eq!(group_us(829075.0, 0), "829,075");
    }
}
