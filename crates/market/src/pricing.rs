//! Pricing strategies — the behaviours the watchdog exists to detect.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sheriff_geo::{vat_rate, Country, IpV4};

use crate::cookies::CookieJar;
use crate::hash_mix;
use crate::product::Product;

/// Desktop platform of the fetching browser (§7.5 controls for these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserAgent {
    /// Operating system family.
    pub os: Os,
    /// Browser family.
    pub browser: Browser,
}

/// Operating systems in the §7.5 grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Os {
    Windows,
    MacOs,
    Linux,
}

/// Browsers in the §7.5 grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Browser {
    Chrome,
    Firefox,
    Safari,
}

impl UserAgent {
    /// All nine OS × browser combinations of the §7.5 experiment.
    pub fn grid() -> Vec<UserAgent> {
        let mut out = Vec::new();
        for os in [Os::Windows, Os::MacOs, Os::Linux] {
            for browser in [Browser::Chrome, Browser::Firefox, Browser::Safari] {
                out.push(UserAgent { os, browser });
            }
        }
        out
    }

    /// Stable small hash of the platform (feeds page-noise seeding and
    /// §7.5 regression features).
    pub fn hash(&self) -> u64 {
        let os = match self.os {
            Os::Windows => 1,
            Os::MacOs => 2,
            Os::Linux => 3,
        };
        let b = match self.browser {
            Browser::Chrome => 10,
            Browser::Firefox => 20,
            Browser::Safari => 30,
        };
        os + b
    }
}

/// Everything a retailer can observe about one page fetch.
#[derive(Clone, Debug)]
pub struct FetchContext<'a> {
    /// Source address (geolocated by the retailer for localization).
    pub ip: IpV4,
    /// Country the retailer resolves the IP to.
    pub country: Country,
    /// Client-side state sent with the request.
    pub cookies: &'a CookieJar,
    /// Browser platform.
    pub user_agent: UserAgent,
    /// True when the customer is signed in (retailer knows the delivery
    /// country and applies VAT — §7.3's amazon explanation).
    pub logged_in: bool,
    /// Day index since epoch of the simulated study.
    pub day: u32,
    /// Quarter of the day (0–3), a §7.5 regression feature.
    pub time_quarter: u8,
    /// Global request sequence number (drives per-request A/B arms).
    pub request_seq: u64,
    /// Stable identity of the browser profile towards this retailer
    /// (first-party cookie id); drives *sticky* A/B arms.
    pub client_id: u64,
}

/// One pricing behaviour. A retailer stacks several; they apply in order to
/// the running price.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum PricingStrategy {
    /// Location-based PD: multiply by a per-country factor (default 1.0).
    /// The paper reverse-engineered exactly this shape in its predecessor
    /// work ("prices appear to be adjusted using simple multiplicative
    /// factors depending on the country", §1).
    CountryMultiplier {
        /// country code → factor.
        factors: BTreeMap<String, f64>,
        /// Dampen the factor on expensive products (retailers shave the
        /// markup percentage as absolute prices grow — the empirical
        /// envelope of the paper's Fig. 10: ×2.5 below €1k, ×1.7 to €10k,
        /// ~×1.3 above).
        dampen_expensive: bool,
    },
    /// Apply the customer country's category VAT when the retailer has
    /// identified the customer (logged in); guests see net prices.
    VatWhenIdentified,
    /// A/B testing: arms spread `±amplitude` around the base.
    ///
    /// `sticky == false`: the arm is re-drawn per request (§7.4 France —
    /// "low and high prices in an almost uniform fashion").
    /// `sticky == true`: the arm is keyed by the client id, so individual
    /// peers see consistently low or high prices (§7.4 UK).
    ///
    /// `country_amplitude` overrides the amplitude per country code (0
    /// disables the test there) — jcpenney's UK-vs-continent contrast.
    /// `product_fraction` enrols only a hash-selected share of products per
    /// country, which is what makes Table 5's "% of requests with price
    /// difference" land between 0 and 100.
    AbTest {
        /// Half-width of the price spread, as a fraction (0.07 = ±7%/2).
        amplitude: f64,
        /// Number of arms (≥2).
        arms: u8,
        /// Keyed by client id instead of request sequence.
        sticky: bool,
        /// Per-country amplitude overrides (country code → amplitude).
        country_amplitude: BTreeMap<String, f64>,
        /// Fraction of (product, country) pairs enrolled; 1.0 = all.
        product_fraction: f64,
        /// Per-country enrollment overrides (country code → fraction).
        country_fraction: BTreeMap<String, f64>,
    },
    /// Personal-data-induced PD: mark up by `markup · score` where `score ∈
    /// \[0,1\]` is the wealth/interest score read from a tracker cookie.
    /// The positive control the paper's analyses must be able to flag.
    PdiPd {
        /// Tracker domain whose cookie carries the profile score.
        tracker_domain: String,
        /// Maximum markup fraction at score 1.
        markup: f64,
    },
    /// Fig. 14/15 temporal strategy: small daily drift (usually downward)
    /// with rare large jumps on hash-selected days.
    TemporalDrift {
        /// Per-day multiplicative drift (e.g. -0.005 = −0.5 %/day).
        daily_drift: f64,
        /// Probability a product jumps on a given day.
        jump_prob: f64,
        /// Jump magnitude as a fraction (applied upward).
        jump_size: f64,
    },
    /// Algorithmic repricing: the price oscillates within the day
    /// ("hundreds of changes per day", §2's citation of Amazon
    /// marketplace pricing).
    IntradayRepricing {
        /// Oscillation amplitude as a fraction.
        amplitude: f64,
    },
}

impl PricingStrategy {
    /// Applies this strategy to `price` (EUR, net so far).
    pub fn apply(
        &self,
        price: f64,
        product: &Product,
        ctx: &FetchContext<'_>,
        domain_salt: u64,
    ) -> f64 {
        match self {
            PricingStrategy::CountryMultiplier {
                factors,
                dampen_expensive,
            } => {
                let f = factors.get(ctx.country.code()).copied().unwrap_or(1.0);
                let damp = if !dampen_expensive || product.base_price_eur < 1_000.0 {
                    1.0
                } else if product.base_price_eur < 10_000.0 {
                    0.55
                } else {
                    0.18
                };
                price * (1.0 + (f - 1.0) * damp)
            }
            PricingStrategy::VatWhenIdentified => {
                if ctx.logged_in {
                    price * (1.0 + vat_rate(ctx.country, product.category))
                } else {
                    price
                }
            }
            PricingStrategy::AbTest {
                amplitude,
                arms,
                sticky,
                country_amplitude,
                product_fraction,
                country_fraction,
            } => {
                let amp = country_amplitude
                    .get(ctx.country.code())
                    .copied()
                    .unwrap_or(*amplitude);
                if amp <= 0.0 {
                    return price;
                }
                // Per-(product, country) enrollment.
                let fraction = country_fraction
                    .get(ctx.country.code())
                    .copied()
                    .unwrap_or(*product_fraction);
                let country_h = crate::hash_str(ctx.country.code());
                let enrol = hash_mix(&[domain_salt, u64::from(product.id.0), country_h, 0xe1]);
                if (enrol as f64 / u64::MAX as f64) >= fraction {
                    return price;
                }
                let arms = (*arms).max(2) as u64;
                // Sticky buckets are per *client* across the whole
                // catalogue — that is what makes §7.4's UK peers receive
                // "consistently low … or high prices". Per-request arms
                // are re-drawn per (product, request).
                let h = if *sticky {
                    hash_mix(&[domain_salt, ctx.client_id, 0x51c])
                } else {
                    hash_mix(&[domain_salt, u64::from(product.id.0), ctx.request_seq])
                };
                let arm = (h % arms) as f64;
                // Arms spread uniformly in [-amplitude, +amplitude].
                let offset = -amp + 2.0 * amp * arm / (arms - 1) as f64;
                price * (1.0 + offset)
            }
            PricingStrategy::PdiPd {
                tracker_domain,
                markup,
            } => {
                let score = ctx
                    .cookies
                    .value(tracker_domain, "profile_score")
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(0.0)
                    .clamp(0.0, 1.0);
                price * (1.0 + markup * score)
            }
            PricingStrategy::TemporalDrift {
                daily_drift,
                jump_prob,
                jump_size,
            } => {
                let mut p = price;
                for day in 0..ctx.day {
                    p *= 1.0 + daily_drift;
                    let h = hash_mix(&[domain_salt, u64::from(product.id.0), u64::from(day), 0xda]);
                    if (h as f64 / u64::MAX as f64) < *jump_prob {
                        p *= 1.0 + jump_size;
                    }
                }
                p
            }
            PricingStrategy::IntradayRepricing { amplitude } => {
                let h = hash_mix(&[
                    domain_salt,
                    u64::from(product.id.0),
                    u64::from(ctx.day),
                    u64::from(ctx.time_quarter),
                    0xa1,
                ]);
                let unit = h as f64 / u64::MAX as f64; // [0, 1)
                price * (1.0 + amplitude * (2.0 * unit - 1.0))
            }
        }
    }

    /// True when this strategy can produce different prices for users *in
    /// the same country at the same time* — the paper's suspicious class.
    pub fn within_country_varying(&self) -> bool {
        matches!(
            self,
            PricingStrategy::AbTest { .. }
                | PricingStrategy::PdiPd { .. }
                | PricingStrategy::VatWhenIdentified
        )
    }

    /// True when this strategy uses personal data (the PDI-PD class).
    pub fn personal_data_driven(&self) -> bool {
        matches!(self, PricingStrategy::PdiPd { .. })
    }
}

/// Applies a strategy stack and rounds to cents.
pub fn compute_price_eur(
    base: f64,
    strategies: &[PricingStrategy],
    product: &Product,
    ctx: &FetchContext<'_>,
    domain_salt: u64,
) -> f64 {
    let raw = strategies
        .iter()
        .fold(base, |p, s| s.apply(p, product, ctx, domain_salt));
    (raw * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_geo::{IpAllocator, ProductCategory};

    fn product() -> Product {
        Product {
            id: crate::product::ProductId(1),
            name: "test".into(),
            category: ProductCategory::Electronics,
            base_price_eur: 100.0,
            popularity: 0.5,
        }
    }

    fn ctx<'a>(jar: &'a CookieJar, country: Country, seq: u64, client: u64) -> FetchContext<'a> {
        let mut alloc = IpAllocator::new();
        FetchContext {
            ip: alloc.allocate(country, 0),
            country,
            cookies: jar,
            user_agent: UserAgent {
                os: Os::Linux,
                browser: Browser::Firefox,
            },
            logged_in: false,
            day: 0,
            time_quarter: 0,
            request_seq: seq,
            client_id: client,
        }
    }

    #[test]
    fn country_multiplier_applies() {
        let jar = CookieJar::new();
        let mut factors = BTreeMap::new();
        factors.insert("US".to_string(), 1.5);
        let s = PricingStrategy::CountryMultiplier {
            factors,
            dampen_expensive: false,
        };
        let p = product();
        assert_eq!(s.apply(100.0, &p, &ctx(&jar, Country::US, 0, 0), 7), 150.0);
        assert_eq!(s.apply(100.0, &p, &ctx(&jar, Country::ES, 0, 0), 7), 100.0);
    }

    #[test]
    fn vat_only_when_logged_in() {
        let jar = CookieJar::new();
        let s = PricingStrategy::VatWhenIdentified;
        let p = product();
        let mut c = ctx(&jar, Country::ES, 0, 0);
        assert_eq!(s.apply(100.0, &p, &c, 7), 100.0);
        c.logged_in = true;
        assert!(
            (s.apply(100.0, &p, &c, 7) - 121.0).abs() < 1e-9,
            "ES standard VAT 21%"
        );
    }

    #[test]
    fn nonsticky_ab_varies_by_request() {
        let jar = CookieJar::new();
        let s = PricingStrategy::AbTest {
            amplitude: 0.05,
            arms: 2,
            sticky: false,
            country_amplitude: BTreeMap::new(),
            product_fraction: 1.0,
            country_fraction: BTreeMap::new(),
        };
        let p = product();
        let prices: std::collections::HashSet<u64> = (0..50)
            .map(|seq| (s.apply(100.0, &p, &ctx(&jar, Country::FR, seq, 1), 7) * 100.0) as u64)
            .collect();
        assert_eq!(prices.len(), 2, "two arms expected: {prices:?}");
    }

    #[test]
    fn sticky_ab_constant_per_client() {
        let jar = CookieJar::new();
        let s = PricingStrategy::AbTest {
            amplitude: 0.035,
            arms: 2,
            sticky: true,
            country_amplitude: BTreeMap::new(),
            product_fraction: 1.0,
            country_fraction: BTreeMap::new(),
        };
        let p = product();
        for client in 0..10u64 {
            let first = s.apply(100.0, &p, &ctx(&jar, Country::GB, 0, client), 7);
            for seq in 1..20 {
                let again = s.apply(100.0, &p, &ctx(&jar, Country::GB, seq, client), 7);
                assert_eq!(first, again, "client {client} saw a different arm");
            }
        }
    }

    #[test]
    fn pdipd_reads_tracker_score() {
        let mut jar = CookieJar::new();
        jar.set(
            "tracker.example",
            crate::cookies::Cookie {
                name: "profile_score".into(),
                value: "0.8".into(),
                third_party: true,
            },
        );
        let s = PricingStrategy::PdiPd {
            tracker_domain: "tracker.example".into(),
            markup: 0.10,
        };
        let p = product();
        let priced = s.apply(100.0, &p, &ctx(&jar, Country::ES, 0, 0), 7);
        assert!((priced - 108.0).abs() < 1e-9);
        // Clean profile: no markup.
        let clean = CookieJar::new();
        assert_eq!(
            s.apply(100.0, &p, &ctx(&clean, Country::ES, 0, 0), 7),
            100.0
        );
    }

    #[test]
    fn temporal_drift_decreases_over_days() {
        let jar = CookieJar::new();
        let s = PricingStrategy::TemporalDrift {
            daily_drift: -0.01,
            jump_prob: 0.0,
            jump_size: 0.0,
        };
        let p = product();
        let mut c = ctx(&jar, Country::ES, 0, 0);
        let day0 = s.apply(100.0, &p, &c, 7);
        c.day = 20;
        let day20 = s.apply(100.0, &p, &c, 7);
        assert_eq!(day0, 100.0);
        assert!((day20 - 100.0 * 0.99f64.powi(20)).abs() < 1e-9);
    }

    #[test]
    fn temporal_jumps_fire_deterministically() {
        let jar = CookieJar::new();
        let s = PricingStrategy::TemporalDrift {
            daily_drift: 0.0,
            jump_prob: 0.25,
            jump_size: 0.5,
        };
        let p = product();
        let mut c = ctx(&jar, Country::ES, 0, 0);
        c.day = 40;
        let a = s.apply(100.0, &p, &c, 7);
        let b = s.apply(100.0, &p, &c, 7);
        assert_eq!(a, b, "jumps must be deterministic");
        assert!(a > 100.0, "with p=0.25 over 40 days some jump must fire");
    }

    #[test]
    fn intraday_repricing_changes_within_day() {
        let jar = CookieJar::new();
        let s = PricingStrategy::IntradayRepricing { amplitude: 0.05 };
        let p = product();
        let mut c = ctx(&jar, Country::ES, 0, 0);
        let quarters: Vec<f64> = (0..4)
            .map(|q| {
                c.time_quarter = q;
                s.apply(100.0, &p, &c, 7)
            })
            .collect();
        let distinct: std::collections::HashSet<u64> =
            quarters.iter().map(|&p| (p * 1000.0) as u64).collect();
        assert!(distinct.len() > 1, "expected intra-day variation");
        for &q in &quarters {
            assert!((95.0..=105.0).contains(&q));
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(PricingStrategy::AbTest {
            amplitude: 0.1,
            arms: 2,
            sticky: false,
            country_amplitude: BTreeMap::new(),
            product_fraction: 1.0,
            country_fraction: BTreeMap::new(),
        }
        .within_country_varying());
        assert!(!PricingStrategy::CountryMultiplier {
            factors: BTreeMap::new(),
            dampen_expensive: true,
        }
        .within_country_varying());
        assert!(PricingStrategy::PdiPd {
            tracker_domain: "t".into(),
            markup: 0.1
        }
        .personal_data_driven());
        assert!(!PricingStrategy::VatWhenIdentified.personal_data_driven());
    }

    #[test]
    fn stack_composes_and_rounds() {
        let jar = CookieJar::new();
        let mut factors = BTreeMap::new();
        factors.insert("US".to_string(), 1.333333);
        let stack = vec![PricingStrategy::CountryMultiplier {
            factors,
            dampen_expensive: false,
        }];
        let p = product();
        let priced = compute_price_eur(100.0, &stack, &p, &ctx(&jar, Country::US, 0, 0), 7);
        assert_eq!(priced, 133.33);
    }
}
