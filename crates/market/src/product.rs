//! Products and catalogue generation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use sheriff_geo::ProductCategory;

/// Product identifier, unique within a retailer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProductId(pub u32);

/// A catalogue product.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Product {
    /// Identifier within the retailer.
    pub id: ProductId,
    /// Display name (also the URL slug).
    pub name: String,
    /// Category (drives VAT and page template flavor).
    pub category: ProductCategory,
    /// Net base price in EUR, before any strategy.
    pub base_price_eur: f64,
    /// Relative popularity in [0, 1]; drives which products users check.
    pub popularity: f64,
}

impl Product {
    /// URL path of this product's page.
    pub fn url_path(&self) -> String {
        format!("/product/{}-{}", self.id.0, slug(&self.name))
    }
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Price bands the paper's Fig. 10 x-axis spans: from a few euro to the
/// €34.5k–46k Phase One camera.
const PRICE_BANDS: &[(f64, f64, f64)] = &[
    // (low, high, weight)
    (3.0, 30.0, 0.35),
    (30.0, 300.0, 0.35),
    (300.0, 3_000.0, 0.2),
    (3_000.0, 15_000.0, 0.07),
    (15_000.0, 50_000.0, 0.03),
];

/// Generates a catalogue of `n` products biased toward `main_category`
/// (retailers have an identity: clothing stores sell mostly clothing).
pub fn generate_catalog<R: Rng + ?Sized>(
    n: usize,
    main_category: ProductCategory,
    rng: &mut R,
) -> Vec<Product> {
    (0..n)
        .map(|i| {
            let category = if rng.gen::<f64>() < 0.7 {
                main_category
            } else {
                ProductCategory::ALL[rng.gen_range(0..ProductCategory::ALL.len())]
            };
            let band = pick_band(rng);
            // Log-uniform within the band: realistic price spread.
            let (lo, hi) = (band.0.ln(), band.1.ln());
            let price = (lo + rng.gen::<f64>() * (hi - lo)).exp();
            // Charm pricing: x.99 endings for cheap goods.
            let base_price_eur = if price < 100.0 {
                price.floor() + 0.99
            } else {
                (price / 10.0).round() * 10.0
            };
            Product {
                id: ProductId(i as u32),
                name: format!("{} item {}", category.label(), i),
                category,
                base_price_eur,
                popularity: rng.gen::<f64>().powi(2),
            }
        })
        .collect()
}

fn pick_band<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let total: f64 = PRICE_BANDS.iter().map(|b| b.2).sum();
    let mut target = rng.gen::<f64>() * total;
    for &(lo, hi, w) in PRICE_BANDS {
        if target < w {
            return (lo, hi);
        }
        target -= w;
    }
    let last = PRICE_BANDS[PRICE_BANDS.len() - 1];
    (last.0, last.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catalog_has_requested_size_and_valid_prices() {
        let mut rng = StdRng::seed_from_u64(1);
        let cat = generate_catalog(100, ProductCategory::Clothing, &mut rng);
        assert_eq!(cat.len(), 100);
        for p in &cat {
            assert!(
                p.base_price_eur >= 3.0 && p.base_price_eur <= 50_000.0,
                "{p:?}"
            );
            assert!((0.0..=1.0).contains(&p.popularity));
        }
    }

    #[test]
    fn catalog_biased_to_main_category() {
        let mut rng = StdRng::seed_from_u64(2);
        let cat = generate_catalog(300, ProductCategory::Books, &mut rng);
        let books = cat
            .iter()
            .filter(|p| p.category == ProductCategory::Books)
            .count();
        assert!(books > 180, "only {books}/300 books");
    }

    #[test]
    fn ids_are_sequential_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let cat = generate_catalog(50, ProductCategory::Games, &mut rng);
        for (i, p) in cat.iter().enumerate() {
            assert_eq!(p.id, ProductId(i as u32));
        }
    }

    #[test]
    fn url_slugs_are_clean() {
        let p = Product {
            id: ProductId(7),
            name: "Fancy Café Chair!".into(),
            category: ProductCategory::Furniture,
            base_price_eur: 99.99,
            popularity: 0.5,
        };
        let path = p.url_path();
        assert!(path.starts_with("/product/7-"));
        assert!(path
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '/'));
    }

    #[test]
    fn price_spread_covers_bands() {
        let mut rng = StdRng::seed_from_u64(4);
        let cat = generate_catalog(2000, ProductCategory::Electronics, &mut rng);
        let cheap = cat.iter().filter(|p| p.base_price_eur < 100.0).count();
        let expensive = cat.iter().filter(|p| p.base_price_eur > 10_000.0).count();
        assert!(cheap > 500, "cheap={cheap}");
        assert!(expensive > 10, "expensive={expensive}");
    }
}
