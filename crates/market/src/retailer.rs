//! The retailer: catalogue + pricing stack + page rendering + bot defense.

use sheriff_currency::{FixedRates, RateProvider};
use sheriff_geo::Country;

use crate::bot::BotDetector;
use crate::cookies::Cookie;
use crate::page::{self, PageSpec, PriceFormat};
use crate::pricing::{compute_price_eur, FetchContext, PricingStrategy};
use crate::product::{Product, ProductId};
use crate::tracker::Tracker;
use crate::{hash_mix, hash_str};

pub use crate::page::PriceFormat as RetailerPriceFormat;

/// Result of fetching a product page.
#[derive(Clone, Debug)]
pub enum FetchResult {
    /// The product page, plus the cookies the response sets.
    Page {
        /// Full HTML.
        html: String,
        /// Quoted currency ISO code.
        currency: &'static str,
        /// The shown price in the quoted currency.
        price_quoted: f64,
        /// The shown price converted to EUR (ground truth for analyses).
        price_eur: f64,
        /// Cookies the response sets: (domain, cookie).
        set_cookies: Vec<(String, Cookie)>,
    },
    /// Bot detection tripped; a CAPTCHA page came back instead.
    Captcha {
        /// The interstitial HTML.
        html: String,
    },
}

/// One e-commerce site.
#[derive(Debug)]
pub struct Retailer {
    /// The site's domain, e.g. `jcpenney.com`.
    pub domain: String,
    /// Where the seller is based (prices quote in this currency unless the
    /// site localizes).
    pub home_country: Country,
    /// Quote in the customer's currency (geo-localized storefront)?
    pub localizes_currency: bool,
    /// Price text format.
    pub price_format: PriceFormat,
    /// Page template index.
    pub template: u8,
    /// Catalogue.
    pub products: Vec<Product>,
    /// Pricing stack, applied in order.
    pub strategies: Vec<PricingStrategy>,
    /// Embedded third-party trackers.
    pub trackers: Vec<Tracker>,
    /// Optional bot defense.
    pub bot: Option<BotDetector>,
    salt: u64,
}

impl Retailer {
    /// Creates a retailer; the salt (derived from the domain) drives all of
    /// its deterministic "random" behaviour.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        domain: &str,
        home_country: Country,
        localizes_currency: bool,
        price_format: PriceFormat,
        template: u8,
        products: Vec<Product>,
        strategies: Vec<PricingStrategy>,
        trackers: Vec<Tracker>,
        bot: Option<BotDetector>,
    ) -> Self {
        Retailer {
            salt: hash_str(domain),
            domain: domain.to_string(),
            home_country,
            localizes_currency,
            price_format,
            template,
            products,
            strategies,
            trackers,
            bot,
        }
    }

    /// Looks up a product.
    pub fn product(&self, id: ProductId) -> Option<&Product> {
        self.products.iter().find(|p| p.id == id)
    }

    /// The site's deterministic salt.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Ground-truth price in EUR for `product` under `ctx` (before currency
    /// quoting). `None` for unknown products.
    pub fn price_eur(&self, id: ProductId, ctx: &FetchContext<'_>) -> Option<f64> {
        let product = self.product(id)?;
        Some(compute_price_eur(
            product.base_price_eur,
            &self.strategies,
            product,
            ctx,
            self.salt,
        ))
    }

    /// The currency this retailer quotes to a customer in `country`.
    pub fn quote_currency(&self, country: Country) -> &'static str {
        if self.localizes_currency {
            country.currency()
        } else {
            self.home_country.currency()
        }
    }

    /// Fetches the product page as seen through `ctx`.
    ///
    /// `now_ms` feeds bot detection; `user_affluence`/`user_id` feed the
    /// trackers embedded on the page. Returns `None` for unknown products.
    pub fn fetch(
        &mut self,
        id: ProductId,
        ctx: &FetchContext<'_>,
        now_ms: u64,
        rates: &FixedRates,
        user_affluence: f64,
        user_id: u64,
    ) -> Option<FetchResult> {
        // Bot defense first — a CAPTCHA'd request never reaches pricing.
        if let Some(bot) = &mut self.bot {
            if bot.check(ctx.ip, now_ms) {
                return Some(FetchResult::Captcha {
                    html: page::render_captcha(&self.domain),
                });
            }
        }

        let product = self.product(id)?.clone();
        let price_eur = self.price_eur(id, ctx)?;
        let currency = self.quote_currency(ctx.country);
        let price_quoted = rates
            .convert(price_eur, "EUR", currency)
            .unwrap_or(price_eur);
        // Re-round in the quoted currency (what the site actually prints),
        // then recompute the EUR ground truth from the printed amount.
        let decimals =
            sheriff_currency::CurrencyCatalog::by_iso(currency).map_or(2, |c| c.decimals);
        let scale = 10f64.powi(i32::from(decimals));
        let price_quoted = (price_quoted * scale).round() / scale;
        let shown_eur = rates
            .convert(price_quoted, currency, "EUR")
            .unwrap_or(price_eur);

        let price_text = page::format_price(price_quoted, currency, self.price_format);

        // Recommendation strip: deterministic subset of other products.
        let recommendations: Vec<(String, String)> = (0..3u64)
            .filter_map(|k| {
                if self.products.len() < 2 {
                    return None;
                }
                let pick =
                    hash_mix(&[self.salt, u64::from(id.0), k, 0x5c]) % self.products.len() as u64;
                let other = self.products.get(pick as usize)?;
                if other.id == id {
                    return None;
                }
                let other_eur = compute_price_eur(
                    other.base_price_eur,
                    &self.strategies,
                    other,
                    ctx,
                    self.salt,
                );
                let other_quoted = rates.convert(other_eur, "EUR", currency)?;
                Some((
                    other.name.clone(),
                    page::format_price(other_quoted, currency, self.price_format),
                ))
            })
            .collect();

        let noise_seed = hash_mix(&[
            self.salt,
            u64::from(id.0),
            u64::from(ctx.country.index() as u32),
            ctx.request_seq,
        ]);
        let html = page::render(&PageSpec {
            domain: &self.domain,
            product: &product,
            price_text,
            template: self.template,
            noise_seed,
            trackers: &self.trackers,
            recommendations: &recommendations,
        });

        // Response cookies: a first-party session/viewed cookie plus every
        // embedded tracker's third-party cookie.
        let mut set_cookies = vec![
            (
                self.domain.clone(),
                Cookie {
                    name: "session_id".into(),
                    value: format!("{:016x}", hash_mix(&[self.salt, ctx.client_id])),
                    third_party: false,
                },
            ),
            (
                self.domain.clone(),
                Cookie {
                    name: format!("viewed_{}", id.0),
                    value: "1".into(),
                    third_party: false,
                },
            ),
        ];
        for t in &self.trackers {
            let score = t.score_for(user_affluence, user_id);
            set_cookies.push((
                t.domain.clone(),
                Cookie {
                    name: "profile_score".into(),
                    value: format!("{score:.3}"),
                    third_party: true,
                },
            ));
            set_cookies.push((
                t.domain.clone(),
                Cookie {
                    name: "uid".into(),
                    value: format!("{user_id:016x}"),
                    third_party: true,
                },
            ));
        }

        Some(FetchResult::Page {
            html,
            currency,
            price_quoted,
            price_eur: shown_eur,
            set_cookies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cookies::CookieJar;
    use crate::pricing::{Browser, Os, UserAgent};
    use crate::product::generate_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sheriff_geo::{IpAllocator, ProductCategory};
    use std::collections::BTreeMap;

    fn retailer(strategies: Vec<PricingStrategy>) -> Retailer {
        let mut rng = StdRng::seed_from_u64(8);
        Retailer::new(
            "shop.example",
            Country::US,
            true,
            PriceFormat::SymbolPrefix,
            0,
            generate_catalog(10, ProductCategory::Electronics, &mut rng),
            strategies,
            vec![Tracker::by_index(0)],
            None,
        )
    }

    fn ctx<'a>(jar: &'a CookieJar, country: Country) -> FetchContext<'a> {
        let mut alloc = IpAllocator::new();
        FetchContext {
            ip: alloc.allocate(country, 0),
            country,
            cookies: jar,
            user_agent: UserAgent {
                os: Os::Windows,
                browser: Browser::Chrome,
            },
            logged_in: false,
            day: 0,
            time_quarter: 0,
            request_seq: 1,
            client_id: 99,
        }
    }

    #[test]
    fn fetch_returns_parsable_page() {
        let mut r = retailer(vec![]);
        let jar = CookieJar::new();
        let rates = FixedRates::paper_era();
        let result = r
            .fetch(ProductId(0), &ctx(&jar, Country::ES), 0, &rates, 0.5, 1)
            .unwrap();
        match result {
            FetchResult::Page {
                html,
                currency,
                price_quoted,
                price_eur,
                set_cookies,
            } => {
                assert_eq!(currency, "EUR", "localized to Spanish customer");
                assert!(price_quoted > 0.0 && price_eur > 0.0);
                assert!(html.contains("EUR") || html.contains('€'));
                assert!(set_cookies.iter().any(|(d, _)| d == "shop.example"));
                assert!(set_cookies.iter().any(|(_, c)| c.third_party));
                // The page parses and holds an extractable price element.
                let doc = sheriff_html::Document::parse(&html);
                let (tag, class) = crate::page::price_markup(0);
                assert!(doc.find_by_class(tag, class).is_some());
            }
            other => panic!("expected page, got {other:?}"),
        }
    }

    #[test]
    fn non_localizing_site_quotes_home_currency() {
        let mut r = retailer(vec![]);
        r.localizes_currency = false;
        let jar = CookieJar::new();
        let rates = FixedRates::paper_era();
        let result = r
            .fetch(ProductId(0), &ctx(&jar, Country::JP), 0, &rates, 0.5, 1)
            .unwrap();
        match result {
            FetchResult::Page { currency, .. } => assert_eq!(currency, "USD"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn uniform_retailer_same_price_everywhere() {
        let r = retailer(vec![]);
        let jar = CookieJar::new();
        let es = r.price_eur(ProductId(2), &ctx(&jar, Country::ES)).unwrap();
        let us = r.price_eur(ProductId(2), &ctx(&jar, Country::US)).unwrap();
        let jp = r.price_eur(ProductId(2), &ctx(&jar, Country::JP)).unwrap();
        assert_eq!(es, us);
        assert_eq!(es, jp);
    }

    #[test]
    fn country_multiplier_shows_in_fetch() {
        let mut factors = BTreeMap::new();
        factors.insert("JP".to_string(), 2.0);
        let r = retailer(vec![PricingStrategy::CountryMultiplier {
            factors,
            dampen_expensive: false,
        }]);
        let jar = CookieJar::new();
        let es = r.price_eur(ProductId(1), &ctx(&jar, Country::ES)).unwrap();
        let jp = r.price_eur(ProductId(1), &ctx(&jar, Country::JP)).unwrap();
        assert!((jp / es - 2.0).abs() < 0.01, "jp={jp} es={es}");
    }

    #[test]
    fn bot_detection_serves_captcha() {
        let mut r = retailer(vec![]);
        r.bot = Some(BotDetector::new(60_000, 2));
        let jar = CookieJar::new();
        let rates = FixedRates::paper_era();
        let c = ctx(&jar, Country::ES);
        for i in 0..2 {
            let res = r.fetch(ProductId(0), &c, i * 100, &rates, 0.5, 1).unwrap();
            assert!(matches!(res, FetchResult::Page { .. }), "request {i}");
        }
        let res = r.fetch(ProductId(0), &c, 300, &rates, 0.5, 1).unwrap();
        assert!(matches!(res, FetchResult::Captcha { .. }));
    }

    #[test]
    fn unknown_product_is_none() {
        let mut r = retailer(vec![]);
        let jar = CookieJar::new();
        let rates = FixedRates::paper_era();
        assert!(r
            .fetch(ProductId(999), &ctx(&jar, Country::ES), 0, &rates, 0.5, 1)
            .is_none());
    }

    #[test]
    fn shown_eur_matches_printed_amount() {
        // The EUR ground truth must reflect the *printed* (rounded) price,
        // so analyses compare what users actually saw.
        let mut r = retailer(vec![]);
        let jar = CookieJar::new();
        let rates = FixedRates::paper_era();
        if let Some(FetchResult::Page {
            currency,
            price_quoted,
            price_eur,
            ..
        }) = r.fetch(ProductId(3), &ctx(&jar, Country::JP), 0, &rates, 0.5, 1)
        {
            let back = rates.convert(price_quoted, currency, "EUR").unwrap();
            assert!((back - price_eur).abs() < 1e-9);
        } else {
            panic!("fetch failed");
        }
    }
}
