//! Per-IP bot detection.
//!
//! §3.2's discussion: "A retailer can detect any abnormal activity of the
//! IPC by counting the frequency of the visits from the same IP. If the
//! number of page requests is above some internal frequency threshold then
//! the retailer may block the IPC request or introduce a CAPTCHA." PPCs
//! evade this because their addresses are diverse and churn.

use std::collections::HashMap;

use sheriff_geo::IpV4;

/// Sliding-window request-frequency detector.
#[derive(Clone, Debug)]
pub struct BotDetector {
    /// Window length in virtual milliseconds.
    pub window_ms: u64,
    /// Requests per window tolerated before a CAPTCHA.
    pub threshold: usize,
    history: HashMap<IpV4, Vec<u64>>,
}

impl BotDetector {
    /// New detector.
    pub fn new(window_ms: u64, threshold: usize) -> Self {
        BotDetector {
            window_ms,
            threshold,
            history: HashMap::new(),
        }
    }

    /// Records a request from `ip` at `now_ms` and decides whether to serve
    /// a CAPTCHA instead of the page.
    pub fn check(&mut self, ip: IpV4, now_ms: u64) -> bool {
        let window_ms = self.window_ms;
        let hits = self.history.entry(ip).or_default();
        hits.retain(|&t| now_ms.saturating_sub(t) < window_ms);
        hits.push(now_ms);
        hits.len() > self.threshold
    }

    /// Distinct IPs currently tracked.
    pub fn tracked_ips(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(v: u32) -> IpV4 {
        IpV4(v)
    }

    #[test]
    fn below_threshold_passes() {
        let mut d = BotDetector::new(60_000, 5);
        for i in 0..5 {
            assert!(!d.check(ip(1), i * 1000), "request {i} blocked early");
        }
    }

    #[test]
    fn above_threshold_captchas() {
        let mut d = BotDetector::new(60_000, 5);
        for i in 0..5 {
            let _ = d.check(ip(1), i * 1000);
        }
        assert!(d.check(ip(1), 5_500));
    }

    #[test]
    fn window_expiry_resets() {
        let mut d = BotDetector::new(10_000, 2);
        let _ = d.check(ip(1), 0);
        let _ = d.check(ip(1), 1_000);
        assert!(d.check(ip(1), 2_000), "third hit in window blocked");
        // Far in the future: old hits expired.
        assert!(!d.check(ip(1), 100_000));
    }

    #[test]
    fn ips_are_independent() {
        let mut d = BotDetector::new(60_000, 1);
        let _ = d.check(ip(1), 0);
        assert!(d.check(ip(1), 10), "same IP trips");
        assert!(!d.check(ip(2), 20), "different IP unaffected");
        assert_eq!(d.tracked_ips(), 2);
    }
}
