//! Cookies and cookie jars — the *client-side state* of §3.6.
//!
//! The paper's pollution machinery revolves around which cookies a PPC
//! sends with a fetch and which cookies a fetch leaves behind. The jar is
//! deliberately simple: name/value pairs scoped by domain, with first- vs
//! third-party provenance tracked so the add-on can report tracker presence.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One cookie.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// True when set by a third-party (tracker) domain.
    pub third_party: bool,
}

/// Per-domain cookie storage.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieJar {
    /// domain → cookies (BTreeMap for deterministic iteration).
    store: BTreeMap<String, Vec<Cookie>>,
}

impl CookieJar {
    /// Empty jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) a cookie for `domain`.
    pub fn set(&mut self, domain: &str, cookie: Cookie) {
        let cookies = self.store.entry(domain.to_string()).or_default();
        if let Some(existing) = cookies.iter_mut().find(|c| c.name == cookie.name) {
            *existing = cookie;
        } else {
            cookies.push(cookie);
        }
    }

    /// Cookies stored for `domain`.
    pub fn get(&self, domain: &str) -> &[Cookie] {
        self.store.get(domain).map_or(&[], Vec::as_slice)
    }

    /// Value of a specific cookie.
    pub fn value(&self, domain: &str, name: &str) -> Option<&str> {
        self.get(domain)
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value.as_str())
    }

    /// Removes every cookie of `domain`. Returns how many were removed.
    pub fn clear_domain(&mut self, domain: &str) -> usize {
        self.store.remove(domain).map_or(0, |v| v.len())
    }

    /// All domains that have at least one cookie.
    pub fn domains(&self) -> impl Iterator<Item = &str> {
        self.store.keys().map(String::as_str)
    }

    /// Total cookie count.
    pub fn len(&self) -> usize {
        self.store.values().map(Vec::len).sum()
    }

    /// True when the jar holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Domains of third-party (tracker) cookies — what a donating user
    /// shares for tracker-correlation analysis (§2.2 req. 2).
    pub fn third_party_domains(&self) -> Vec<&str> {
        self.store
            .iter()
            .filter(|(_, cs)| cs.iter().any(|c| c.third_party))
            .map(|(d, _)| d.as_str())
            .collect()
    }

    /// Snapshot for sandboxing: the restore target.
    pub fn snapshot(&self) -> CookieJar {
        self.clone()
    }

    /// Difference: cookies present here but not in `before`. This is what
    /// the sandbox must delete after a remote fetch (§3.6.1).
    pub fn added_since(&self, before: &CookieJar) -> Vec<(String, Cookie)> {
        let mut out = Vec::new();
        for (domain, cookies) in &self.store {
            for c in cookies {
                let pre_existing = before
                    .get(domain)
                    .iter()
                    .any(|b| b.name == c.name && b.value == c.value);
                if !pre_existing {
                    out.push((domain.clone(), c.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str, value: &str) -> Cookie {
        Cookie {
            name: name.into(),
            value: value.into(),
            third_party: false,
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut jar = CookieJar::new();
        jar.set("shop.com", c("session", "abc"));
        assert_eq!(jar.value("shop.com", "session"), Some("abc"));
        assert_eq!(jar.value("shop.com", "other"), None);
        assert_eq!(jar.value("other.com", "session"), None);
    }

    #[test]
    fn set_replaces_same_name() {
        let mut jar = CookieJar::new();
        jar.set("shop.com", c("session", "abc"));
        jar.set("shop.com", c("session", "def"));
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.value("shop.com", "session"), Some("def"));
    }

    #[test]
    fn clear_domain_removes_all() {
        let mut jar = CookieJar::new();
        jar.set("shop.com", c("a", "1"));
        jar.set("shop.com", c("b", "2"));
        jar.set("keep.com", c("c", "3"));
        assert_eq!(jar.clear_domain("shop.com"), 2);
        assert!(jar.get("shop.com").is_empty());
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn third_party_domains_reported() {
        let mut jar = CookieJar::new();
        jar.set("shop.com", c("session", "x"));
        jar.set(
            "tracker.example",
            Cookie {
                name: "uid".into(),
                value: "42".into(),
                third_party: true,
            },
        );
        assert_eq!(jar.third_party_domains(), vec!["tracker.example"]);
    }

    #[test]
    fn added_since_detects_new_cookies() {
        let mut jar = CookieJar::new();
        jar.set("shop.com", c("session", "x"));
        let before = jar.snapshot();
        jar.set("shop.com", c("viewed", "p1"));
        jar.set("tracker.example", c("uid", "9"));
        let added = jar.added_since(&before);
        assert_eq!(added.len(), 2);
        assert!(added
            .iter()
            .any(|(d, ck)| d == "shop.com" && ck.name == "viewed"));
        // Value change counts as added (must be cleaned too).
        jar.set("shop.com", c("session", "polluted"));
        assert!(jar
            .added_since(&before)
            .iter()
            .any(|(_, ck)| ck.name == "session" && ck.value == "polluted"));
    }

    #[test]
    fn deterministic_domain_order() {
        let mut jar = CookieJar::new();
        jar.set("z.com", c("a", "1"));
        jar.set("a.com", c("a", "1"));
        let domains: Vec<&str> = jar.domains().collect();
        assert_eq!(domains, vec!["a.com", "z.com"]);
    }
}
