//! The third-party tracking ecosystem.
//!
//! Trackers are the suspected *information channel* for PDI-PD (§2.2
//! req. 2): they observe users across sites, build profiles, and could feed
//! them to pricing engines. The simulator models a small roster of tracker
//! domains; each maintains a per-user `profile_score` ∈ \[0,1\] (a wealth /
//! purchase-intent proxy) derived deterministically from the user's
//! browsing profile, and drops a third-party cookie carrying it whenever a
//! page embedding the tracker is fetched.

use serde::{Deserialize, Serialize};

use crate::cookies::{Cookie, CookieJar};
use crate::{hash_mix, hash_str};

/// Tracker domains embedded across the synthetic web.
pub const TRACKER_DOMAINS: &[&str] = &[
    "ads.trackly.example",
    "pixel.adnet.example",
    "sync.datapool.example",
    "tag.metric.example",
];

/// A third-party tracker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tracker {
    /// The tracker's domain.
    pub domain: String,
}

impl Tracker {
    /// Tracker by roster index (wraps).
    pub fn by_index(i: usize) -> Tracker {
        Tracker {
            domain: TRACKER_DOMAINS[i % TRACKER_DOMAINS.len()].to_string(),
        }
    }

    /// The profile score this tracker assigns to a user whose (domain-level)
    /// browsing is summarized by `affluence` ∈ \[0,1\]. Trackers see slightly
    /// different views of the same user, so the score is affluence plus a
    /// small deterministic tracker-specific perturbation.
    pub fn score_for(&self, user_affluence: f64, user_id: u64) -> f64 {
        let h = hash_mix(&[hash_str(&self.domain), user_id]);
        let noise = (h % 1000) as f64 / 1000.0 * 0.1 - 0.05;
        (user_affluence + noise).clamp(0.0, 1.0)
    }

    /// Drops/updates this tracker's cookie in `jar` during a page fetch.
    pub fn drop_cookie(&self, jar: &mut CookieJar, user_affluence: f64, user_id: u64) {
        let score = self.score_for(user_affluence, user_id);
        jar.set(
            &self.domain,
            Cookie {
                name: "profile_score".into(),
                value: format!("{score:.3}"),
                third_party: true,
            },
        );
        jar.set(
            &self.domain,
            Cookie {
                name: "uid".into(),
                value: format!("{user_id:016x}"),
                third_party: true,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_nonempty_and_wraps() {
        assert!(TRACKER_DOMAINS.len() >= 3);
        assert_eq!(
            Tracker::by_index(0).domain,
            Tracker::by_index(TRACKER_DOMAINS.len()).domain
        );
    }

    #[test]
    fn score_tracks_affluence() {
        let t = Tracker::by_index(0);
        let low = t.score_for(0.1, 42);
        let high = t.score_for(0.9, 42);
        assert!(high > low);
        assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
    }

    #[test]
    fn score_is_deterministic_per_user_and_tracker() {
        let t = Tracker::by_index(1);
        assert_eq!(t.score_for(0.5, 7), t.score_for(0.5, 7));
        // Different trackers perturb differently (usually).
        let other = Tracker::by_index(2);
        assert_ne!(
            (t.score_for(0.5, 7) * 1e6) as u64,
            (other.score_for(0.5, 7) * 1e6) as u64
        );
    }

    #[test]
    fn drop_cookie_installs_third_party_state() {
        let t = Tracker::by_index(0);
        let mut jar = CookieJar::new();
        t.drop_cookie(&mut jar, 0.7, 99);
        assert!(jar.value(&t.domain, "profile_score").is_some());
        assert!(jar.value(&t.domain, "uid").is_some());
        assert_eq!(jar.third_party_domains(), vec![t.domain.as_str()]);
        // Idempotent size: re-dropping replaces, not duplicates.
        t.drop_cookie(&mut jar, 0.7, 99);
        assert_eq!(jar.len(), 2);
    }
}
