//! The privacy-preserving k-means protocol (paper §3.8, Fig. 17/18, §10.4).
//!
//! Three roles, with the trust split the paper prescribes:
//!
//! * **clients** (PPCs) quantize their browsing-profile vectors, encrypt the
//!   derived `c`-vector under the Coordinator's keys, submit it once, and go
//!   offline;
//! * the **Aggregator** stores ciphertexts, runs blinded distance queries,
//!   and maintains the client→cluster mapping. It never sees a profile or a
//!   centroid;
//! * the **Coordinator** owns the secret keys and the centroids. It never
//!   sees a client point and never learns which client maps to which
//!   cluster — only per-cluster aggregates and cardinalities.
//!
//! The driver [`run_private`] iterates the two phases (client–cluster
//! mapping; centroid update) until the fraction of clients that changed
//! cluster falls below the halting threshold, exactly as §3.8 describes.
//! Distance evaluation dominates the cost (`n·k` inner products per
//! iteration, each `m + 2` exponentiations), and parallelizes trivially
//! across clients — the property behind Fig. 8c's multi-threaded speedup.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sheriff_bigint::Big;
use sheriff_crypto::dlog::DlogTable;
use sheriff_crypto::elgamal::{Ciphertext, SecretKey};
use sheriff_crypto::ipfe::{client_vector, server_vector};
use sheriff_crypto::protocol::{
    aggregate_cluster, coordinator_evaluate, decrypt_centroid, BlindedQuery,
};
use sheriff_crypto::GroupParams;

/// Configuration for a private k-means run.
#[derive(Clone, Debug)]
pub struct PrivateConfig {
    /// Number of clusters (doppelgangers).
    pub k: usize,
    /// Hard iteration cap. The paper observes convergence in 6–10
    /// iterations on real profiles (§4).
    pub max_iters: usize,
    /// Halt when the fraction of clients changing cluster in an iteration
    /// is at most this value.
    pub halt_changed_fraction: f64,
    /// Quantization grid: profile coordinates live in `0..=scale`.
    pub scale: u64,
    /// Worker threads for the distance phase (1 = sequential).
    pub threads: usize,
}

impl Default for PrivateConfig {
    fn default() -> Self {
        PrivateConfig {
            k: 8,
            max_iters: 20,
            halt_changed_fraction: 0.01,
            scale: 16,
            threads: 1,
        }
    }
}

/// Output of a private k-means run.
#[derive(Clone, Debug)]
pub struct PrivateResult {
    /// Final centroids on the quantized grid — the doppelganger profiles
    /// (known to the Coordinator only, in deployment).
    pub centroids: Vec<Vec<u64>>,
    /// Client→cluster mapping (known to the Aggregator only).
    pub assignments: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Coordinator role: secret keys + centroids.
pub struct Coordinator {
    sk: SecretKey,
    centroids: Vec<Vec<u64>>,
}

impl Coordinator {
    /// Sets up keys for `m`-dimensional profiles and `k` random initial
    /// centroids on the grid.
    pub fn setup<R: Rng + ?Sized>(
        params: &GroupParams,
        m: usize,
        k: usize,
        scale: u64,
        rng: &mut R,
    ) -> Self {
        let sk = SecretKey::generate(params, m + 2, rng);
        let centroids = (0..k)
            .map(|_| (0..m).map(|_| rng.gen_range(0..=scale)).collect())
            .collect();
        Coordinator { sk, centroids }
    }

    /// Overrides the initial centroids (for reproducible comparisons with
    /// the cleartext reference).
    pub fn set_centroids(&mut self, centroids: Vec<Vec<u64>>) {
        self.centroids = centroids;
    }

    /// Public keys the clients encrypt under.
    pub fn public_key(&self) -> sheriff_crypto::PublicKey {
        self.sk.public_key()
    }

    /// Current centroids (deployment: internal to the Coordinator).
    pub fn centroids(&self) -> &[Vec<u64>] {
        &self.centroids
    }

    /// Phase (a), Coordinator side: evaluate `g^{ρ·d²}` of a blinded client
    /// ciphertext against every centroid.
    pub fn evaluate_all(&self, blinded: &Ciphertext) -> Vec<Big> {
        self.centroids
            .iter()
            .map(|b| {
                let s = server_vector(b);
                coordinator_evaluate(&self.sk, blinded, &s)
            })
            .collect()
    }

    /// Phase (b), Coordinator side: decrypt a cluster aggregate into a new
    /// centroid. Empty clusters keep their previous centroid.
    pub fn update_centroid(
        &mut self,
        cluster: usize,
        aggregate: Option<&Ciphertext>,
        cardinality: u64,
        table: &DlogTable,
    ) {
        if let Some(agg) = aggregate {
            if cardinality > 0 {
                if let Some(c) = decrypt_centroid(&self.sk, agg, cardinality, 2, table) {
                    self.centroids[cluster] = c;
                }
            }
        }
    }
}

/// Aggregator role: ciphertexts + mapping.
pub struct Aggregator {
    params: GroupParams,
    cts: Vec<Ciphertext>,
    assignments: Vec<usize>,
}

impl Aggregator {
    /// Receives the encrypted client points.
    pub fn new(params: &GroupParams, cts: Vec<Ciphertext>) -> Self {
        let n = cts.len();
        Aggregator {
            params: params.clone(),
            cts,
            assignments: vec![usize::MAX; n],
        }
    }

    /// Current client→cluster mapping.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Phase (a): map every client to its nearest centroid via blinded
    /// queries. Returns the number of clients whose cluster changed.
    ///
    /// `threads > 1` splits clients across crossbeam-scoped workers; the
    /// Coordinator's evaluation is a pure function of shared state, so this
    /// models `t` parallel protocol sessions.
    pub fn map_clients<R: Rng + ?Sized>(
        &mut self,
        coordinator: &Coordinator,
        dist_table: &DlogTable,
        threads: usize,
        rng: &mut R,
    ) -> usize {
        let n = self.cts.len();
        let new_assignments: Vec<usize> = if threads <= 1 || n < 2 {
            let mut out = Vec::with_capacity(n);
            for ct in &self.cts {
                out.push(assign_one(&self.params, coordinator, dist_table, ct, rng));
            }
            out
        } else {
            let seeds: Vec<u64> = (0..threads).map(|_| rng.gen()).collect();
            let chunk = n.div_ceil(threads);
            let mut out = vec![0usize; n];
            let params = &self.params;
            let cts = &self.cts;
            crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for (w, slot) in out.chunks_mut(chunk).enumerate() {
                    let seed = seeds[w];
                    let start = w * chunk;
                    handles.push(scope.spawn(move |_| {
                        let mut trng = StdRng::seed_from_u64(seed);
                        for (off, s) in slot.iter_mut().enumerate() {
                            *s = assign_one(
                                params,
                                coordinator,
                                dist_table,
                                &cts[start + off],
                                &mut trng,
                            );
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("k-means worker panicked");
                }
            })
            .expect("crossbeam scope failed");
            out
        };

        let changed = new_assignments
            .iter()
            .zip(&self.assignments)
            .filter(|(a, b)| a != b)
            .count();
        self.assignments = new_assignments;
        changed
    }

    /// Phase (b), Aggregator side: aggregate each cluster's ciphertexts and
    /// feed the Coordinator's centroid update.
    pub fn update_centroids(&self, coordinator: &mut Coordinator, k: usize, table: &DlogTable) {
        for cluster in 0..k {
            let members: Vec<&Ciphertext> = self
                .cts
                .iter()
                .zip(&self.assignments)
                .filter(|(_, &a)| a == cluster)
                .map(|(ct, _)| ct)
                .collect();
            let n = members.len() as u64;
            let agg = aggregate_cluster(&self.params, &members);
            coordinator.update_centroid(cluster, agg.as_ref(), n, table);
        }
    }
}

fn assign_one<R: Rng + ?Sized>(
    params: &GroupParams,
    coordinator: &Coordinator,
    dist_table: &DlogTable,
    ct: &Ciphertext,
    rng: &mut R,
) -> usize {
    let query = BlindedQuery::blind(params, ct, rng);
    let responses = coordinator.evaluate_all(&query.blinded);
    let mut best = (0usize, i64::MAX);
    for (j, resp) in responses.iter().enumerate() {
        // A failed unblind means the distance overflowed the table — treat
        // as "very far" rather than aborting the whole clustering.
        let d2 = query.unblind(params, resp, dist_table).unwrap_or(i64::MAX);
        if d2 < best.1 {
            best = (j, d2);
        }
    }
    best.0
}

/// Runs the full protocol over cleartext quantized `points` (the driver
/// plays all three roles; deployment splits them across machines).
pub fn run_private<R: Rng + ?Sized>(
    params: &GroupParams,
    points: &[Vec<u64>],
    cfg: &PrivateConfig,
    rng: &mut R,
) -> PrivateResult {
    run_private_with_init(params, points, cfg, None, rng)
}

/// Like [`run_private`] but with explicit initial centroids (reproducibility
/// and reference comparisons).
pub fn run_private_with_init<R: Rng + ?Sized>(
    params: &GroupParams,
    points: &[Vec<u64>],
    cfg: &PrivateConfig,
    init: Option<Vec<Vec<u64>>>,
    rng: &mut R,
) -> PrivateResult {
    assert!(!points.is_empty(), "run_private: no points");
    let m = points[0].len();
    assert!(points.iter().all(|p| p.len() == m), "inconsistent dims");
    assert!(
        points.iter().all(|p| p.iter().all(|&x| x <= cfg.scale)),
        "point off the quantized grid"
    );

    // Clients encrypt and go offline.
    let mut coordinator = Coordinator::setup(params, m, cfg.k, cfg.scale, rng);
    if let Some(init) = init {
        assert_eq!(init.len(), cfg.k, "init centroid count");
        coordinator.set_centroids(init);
    }
    let pk = coordinator.public_key();
    let cts: Vec<Ciphertext> = points
        .iter()
        .map(|p| pk.encrypt(&client_vector(p), rng))
        .collect();
    let mut aggregator = Aggregator::new(params, cts);

    // Distance range: d² ≤ m · scale²; centroid sums ≤ n · scale.
    let dist_bound = (m as u64) * cfg.scale * cfg.scale + 1;
    let dist_table = DlogTable::build(params, dist_bound);
    let sum_bound = (points.len() as u64) * cfg.scale + 1;
    let sum_table = DlogTable::build(params, sum_bound);

    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let changed = aggregator.map_clients(&coordinator, &dist_table, cfg.threads, rng);
        aggregator.update_centroids(&mut coordinator, cfg.k, &sum_table);
        if (changed as f64) / (points.len() as f64) <= cfg.halt_changed_fraction {
            break;
        }
    }
    // Final mapping against the final centroids.
    let _ = aggregator.map_clients(&coordinator, &dist_table, cfg.threads, rng);

    PrivateResult {
        centroids: coordinator.centroids().to_vec(),
        assignments: aggregator.assignments().to_vec(),
        iterations,
    }
}

/// Cleartext k-means with semantics *identical* to the private protocol
/// (integer grid, round-to-nearest centroid division, ties to the lowest
/// cluster index, empty clusters frozen). The encrypted run must match this
/// exactly given the same initial centroids — pinned by tests.
pub fn reference_integer_kmeans(
    points: &[Vec<u64>],
    mut centroids: Vec<Vec<u64>>,
    max_iters: usize,
    halt_changed_fraction: f64,
) -> PrivateResult {
    let n = points.len();
    let k = centroids.len();
    let mut assignments = vec![usize::MAX; n];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let new_asg: Vec<usize> = points.iter().map(|p| nearest_int(p, &centroids)).collect();
        let changed = new_asg
            .iter()
            .zip(&assignments)
            .filter(|(a, b)| a != b)
            .count();
        assignments = new_asg;
        #[allow(clippy::needless_range_loop)] // c is the cluster id, not an index convenience
        for c in 0..k {
            let members: Vec<&Vec<u64>> = points
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == c)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            let card = members.len() as u64;
            centroids[c] = (0..points[0].len())
                .map(|d| {
                    let sum: u64 = members.iter().map(|p| p[d]).sum();
                    (sum + card / 2) / card
                })
                .collect();
        }
        if (changed as f64) / (n as f64) <= halt_changed_fraction {
            break;
        }
    }
    let assignments = points.iter().map(|p| nearest_int(p, &centroids)).collect();
    PrivateResult {
        centroids,
        assignments,
        iterations,
    }
}

fn nearest_int(p: &[u64], centroids: &[Vec<u64>]) -> usize {
    let mut best = (0usize, i64::MAX);
    for (j, c) in centroids.iter().enumerate() {
        let d2: i64 = p
            .iter()
            .zip(c)
            .map(|(&x, &y)| {
                let d = x as i64 - y as i64;
                d * d
            })
            .sum();
        if d2 < best.1 {
            best = (j, d2);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Vec<u64>> {
        // Two tight groups on the grid.
        vec![
            vec![0, 1, 0],
            vec![1, 0, 0],
            vec![0, 0, 1],
            vec![15, 16, 15],
            vec![16, 15, 16],
            vec![16, 16, 15],
        ]
    }

    #[test]
    fn private_matches_reference_exactly() {
        let params = GroupParams::test_64();
        let mut rng = StdRng::seed_from_u64(71);
        let points = grid_points();
        let init = vec![vec![2u64, 2, 2], vec![14, 14, 14]];
        let cfg = PrivateConfig {
            k: 2,
            max_iters: 10,
            halt_changed_fraction: 0.0,
            scale: 16,
            threads: 1,
        };
        let private = run_private_with_init(&params, &points, &cfg, Some(init.clone()), &mut rng);
        let reference = reference_integer_kmeans(&points, init, 10, 0.0);
        assert_eq!(private.centroids, reference.centroids);
        assert_eq!(private.assignments, reference.assignments);
    }

    #[test]
    fn private_parallel_matches_sequential() {
        let params = GroupParams::test_64();
        let points = grid_points();
        let init = vec![vec![0u64, 0, 0], vec![16, 16, 16]];
        let mk_cfg = |threads| PrivateConfig {
            k: 2,
            max_iters: 8,
            halt_changed_fraction: 0.0,
            scale: 16,
            threads,
        };
        let mut rng1 = StdRng::seed_from_u64(72);
        let seq =
            run_private_with_init(&params, &points, &mk_cfg(1), Some(init.clone()), &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(73);
        let par = run_private_with_init(&params, &points, &mk_cfg(3), Some(init), &mut rng2);
        // Blinding randomness differs but results are deterministic given
        // the same initial centroids.
        assert_eq!(seq.centroids, par.centroids);
        assert_eq!(seq.assignments, par.assignments);
    }

    #[test]
    fn clusters_separate_obvious_groups() {
        // Random initialization is data-blind (the Coordinator never sees
        // points), so like any k-means it can land badly; practitioners
        // restart. Require that a clear majority of seeded restarts separate
        // the two obvious groups.
        let params = GroupParams::test_64();
        let points = grid_points();
        let cfg = PrivateConfig {
            k: 2,
            max_iters: 12,
            halt_changed_fraction: 0.0,
            scale: 16,
            threads: 1,
        };
        let mut separated = 0;
        for seed in 74..84 {
            let mut rng = StdRng::seed_from_u64(seed);
            let res = run_private(&params, &points, &cfg, &mut rng);
            assert!(res.assignments.iter().all(|&a| a < 2));
            let ok = res.assignments[0] == res.assignments[1]
                && res.assignments[0] == res.assignments[2]
                && res.assignments[3] == res.assignments[4]
                && res.assignments[3] == res.assignments[5]
                && res.assignments[0] != res.assignments[3];
            if ok {
                separated += 1;
            }
        }
        assert!(
            separated >= 7,
            "only {separated}/10 restarts separated the groups"
        );
    }

    #[test]
    fn converges_quickly_on_separated_data() {
        let params = GroupParams::test_64();
        let mut rng = StdRng::seed_from_u64(75);
        let points = grid_points();
        let cfg = PrivateConfig {
            k: 2,
            max_iters: 20,
            halt_changed_fraction: 0.01,
            scale: 16,
            threads: 1,
        };
        let res = run_private(&params, &points, &cfg, &mut rng);
        assert!(res.iterations <= 6, "took {} iterations", res.iterations);
    }

    #[test]
    #[should_panic]
    fn off_grid_point_panics() {
        let params = GroupParams::test_64();
        let mut rng = StdRng::seed_from_u64(76);
        let cfg = PrivateConfig {
            scale: 4,
            ..Default::default()
        };
        let _ = run_private(&params, &[vec![100]], &cfg, &mut rng);
    }
}
