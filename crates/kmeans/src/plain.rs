//! Classic Lloyd's k-means with k-means++ seeding.
//!
//! This is the cleartext reference the paper's experiments in §4 use to pick
//! the domain universe (Fig. 8a) and the number of doppelgangers (Fig. 8b).
//! The private protocol in [`crate::private`] must produce clusterings of
//! comparable quality; integration tests compare both through silhouette
//! scores.

use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Clone, Copy, Debug)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tol: f64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KmeansResult {
    /// Final cluster centroids, `k` rows of dimension `m`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Iterations performed.
    pub iterations: usize,
    /// Sum of squared distances from each point to its centroid.
    pub inertia: f64,
}

/// Squared Euclidean distance between two points.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs Lloyd's algorithm with k-means++ seeding.
///
/// # Panics
/// If `points` is empty, dimensions are inconsistent, or `k == 0`.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    cfg: &KmeansConfig,
    rng: &mut R,
) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans: no points");
    assert!(cfg.k > 0, "kmeans: k must be positive");
    let m = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == m),
        "kmeans: inconsistent dimensions"
    );
    let k = cfg.k.min(points.len());

    let mut centroids = kmeanspp_init(points, k, rng);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    for it in 0..cfg.max_iters {
        iterations = it + 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            assignments[i] = nearest(p, &centroids).0;
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; m]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: reseed at the point farthest from its
                // centroid, the standard fix that keeps k clusters alive.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, a), (j, b)| {
                        let da = sq_dist(a, &centroids[assignments[*i]]);
                        let db = sq_dist(b, &centroids[assignments[*j]]);
                        da.partial_cmp(&db).unwrap()
                    })
                    .map_or(0, |(i, _)| i);
                movement += sq_dist(&centroids[c], &points[far]);
                centroids[c] = points[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += sq_dist(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= cfg.tol {
            break;
        }
    }
    // Final assignment pass so assignments match final centroids.
    for (i, p) in points.iter().enumerate() {
        assignments[i] = nearest(p, &centroids).0;
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KmeansResult {
        centroids,
        assignments,
        iterations,
        inertia,
    }
}

/// Index and squared distance of the nearest centroid.
pub fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn kmeanspp_init<R: Rng + ?Sized>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= f64::EPSILON {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[idx].clone());
        let latest = centroids.last().unwrap();
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, latest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Three well-separated Gaussian-ish blobs on a line.
        use rand::Rng as _;
        let centers = [0.0f64, 10.0, 20.0];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, &c) in centers.iter().enumerate() {
            for _ in 0..30 {
                let jitter: f64 = rng.gen::<f64>() - 0.5;
                pts.push(vec![c + jitter, c - jitter]);
                labels.push(ci);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pts, labels) = blobs(&mut rng);
        let res = kmeans(
            &pts,
            &KmeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        // Every ground-truth blob maps to exactly one cluster.
        for blob in 0..3 {
            let cluster_ids: std::collections::HashSet<usize> = labels
                .iter()
                .zip(&res.assignments)
                .filter(|(&l, _)| l == blob)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(cluster_ids.len(), 1, "blob {blob} split across clusters");
        }
        assert!(
            res.inertia < 90.0 * 1.0,
            "inertia too high: {}",
            res.inertia
        );
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0], vec![4.0, 2.0]];
        let res = kmeans(
            &pts,
            &KmeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((res.centroids[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = vec![vec![0.0], vec![1.0]];
        let res = kmeans(
            &pts,
            &KmeansConfig {
                k: 10,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(res.centroids.len() <= 2);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn identical_points_zero_inertia() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = vec![vec![5.0, 5.0]; 10];
        let res = kmeans(
            &pts,
            &KmeansConfig {
                k: 3,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let mut rng = StdRng::seed_from_u64(5);
        let (pts, _) = blobs(&mut rng);
        let res = kmeans(
            &pts,
            &KmeansConfig {
                k: 4,
                ..Default::default()
            },
            &mut rng,
        );
        for (p, &a) in pts.iter().zip(&res.assignments) {
            assert_eq!(nearest(p, &res.centroids).0, a);
        }
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = kmeans(&[], &KmeansConfig::default(), &mut rng);
    }
}
