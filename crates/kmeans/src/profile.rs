//! Browsing profiles and profile vectors (paper §3.7, §4).
//!
//! A user's browsing profile is the number of visits to each of `m` domains
//! over a period. The profile *vector* normalizes these counts so the most
//! visited domain maps to 1 and absent domains to 0 — and, for the encrypted
//! protocol, quantizes them onto an integer grid `0..=scale` (encryption at
//! the exponent needs small integer plaintexts).

use std::collections::HashMap;

/// Domain-level browsing history: visit counts per domain.
///
/// Full URLs are deliberately not representable here — the paper collects
/// history at domain granularity only, because full URLs leak PII (§2.2).
#[derive(Clone, Debug, Default)]
pub struct RawHistory {
    visits: HashMap<String, u64>,
}

impl RawHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` visits to `domain`.
    pub fn record(&mut self, domain: &str, count: u64) {
        *self.visits.entry(domain.to_string()).or_insert(0) += count;
    }

    /// Visit count for `domain` (0 when never visited).
    pub fn count(&self, domain: &str) -> u64 {
        self.visits.get(domain).copied().unwrap_or(0)
    }

    /// Number of distinct domains visited.
    pub fn distinct_domains(&self) -> usize {
        self.visits.len()
    }

    /// Total visits across all domains.
    pub fn total_visits(&self) -> u64 {
        self.visits.values().sum()
    }

    /// Iterates `(domain, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.visits.iter().map(|(d, &c)| (d.as_str(), c))
    }
}

/// Which domain universe defines the vector dimensions (Fig. 8a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UniverseStrategy {
    /// The `m` domains most visited across the donated user histories.
    /// The paper found this yields sparser vectors and weaker clusters.
    UserTop,
    /// The top `m` domains of an external popularity ranking (Alexa). The
    /// paper's choice: denser vectors, better silhouette, `m = 100`.
    AlexaTop,
}

/// Builds the `m`-domain universe from user histories and/or an external
/// ranking, per the chosen strategy. The returned order is the dimension
/// order of every profile vector.
pub fn build_universe(
    histories: &[RawHistory],
    alexa_ranking: &[String],
    strategy: UniverseStrategy,
    m: usize,
) -> Vec<String> {
    match strategy {
        UniverseStrategy::AlexaTop => alexa_ranking.iter().take(m).cloned().collect(),
        UniverseStrategy::UserTop => {
            let mut totals: HashMap<&str, u64> = HashMap::new();
            for h in histories {
                for (d, c) in h.iter() {
                    *totals.entry(d).or_insert(0) += c;
                }
            }
            let mut ranked: Vec<(&str, u64)> = totals.into_iter().collect();
            // Sort by count desc, then name for determinism.
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            ranked
                .into_iter()
                .take(m)
                .map(|(d, _)| d.to_string())
                .collect()
        }
    }
}

/// Quantized profile vector: visit counts over `universe`, normalized so the
/// user's most-visited universe domain maps to `scale`, others
/// proportionally, absent domains to 0.
///
/// Returns the all-zero vector for a user with no visits inside the
/// universe.
pub fn profile_vector(history: &RawHistory, universe: &[String], scale: u64) -> Vec<u64> {
    let max = universe.iter().map(|d| history.count(d)).max().unwrap_or(0);
    if max == 0 {
        return vec![0; universe.len()];
    }
    universe
        .iter()
        .map(|d| {
            let c = history.count(d);
            // Round-to-nearest onto the grid.
            (c * scale + max / 2) / max
        })
        .collect()
}

/// Converts a quantized vector to `f64` coordinates in `[0, 1]` for the
/// plain (floating-point) clustering pipeline.
pub fn to_unit_f64(v: &[u64], scale: u64) -> Vec<f64> {
    v.iter().map(|&x| x as f64 / scale as f64).collect()
}

/// Density of a set of profile vectors: fraction of nonzero coordinates.
/// Used to reproduce the paper's observation that "Alexa top Domains" gives
/// denser vectors than "Users top Domains" (§4).
pub fn density(vectors: &[Vec<u64>]) -> f64 {
    let total: usize = vectors.iter().map(Vec::len).sum();
    if total == 0 {
        return 0.0;
    }
    let nonzero: usize = vectors
        .iter()
        .map(|v| v.iter().filter(|&&x| x > 0).count())
        .sum();
    nonzero as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(pairs: &[(&str, u64)]) -> RawHistory {
        let mut h = RawHistory::new();
        for (d, c) in pairs {
            h.record(d, *c);
        }
        h
    }

    #[test]
    fn record_accumulates() {
        let mut hist = RawHistory::new();
        hist.record("a.com", 2);
        hist.record("a.com", 3);
        assert_eq!(hist.count("a.com"), 5);
        assert_eq!(hist.count("b.com"), 0);
        assert_eq!(hist.distinct_domains(), 1);
        assert_eq!(hist.total_visits(), 5);
    }

    #[test]
    fn alexa_universe_is_ranking_prefix() {
        let ranking: Vec<String> = ["g.com", "y.com", "f.com"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let u = build_universe(&[], &ranking, UniverseStrategy::AlexaTop, 2);
        assert_eq!(u, vec!["g.com".to_string(), "y.com".to_string()]);
    }

    #[test]
    fn user_universe_ranks_by_aggregate_visits() {
        let hs = vec![
            h(&[("a.com", 10), ("b.com", 1)]),
            h(&[("b.com", 5), ("c.com", 3)]),
        ];
        let u = build_universe(&hs, &[], UniverseStrategy::UserTop, 2);
        assert_eq!(u, vec!["a.com".to_string(), "b.com".to_string()]);
    }

    #[test]
    fn user_universe_ties_break_deterministically() {
        let hs = vec![h(&[("z.com", 5), ("a.com", 5)])];
        let u = build_universe(&hs, &[], UniverseStrategy::UserTop, 2);
        assert_eq!(u, vec!["a.com".to_string(), "z.com".to_string()]);
    }

    #[test]
    fn profile_vector_normalizes_to_scale() {
        let universe: Vec<String> = ["a.com", "b.com", "c.com"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let hist = h(&[("a.com", 8), ("b.com", 4), ("x.com", 100)]);
        // x.com is outside the universe, so a.com (8) is the max.
        let v = profile_vector(&hist, &universe, 16);
        assert_eq!(v, vec![16, 8, 0]);
    }

    #[test]
    fn empty_history_gives_zero_vector() {
        let universe: Vec<String> = vec!["a.com".to_string()];
        let v = profile_vector(&RawHistory::new(), &universe, 16);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn unit_f64_conversion() {
        let v = to_unit_f64(&[0, 8, 16], 16);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn density_counts_nonzero_fraction() {
        assert_eq!(density(&[vec![0, 1], vec![2, 0]]), 0.5);
        assert_eq!(density(&[]), 0.0);
    }
}
