//! Silhouette scores (Rousseeuw 1987), the clustering-quality measure the
//! paper uses to tune `m` (Fig. 8a) and `k` (Fig. 8b).
//!
//! For a point `i` in cluster `A`: `a(i)` is its mean distance to the other
//! members of `A`, `b(i)` the smallest mean distance to any other cluster,
//! and `s(i) = (b - a) / max(a, b) ∈ [-1, 1]`. Singleton clusters score 0 by
//! convention.

use crate::plain::sq_dist;

/// Per-point silhouette coefficients.
///
/// `assignments[i]` is the cluster of `points[i]`; `k` is the number of
/// clusters. O(n²) pairwise distances — fine at the paper's scale (≈500
/// donated profiles).
///
/// # Panics
/// If lengths disagree or an assignment is `>= k`.
pub fn silhouette_samples(points: &[Vec<f64>], assignments: &[usize], k: usize) -> Vec<f64> {
    assert_eq!(points.len(), assignments.len(), "length mismatch");
    assert!(
        assignments.iter().all(|&a| a < k),
        "assignment out of range"
    );
    let n = points.len();
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }

    let mut scores = vec![0.0f64; n];
    for i in 0..n {
        let own = assignments[i];
        if cluster_sizes[own] <= 1 {
            scores[i] = 0.0;
            continue;
        }
        // Mean distance to each cluster.
        let mut dist_sum = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sum[assignments[j]] += sq_dist(&points[i], &points[j]).sqrt();
        }
        let a = dist_sum[own] / (cluster_sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| dist_sum[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            scores[i] = 0.0; // only one non-empty cluster
            continue;
        }
        let denom = a.max(b);
        scores[i] = if denom <= f64::EPSILON {
            0.0
        } else {
            (b - a) / denom
        };
    }
    scores
}

/// Mean silhouette over all points — the scalar plotted in Fig. 8a/8b.
pub fn mean_silhouette(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    let s = silhouette_samples(points, assignments, k);
    if s.is_empty() {
        return 0.0;
    }
    s.iter().sum::<f64>() / s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_scores_near_one() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![100.0, 100.0],
            vec![100.1, 100.0],
            vec![100.0, 100.1],
        ];
        let asg = vec![0, 0, 0, 1, 1, 1];
        let s = mean_silhouette(&pts, &asg, 2);
        assert!(s > 0.99, "got {s}");
    }

    #[test]
    fn bad_clustering_scores_negative() {
        // Swap labels so each point sits in the wrong cluster.
        let pts = vec![vec![0.0], vec![0.1], vec![100.0], vec![100.1]];
        let asg = vec![0, 1, 1, 0];
        let s = mean_silhouette(&pts, &asg, 2);
        assert!(s < 0.0, "got {s}");
    }

    #[test]
    fn singletons_score_zero() {
        let pts = vec![vec![0.0], vec![50.0], vec![100.0]];
        let asg = vec![0, 1, 2];
        let s = silhouette_samples(&pts, &asg, 3);
        assert_eq!(s, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_cluster_scores_zero() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let asg = vec![0, 0, 0];
        let s = mean_silhouette(&pts, &asg, 1);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn scores_bounded() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let asg: Vec<usize> = (0..20).map(|i| i % 4).collect();
        for s in silhouette_samples(&pts, &asg, 4) {
            assert!((-1.0..=1.0).contains(&s), "out of bounds: {s}");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_assignment_panics() {
        let _ = silhouette_samples(&[vec![0.0]], &[3], 2);
    }
}
