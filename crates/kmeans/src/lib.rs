//! Clustering for doppelganger creation (paper §3.7, §3.8, §4).
//!
//! The $heriff clusters users by *browsing profile vectors* — normalized
//! visit frequencies over a fixed universe of `m` domains — and trains one
//! doppelganger per cluster centroid. This crate provides:
//!
//! * [`profile`] — raw histories, domain-universe selection ("Users top
//!   Domains" vs "Alexa top Domains", Fig. 8a), and quantized profile
//!   vectors;
//! * [`plain`] — classic Lloyd's k-means with k-means++ seeding (used for
//!   the silhouette experiments of Fig. 8a/8b);
//! * [`silhouette`] — the clustering-quality score of Rousseeuw used
//!   throughout §4;
//! * [`private`] — the privacy-preserving k-means of §3.8: Coordinator and
//!   Aggregator roles over the encrypted protocol in `sheriff-crypto`, with
//!   optional multi-threaded distance evaluation (Fig. 8c).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plain;
pub mod private;
pub mod profile;
pub mod silhouette;

pub use plain::{kmeans, KmeansConfig, KmeansResult};
pub use private::{run_private, run_private_with_init, PrivateConfig, PrivateResult};
pub use profile::{
    build_universe, density, profile_vector, to_unit_f64, RawHistory, UniverseStrategy,
};
pub use silhouette::{mean_silhouette, silhouette_samples};
