//! Property tests for clustering: invariants of k-means results, silhouette
//! bounds, profile-vector normalization, and exact private/cleartext
//! agreement on random grids.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_crypto::GroupParams;
use sheriff_kmeans::private::{reference_integer_kmeans, run_private_with_init, PrivateConfig};
use sheriff_kmeans::{
    kmeans, mean_silhouette, profile_vector, silhouette_samples, KmeansConfig, RawHistory,
};

fn arb_points(max_n: usize, dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, dims), 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_invariants(points in arb_points(30, 3), k in 1usize..6, seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&points, &KmeansConfig { k, max_iters: 30, tol: 1e-9 }, &mut rng);
        prop_assert_eq!(res.assignments.len(), points.len());
        let k_eff = res.centroids.len();
        prop_assert!(k_eff <= k.min(points.len()).max(1));
        prop_assert!(res.assignments.iter().all(|&a| a < k_eff));
        prop_assert!(res.inertia >= 0.0);
        // Assignments are optimal w.r.t. the final centroids.
        for (p, &a) in points.iter().zip(&res.assignments) {
            let my = sheriff_kmeans::plain::sq_dist(p, &res.centroids[a]);
            for c in &res.centroids {
                prop_assert!(my <= sheriff_kmeans::plain::sq_dist(p, c) + 1e-9);
            }
        }
    }

    #[test]
    fn inertia_never_increases_with_k(points in arb_points(25, 2), seed in 0u64..200) {
        // More clusters can only lower (best-case) inertia; with fixed
        // seeds and restarts the min over restarts is monotone enough to
        // assert a weak version: k = n gives (near) zero inertia.
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(
            &points,
            &KmeansConfig { k: points.len(), max_iters: 50, tol: 1e-12 },
            &mut rng,
        );
        prop_assert!(res.inertia < 1e-6, "inertia {} with k=n", res.inertia);
    }

    #[test]
    fn silhouette_always_bounded(points in arb_points(20, 2), k in 1usize..5, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&points, &KmeansConfig { k, max_iters: 20, tol: 1e-9 }, &mut rng);
        let k_eff = res.centroids.len().max(1);
        let scores = silhouette_samples(&points, &res.assignments, k_eff);
        for s in &scores {
            prop_assert!((-1.0..=1.0).contains(s));
        }
        let m = mean_silhouette(&points, &res.assignments, k_eff);
        prop_assert!((-1.0..=1.0).contains(&m));
    }

    #[test]
    fn profile_vectors_normalized(counts in proptest::collection::vec(0u64..500, 5)) {
        let universe: Vec<String> = (0..5).map(|i| format!("d{i}.example")).collect();
        let mut h = RawHistory::new();
        for (d, &c) in universe.iter().zip(&counts) {
            if c > 0 {
                h.record(d, c);
            }
        }
        let v = profile_vector(&h, &universe, 16);
        prop_assert_eq!(v.len(), 5);
        prop_assert!(v.iter().all(|&x| x <= 16));
        if counts.iter().any(|&c| c > 0) {
            prop_assert!(v.contains(&16), "max coordinate must hit the scale");
        } else {
            prop_assert!(v.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn private_equals_reference_on_random_grids(
        points in proptest::collection::vec(
            proptest::collection::vec(0u64..9, 3),
            2..10,
        ),
        seed in 0u64..200,
    ) {
        let params = GroupParams::test_64();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = vec![vec![0u64, 0, 0], vec![8, 8, 8]];
        let cfg = PrivateConfig {
            k: 2,
            max_iters: 5,
            halt_changed_fraction: 0.0,
            scale: 8,
            threads: 1,
        };
        let private = run_private_with_init(&params, &points, &cfg, Some(init.clone()), &mut rng);
        let reference = reference_integer_kmeans(&points, init, 5, 0.0);
        prop_assert_eq!(private.centroids, reference.centroids);
        prop_assert_eq!(private.assignments, reference.assignments);
    }
}
