//! A systematic crawl scenario (paper §7.1): artificial price checks
//! against flagged domains, tunneled through the Spain PPC pool, followed
//! by the location-vs-within-country classification.
//!
//! ```text
//! cargo run --release -p sheriff-experiments --example crawl_study
//! ```

use sheriff_core::analysis::{analyze_domains, classify, DomainVerdict};
use sheriff_experiments::crawl::run_crawl;
use sheriff_experiments::Scale;
use sheriff_geo::Country;

fn main() {
    println!("Running a demo-scale systematic crawl (Spain PPC pool)…\n");
    let ds = run_crawl(Scale::Demo, 1742, Country::ES);
    println!(
        "issued {} requests over {} domains; {} completed\n",
        ds.requests_issued,
        ds.domains.len(),
        ds.checks.len()
    );

    let analyses = analyze_domains(&ds.checks, 0.005);
    println!(
        "{:<24} {:>6} {:>7} {:>8}  verdict",
        "domain", "reqs", "w/diff", "median"
    );
    println!("{}", "-".repeat(64));
    for a in &analyses {
        let verdict = match classify(a, 3) {
            DomainVerdict::Uniform => "uniform",
            DomainVerdict::LocationBased => "location-based PD",
            DomainVerdict::WithinCountry => "VARIES WITHIN COUNTRY",
        };
        println!(
            "{:<24} {:>6} {:>7} {:>7.0}%  {verdict}",
            a.domain,
            a.requests,
            a.requests_with_difference,
            a.median_spread().unwrap_or(0.0) * 100.0,
        );
    }

    println!();
    println!("The within-country domains are the candidates for the §7.3–§7.5");
    println!("follow-up (A/B testing vs personal-data-induced discrimination).");
}
