//! The real-sockets deployment (sheriff-wire): the full node roster —
//! Coordinator, Aggregator, Measurement server, IPCs, and PPC add-ons —
//! on localhost TCP ports, running the same `sheriff_core::protocol`
//! state machines as the simulation in length-prefixed JSON frames.
//!
//! ```text
//! cargo run --release -p sheriff-experiments --example tcp_mini_deployment
//! ```

use sheriff_core::system::{PpcSpec, SheriffConfig};
use sheriff_geo::Country;
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_wire::MiniDeployment;

fn main() {
    let world = World::build(&WorldConfig::small(), 1742);

    // PPC selection is location-local (§6.1), so the peers share a
    // country; cross-country vantage points come from the IPC roster.
    let mut cfg = SheriffConfig::v1(1742);
    cfg.ipc_locations = vec![(Country::US, 0), (Country::JP, 0), (Country::GB, 0)];
    cfg.proc_per_reply_ms = 2.0;
    cfg.context_switch_alpha = 0.0;
    let peers: Vec<PpcSpec> = (10u64..14)
        .map(|peer_id| PpcSpec {
            peer_id,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: Os::Linux,
                browser: Browser::Firefox,
            },
            affluence: 0.3,
            logged_in_domains: vec![],
        })
        .collect();

    let deployment = MiniDeployment::start_with(world, cfg, &peers).expect("deployment starts");
    println!(
        "mini-deployment up — coordinator at {}\n",
        deployment.coordinator_addr()
    );

    for (initiator, domain, product) in [
        (10, "steampowered.com", ProductId(0)),
        (11, "abercrombie.com", ProductId(2)),
        (12, "amazon.com", ProductId(1)),
    ] {
        match deployment.run_price_check(initiator, domain, product) {
            Ok(rows) => {
                println!("{domain} product {} (peer {initiator}):", product.0);
                for r in &rows {
                    let mark = if r.low_confidence { "*" } else { " " };
                    println!(
                        "  {:<24} {:>10.2} EUR{mark}  {}",
                        r.label, r.converted, r.original
                    );
                }
                println!();
            }
            Err(e) => println!("{domain}: {e}\n"),
        }
    }

    // The whitelist works over TCP too.
    match deployment.run_price_check(10, "not-a-shop.example", ProductId(0)) {
        Err(e) => println!("non-whitelisted domain correctly refused: {e}"),
        Ok(_) => println!("unexpected: non-whitelisted domain served"),
    }

    deployment.shutdown();
    println!("deployment shut down cleanly.");
}
