//! The real-sockets deployment (sheriff-wire): Coordinator, Measurement
//! server, and peers on localhost TCP ports, running the §3.2 protocol in
//! length-prefixed JSON frames.
//!
//! ```text
//! cargo run --release -p sheriff-experiments --example tcp_mini_deployment
//! ```

use sheriff_geo::Country;
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, World};
use sheriff_wire::MiniDeployment;

fn main() {
    let world = World::build(&WorldConfig::small(), 1742);
    let deployment = MiniDeployment::start(
        world,
        &[
            (10, Country::ES),
            (11, Country::US),
            (12, Country::JP),
            (13, Country::GB),
        ],
    )
    .expect("deployment starts");
    println!(
        "mini-deployment up — coordinator at {}\n",
        deployment.coordinator_addr()
    );

    for (domain, product) in [
        ("steampowered.com", ProductId(0)),
        ("abercrombie.com", ProductId(2)),
        ("amazon.com", ProductId(1)),
    ] {
        match deployment.run_price_check(domain, product) {
            Ok(rows) => {
                println!("{domain} product {}:", product.0);
                for r in &rows {
                    let mark = if r.low_confidence { "*" } else { " " };
                    println!(
                        "  {:<24} {:>10.2} EUR{mark}  {}",
                        r.label, r.converted, r.original
                    );
                }
                println!();
            }
            Err(e) => println!("{domain}: {e}\n"),
        }
    }

    // The whitelist works over TCP too.
    match deployment.run_price_check("not-a-shop.example", ProductId(0)) {
        Err(e) => println!("non-whitelisted domain correctly refused: {e}"),
        Ok(_) => println!("unexpected: non-whitelisted domain served"),
    }

    deployment.shutdown();
    println!("deployment shut down cleanly.");
}
