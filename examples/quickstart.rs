//! Quickstart: one price check through the full Price $heriff, printed as
//! the paper's Fig. 2 result page.
//!
//! ```text
//! cargo run --release -p sheriff-experiments --example quickstart
//! ```

use sheriff_core::records::VantageKind;
use sheriff_core::system::{PpcSpec, PriceSheriff, SheriffConfig};
use sheriff_geo::Country;
use sheriff_market::pricing::{Browser, Os};
use sheriff_market::world::WorldConfig;
use sheriff_market::{ProductId, UserAgent, World};
use sheriff_netsim::SimTime;

fn main() {
    // 1. A synthetic e-commerce world: case-study retailers + generic
    //    stores, with known ground-truth pricing behaviour.
    let world = World::build(&WorldConfig::small(), 1742);

    // 2. A handful of peers running the add-on in Spain.
    let peers: Vec<PpcSpec> = (0..4)
        .map(|i| PpcSpec {
            peer_id: 100 + i,
            country: Country::ES,
            city_idx: 0,
            user_agent: UserAgent {
                os: Os::Linux,
                browser: Browser::Firefox,
            },
            affluence: 0.3,
            logged_in_domains: vec![],
        })
        .collect();

    // 3. The full system: Coordinator, 2 Measurement servers, Database
    //    server, 30 IPCs, the peers — over the discrete-event network.
    let mut sheriff = PriceSheriff::new(SheriffConfig::v2(1742, 2), world, &peers);

    // 4. Peer 100 highlights a price on steampowered.com.
    sheriff.submit_check(SimTime::ZERO, 100, "steampowered.com", ProductId(3));
    sheriff.run_until(SimTime::from_mins(10));

    // 5. The result page (paper Fig. 2).
    let completed = sheriff.completed();
    let check = &completed.first().expect("check completed").check;
    println!("Price check #{} — {}", check.job_id, check.url);
    println!(
        "(elapsed: {:.1}s of virtual time)\n",
        completed[0]
            .completed
            .since(completed[0].submitted)
            .as_secs_f64()
    );
    println!("{:<34} {:>12}  Original Text", "Variant", "EUR");
    println!("{}", "-".repeat(62));
    for obs in &check.observations {
        let label = match obs.vantage {
            VantageKind::Initiator => "You".to_string(),
            VantageKind::Ipc => format!(
                "{}, {}",
                obs.country.name(),
                obs.city.as_deref().unwrap_or("-")
            ),
            VantageKind::Ppc => format!("peer {} ({})", obs.vantage_id, obs.country.name()),
        };
        if obs.failed {
            println!("{label:<34} {:>12}  (no price)", "-");
            continue;
        }
        let mark = if obs.low_confidence { "*" } else { " " };
        println!(
            "{label:<34} {:>11.2}{mark}  {}",
            obs.amount_eur, obs.raw_text
        );
    }
    println!("\n* currency detection confidence is low — double-check the result");
    if let Some(spread) = check.relative_spread() {
        println!(
            "\nmax/min spread: {:.1}% — {}",
            spread * 100.0,
            if spread > 0.01 {
                "this retailer returns different prices to different locations!"
            } else {
                "prices agree across vantage points."
            }
        );
    }
}
