//! A compressed live deployment (paper §6): a population of add-on users
//! issues price checks through the full system; the harvested dataset is
//! summarized the way §6.2 reports it.
//!
//! ```text
//! cargo run --release -p sheriff-experiments --example live_deployment
//! ```

use sheriff_core::analysis::{analyze_domains, classify, DomainVerdict};
use sheriff_experiments::liveworld::run_live_study;
use sheriff_experiments::Scale;

fn main() {
    println!("Simulating a (demo-scale) live deployment year…");
    let ds = run_live_study(Scale::Demo, 1742);
    println!(
        "{} requests issued, {} completed, {} sandbox violations\n",
        ds.requests_issued,
        ds.checks.len(),
        ds.sandbox_violations
    );

    let analyses = analyze_domains(&ds.checks, 0.005);
    let with_diff = analyses
        .iter()
        .filter(|a| a.requests_with_difference > 0)
        .count();
    println!(
        "§6.2-style findings: {} of {} checked domains returned differing prices",
        with_diff,
        analyses.len()
    );

    let within: Vec<&str> = analyses
        .iter()
        .filter(|a| classify(a, 3) == DomainVerdict::WithinCountry)
        .map(|a| a.domain.as_str())
        .collect();
    println!("domains varying *within* a country: {within:?}");
    println!(
        "ground truth (world construction):  {:?}",
        ds.truth_within_country
    );

    // Detection quality against ground truth.
    let detected: Vec<&str> = analyses
        .iter()
        .filter(|a| a.requests_with_difference > 0)
        .map(|a| a.domain.as_str())
        .collect();
    let tp = detected
        .iter()
        .filter(|d| ds.truth_discriminating.iter().any(|t| t == *d))
        .count();
    println!(
        "\nlocation-PD detection: {tp}/{} flagged domains are true discriminators",
        detected.len()
    );
    println!(
        "(the world contains {} discriminating domains; coverage grows with --full)",
        ds.truth_discriminating.len()
    );
}
