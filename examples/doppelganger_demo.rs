//! The doppelganger pipeline end-to-end (paper §3.6–§3.8): donated
//! profiles → *privacy-preserving* k-means between Coordinator and
//! Aggregator → doppelganger training → pollution-bounded serving with
//! bearer-token state distribution.
//!
//! ```text
//! cargo run --release -p sheriff-experiments --example doppelganger_demo
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sheriff_core::doppelganger::{AggregatorDirectory, DoppelgangerStore};
use sheriff_core::pollution::FetchMode;
use sheriff_crypto::GroupParams;
use sheriff_experiments::population;
use sheriff_kmeans::{
    build_universe, profile_vector, run_private, PrivateConfig, UniverseStrategy,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(1742);

    // 1. Donated (cleartext-on-the-client) browsing histories.
    let pop = population::generate(60, 1742);
    let donors: Vec<_> = pop.users.iter().filter(|u| u.donates_history).collect();
    println!(
        "{} users, {} donate their history",
        pop.users.len(),
        donors.len()
    );

    // 2. Profile vectors over the Alexa-top universe (Fig. 8a's choice),
    //    quantized for encryption at the exponent.
    let histories: Vec<_> = donors.iter().map(|u| u.history.clone()).collect();
    let universe = build_universe(
        &histories,
        &pop.alexa_ranking,
        UniverseStrategy::AlexaTop,
        30,
    );
    let scale = 8u64;
    let points: Vec<Vec<u64>> = histories
        .iter()
        .map(|h| profile_vector(h, &universe, scale))
        .collect();

    // 3. Privacy-preserving k-means: the Coordinator holds the keys and
    //    centroids, the Aggregator holds ciphertexts and the mapping;
    //    neither sees a profile (§3.8). 64-bit toy group for demo speed.
    println!(
        "\nrunning the encrypted k-means protocol (k = 5, m = {})…",
        universe.len()
    );
    let params = GroupParams::test_64();
    let cfg = PrivateConfig {
        k: 5,
        max_iters: 8,
        halt_changed_fraction: 0.02,
        scale,
        threads: 1,
    };
    let result = run_private(&params, &points, &cfg, &mut rng);
    println!(
        "converged in {} iterations; cluster sizes: {:?}",
        result.iterations,
        (0..5)
            .map(|c| result.assignments.iter().filter(|&&a| a == c).count())
            .collect::<Vec<_>>()
    );

    // 4. The Coordinator trains one doppelganger per centroid; tokens go to
    //    the Aggregator for the peer→token directory.
    let mut store = DoppelgangerStore::new();
    let tokens = store.train_all(&result.centroids, &universe, &mut rng);
    let assignments: Vec<(u64, usize)> = donors
        .iter()
        .zip(&result.assignments)
        .map(|(u, &a)| (u.peer_id, a))
        .collect();
    let directory = AggregatorDirectory::new(&assignments, tokens.clone());
    println!("\ntrained {} doppelgangers:", store.len());
    for (i, t) in tokens.iter().enumerate() {
        let members = result.assignments.iter().filter(|&&a| a == i).count();
        println!(
            "  cluster {i}: token {}…  ({members} peers)",
            &t.to_hex()[..12]
        );
    }

    // 5. A peer past its pollution budget serves a fetch with doppelganger
    //    state: ID from the Aggregator, client-side state (bearer token)
    //    from the Coordinator.
    let peer = assignments[0].0;
    let token = directory.token_for(peer).expect("peer is clustered");
    let domain = &universe[0];
    let (new_token, mode) = store
        .serve(&token, domain, &universe, &mut rng)
        .expect("valid bearer token");
    println!("\npeer {peer} needs doppelganger state for {domain}:");
    println!(
        "  Aggregator answered with token {}…",
        &token.to_hex()[..12]
    );
    println!("  Coordinator served fetch mode {mode:?}");
    if new_token != token {
        println!("  doppelganger saturated → regenerated with a fresh token");
    }
    assert!(matches!(
        mode,
        FetchMode::RealOwnState | FetchMode::CleanOwnState | FetchMode::Doppelganger
    ));

    println!("\nPrivacy invariants demonstrated:");
    println!("  - the Coordinator never saw a profile (only blinded ciphertexts);");
    println!("  - the Aggregator never saw a centroid (only squared distances);");
    println!("  - doppelganger state is released only against the 256-bit token.");
}
