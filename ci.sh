#!/usr/bin/env bash
# Local CI gate: formatting, lints on the telemetry crate, and the tier-1
# build + test sweep. Each stage is skipped (not failed) if its toolchain
# component is missing, so the script degrades gracefully on minimal
# containers.
set -euo pipefail
cd "$(dirname "$0")"

stage() { printf '\n==> %s\n' "$*"; }

# The seed tree (and the vendored stubs) predate rustfmt enforcement, so
# the gate covers the crates brought clean so far; widen as more follow.
CLEAN_CRATES=(sheriff-telemetry sheriff-netsim sheriff-core sheriff-wire)

stage "cargo fmt --check (${CLEAN_CRATES[*]})"
if cargo fmt --version >/dev/null 2>&1; then
    for c in "${CLEAN_CRATES[@]}"; do
        cargo fmt -p "$c" -- --check
    done
else
    echo "rustfmt not installed; skipping"
fi

stage "cargo clippy -D warnings (${CLEAN_CRATES[*]})"
if cargo clippy --version >/dev/null 2>&1; then
    for c in "${CLEAN_CRATES[@]}"; do
        cargo clippy -p "$c" --all-targets -- -D warnings
    done
else
    echo "clippy not installed; skipping"
fi

stage "tier-1 build"
cargo build --workspace --all-targets

stage "tier-1 tests"
cargo test --workspace --quiet

# The protocol refactor's contract: the DES and TCP backends run the same
# sans-IO machines, so same seed + same world must yield identical
# observations. Kept as a named stage so a parity break is unmissable.
stage "cross-backend parity"
cargo test -p sheriff-wire --test backend_parity --quiet

# Chaos gate: seed-deterministic fault schedules (drops, dups, delays, a
# server crash, a partition) must leave no leaked jobs and no duplicate
# observations, and the same schedule must produce identical observation
# sets on the DES and TCP backends. Seeds are pinned so the CI schedule
# is reproducible; explore locally with CHAOS_SEEDS=....
stage "chaos"
CHAOS_SEEDS="11,23,37,41,53,67,79,97" \
    cargo test -p sheriff-core --test chaos_soak --quiet
cargo test -p sheriff-wire --test chaos_parity --quiet

stage "CI green"
