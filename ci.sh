#!/usr/bin/env bash
# Local CI gate: formatting, lints, the workspace invariant checker, and
# the tier-1 build + test sweep. Each toolchain-dependent stage is skipped
# (not failed) if its component is missing, so the script degrades
# gracefully on minimal containers.
set -euo pipefail
cd "$(dirname "$0")"

stage() { printf '\n==> %s\n' "$*"; }

# Every first-party crate. The vendored stubs under vendor/ are excluded
# from the style gates on purpose: they mirror upstream code and should
# stay diffable against it, not against our formatter.
SHERIFF_CRATES=()
for d in crates/*/; do
    SHERIFF_CRATES+=("sheriff-$(basename "$d")")
done

stage "cargo fmt --check (workspace, vendor excluded)"
if cargo fmt --version >/dev/null 2>&1; then
    for c in "${SHERIFF_CRATES[@]}"; do
        cargo fmt -p "$c" -- --check
    done
else
    echo "rustfmt not installed; skipping"
fi

stage "cargo clippy -D warnings (workspace, vendor excluded)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy "${SHERIFF_CRATES[@]/#/-p}" --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

# The invariant checker: no wall-clock or ambient entropy outside the
# sanctioned boundary files, no hash-ordered iteration or panics in the
# protocol core, telemetry names on the subsystem.snake_case scheme —
# plus the flow-aware passes (privacy taint, the protocol routing
# matrix, transitive panic-freedom) over the workspace call graph.
# See DESIGN.md "Static analysis & invariants" and crates/lint.
stage "sheriff-lint"
mkdir -p target
cargo run --release -q -p sheriff-lint -- --json crates > target/lint-report.json
echo "lint report archived at target/lint-report.json"

# Negative control: the checker must still be able to fail. A known-bad
# fixture tree that exits zero means the analyzer itself is broken (a
# walk bug, a pass short-circuiting), which a green main-tree run would
# silently hide.
stage "sheriff-lint negative control"
if cargo run --release -q -p sheriff-lint -- crates/lint/fixtures/taint_bad >/dev/null 2>&1; then
    echo "known-bad fixture passed the linter — analyzer is broken" >&2
    exit 1
fi
echo "known-bad fixture correctly rejected"

# Baseline-regression gate: the per-rule finding counts are pinned in
# ci/lint-baseline.json (committed). Any divergence — a new finding, a
# rule silently dropped from the report, a schema drift — fails the
# stage. Raising the baseline is a reviewed policy change, exactly like
# widening a scope table in crates/lint/src/config.rs.
stage "sheriff-lint baseline"
grep '"counts_by_rule"' target/lint-report.json > target/lint-counts.json
if ! diff -u ci/lint-baseline.json target/lint-counts.json; then
    echo "lint finding counts diverge from ci/lint-baseline.json" >&2
    echo "(fix the findings, or update the baseline in the same reviewed change)" >&2
    exit 1
fi
echo "finding counts match the committed baseline"

# Concurrency gate: the SL2xx passes (lock-order cycles, blocking calls
# or protocol callbacks under a live guard, hot-loop allocation) plus
# the SL007 pragma audit, re-run with per-pass timing on stderr so a
# pass that starts dominating the lint budget is visible in the CI log.
# Their own negative control: the interprocedural lock-order fixture
# must fail, or the guard-tracking layer is broken.
stage "lint-concurrency"
cargo run --release -q -p sheriff-lint -- --timings crates >/dev/null
if cargo run --release -q -p sheriff-lint -- crates/lint/fixtures/locks_bad >/dev/null 2>&1; then
    echo "lock-order cycle fixture passed the linter — SL201 is broken" >&2
    exit 1
fi
echo "lock-order cycle fixture correctly rejected"

# Bounded model checker: exhaustively explore the sans-IO protocol
# worlds (delivery orderings, duplications, drops, timer firings, node
# crash/restarts) to the CI-pinned depths. Exit 1 means a non-waived
# invariant violation with a minimized, replayable counterexample in
# the report. See DESIGN.md "Model checking the protocol layer" and
# crates/model.
stage "sheriff-model"
cargo run --release -q -p sheriff-model -- --json target/model-report.json
echo "model report archived at target/model-report.json"

# Negative control: the explorer must still be able to fail. A seeded
# mutation that suppresses the reliable channel's Retransmit release
# arm must be discovered; a clean run over the mutated world means the
# checker itself is broken.
stage "sheriff-model negative control"
if cargo run --release -q -p sheriff-model -- \
    --world small --depth 7 --mutate drop-retransmit-arm >/dev/null 2>&1; then
    echo "mutated world passed the model checker — explorer is broken" >&2
    exit 1
fi
echo "seeded mutation correctly rejected"

stage "tier-1 build"
cargo build --workspace --all-targets

stage "tier-1 tests"
cargo test --workspace --quiet

# The protocol refactor's contract: the DES and TCP backends run the same
# sans-IO machines, so same seed + same world must yield identical
# observations. Kept as a named stage so a parity break is unmissable.
stage "cross-backend parity"
cargo test -p sheriff-wire --test backend_parity --quiet

# Chaos gate: seed-deterministic fault schedules (drops, dups, delays, a
# server crash, a partition) must leave no leaked jobs and no duplicate
# observations, and the same schedule must produce identical observation
# sets on the DES and TCP backends. Seeds are pinned so the CI schedule
# is reproducible; explore locally with CHAOS_SEEDS=....
stage "chaos"
CHAOS_SEEDS="11,23,37,41,53,67,79,97" \
    cargo test -p sheriff-core --test chaos_soak --quiet
cargo test -p sheriff-wire --test chaos_parity --quiet

# Durability gate: the crash-point matrix re-runs recovery from every WAL
# record boundary (and every mid-record byte) and must reconstruct exactly
# the durable prefix; the TCP soak then kills the Database under a pinned
# seed bank and re-opens its on-disk files cold, proving zero observation
# loss on the real-file Storage backend too. See DESIGN.md, "Durability &
# recovery".
stage "durability"
cargo test -p sheriff-core --test durability --quiet
CHAOS_SEEDS="11,23,37,41,53,67,79,97" \
    cargo test -p sheriff-wire --test durability_soak --quiet

# Reactor soak gate: the sharded event-loop backend must hold a
# 1000-peer roster (second layer of the paper's 1265 installed add-ons,
# §8, without 1005 OS threads) across waves of concurrent checks, and
# must survive an entire reactor shard — every node one event-loop
# thread owns — crashing and restarting as a unit with zero acked
# observations lost. Seeds pinned for a reproducible CI schedule;
# explore locally with REACTOR_SOAK_SEEDS=... / REACTOR_SOAK_PEERS=....
stage "reactor-soak"
REACTOR_SOAK_PEERS=1000 REACTOR_SOAK_SEEDS="11,23" \
    cargo test -p sheriff-wire --test reactor_soak --quiet

# Benchmark summaries: the criterion stand-in prints one median line per
# benchmark; archive them as machine-readable BENCH_<group>.json at the
# repo root (committed — `target/` is wiped by `cargo clean`, which is
# how every previous "baseline" silently vanished) so perf regressions
# are diffable across CI runs and across checkouts. Every bench target
# is archived — a group whose run emits no parseable bench line fails
# the stage (a silently-empty summary would read as "no regression"
# forever). The previous run's summary (when one exists) is kept as
# *.before.json so a regression shows up as a same-machine
# before/after diff.
stage "bench summary archive"
BENCH_GROUPS=(crypto_primitives private_kmeans extraction currency system_throughput)
for group in "${BENCH_GROUPS[@]}"; do
    if [ -f "BENCH_${group}.json" ]; then
        cp "BENCH_${group}.json" "BENCH_${group}.before.json"
        echo "previous summary kept at BENCH_${group}.before.json"
    fi
    cargo bench -p sheriff-bench --bench "$group" \
        | tee "target/bench-${group}.txt"
    awk 'BEGIN { printf "[" }
         /^bench / { if (n++) printf ","
                     printf "\n  {\"bench\": \"%s\", \"median\": \"%s %s\"}", $2, $4, $5 }
         END { print "\n]" }' "target/bench-${group}.txt" \
        > "BENCH_${group}.json"
    if ! grep -q '"bench"' "BENCH_${group}.json"; then
        echo "bench group ${group} emitted no summary lines — archive would be empty" >&2
        exit 1
    fi
    echo "bench summary archived at BENCH_${group}.json"
done

stage "CI green"
