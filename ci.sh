#!/usr/bin/env bash
# Local CI gate: formatting, lints on the telemetry crate, and the tier-1
# build + test sweep. Each stage is skipped (not failed) if its toolchain
# component is missing, so the script degrades gracefully on minimal
# containers.
set -euo pipefail
cd "$(dirname "$0")"

stage() { printf '\n==> %s\n' "$*"; }

# The seed tree (and the vendored stubs) predate rustfmt enforcement, so
# the gate covers the telemetry crate; widen as crates are brought clean.
stage "cargo fmt -p sheriff-telemetry --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt -p sheriff-telemetry -- --check
else
    echo "rustfmt not installed; skipping"
fi

stage "cargo clippy -p sheriff-telemetry -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy -p sheriff-telemetry --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

stage "tier-1 build"
cargo build --workspace --all-targets

stage "tier-1 tests"
cargo test --workspace --quiet

stage "CI green"
